//! Bloom filter (Bloom 1970, \[3\] in the paper).
//!
//! K-mer analysis inserts every k-mer occurrence into its owner's Bloom
//! filter first; only k-mers seen **at least twice** enter the counting
//! hash table. Since most erroneous k-mers are singletons (95% of distinct
//! k-mers for the human data set), this cuts the main table's memory by up
//! to 85% (§3.1). The filter operates on pre-mixed 64-bit key hashes and
//! derives its `h` probe positions by double hashing.

use hipmer_dna::mix64;

/// A classic Bloom filter over pre-hashed `u64` keys.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Number of addressable bits (a power of two for cheap masking).
    mask: u64,
    hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Size a filter for `expected_items` at the given false-positive rate.
    ///
    /// Uses the standard optimum `m = -n·ln(p)/ln(2)²`, `h = (m/n)·ln(2)`,
    /// rounding `m` up to a power of two.
    pub fn with_rate(expected_items: usize, fp_rate: f64) -> Self {
        assert!(fp_rate > 0.0 && fp_rate < 1.0, "fp_rate must be in (0,1)");
        let n = expected_items.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * fp_rate.ln() / (ln2 * ln2)).ceil().max(64.0);
        let m_pow2 = (m as u64).next_power_of_two();
        let h = ((m_pow2 as f64 / n) * ln2).round().clamp(1.0, 16.0) as u32;
        BloomFilter {
            bits: vec![0u64; (m_pow2 / 64) as usize],
            mask: m_pow2 - 1,
            hashes: h,
            inserted: 0,
        }
    }

    /// Number of bits in the filter.
    pub fn num_bits(&self) -> u64 {
        self.mask + 1
    }

    /// Number of probe hashes.
    pub fn num_hashes(&self) -> u32 {
        self.hashes
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Items inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    #[inline]
    fn probes(&self, key_hash: u64) -> impl Iterator<Item = u64> + '_ {
        // Double hashing: position_i = h1 + i*h2 (mod m). Make h2 odd so it
        // is coprime with the power-of-two size.
        let h1 = key_hash;
        let h2 = mix64(key_hash) | 1;
        (0..self.hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2))) & self.mask)
    }

    /// Insert a key hash. Returns `true` if the key **may have been present
    /// already** (all probe bits were set before this insert) — the signal
    /// k-mer analysis uses for "seen at least twice".
    pub fn insert(&mut self, key_hash: u64) -> bool {
        let mut seen = true;
        for pos in self.probes(key_hash).collect::<Vec<_>>() {
            let (word, bit) = ((pos / 64) as usize, pos % 64);
            let mask = 1u64 << bit;
            if self.bits[word] & mask == 0 {
                seen = false;
                self.bits[word] |= mask;
            }
        }
        self.inserted += 1;
        seen
    }

    /// Query without inserting.
    pub fn contains(&self, key_hash: u64) -> bool {
        self.probes(key_hash)
            .all(|pos| self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// Fraction of set bits (diagnostics; ~50% at design load).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.num_bits() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_rate(10_000, 0.01);
        for k in 0..10_000u64 {
            f.insert(mix64(k));
        }
        for k in 0..10_000u64 {
            assert!(f.contains(mix64(k)), "false negative for {k}");
        }
    }

    #[test]
    fn false_positive_rate_near_design() {
        let n = 50_000;
        let mut f = BloomFilter::with_rate(n, 0.01);
        for k in 0..n as u64 {
            f.insert(mix64(k));
        }
        let fps = (n as u64..2 * n as u64)
            .filter(|&k| f.contains(mix64(k)))
            .count();
        let rate = fps as f64 / n as f64;
        assert!(rate < 0.03, "fp rate {rate} too far above design 0.01");
    }

    #[test]
    fn insert_reports_first_vs_repeat() {
        let mut f = BloomFilter::with_rate(1000, 0.001);
        assert!(!f.insert(mix64(7)), "first insert is new");
        assert!(f.insert(mix64(7)), "second insert is seen");
    }

    #[test]
    fn fill_ratio_reasonable_at_design_load() {
        let n = 20_000;
        let mut f = BloomFilter::with_rate(n, 0.01);
        for k in 0..n as u64 {
            f.insert(mix64(k));
        }
        let fill = f.fill_ratio();
        assert!(fill > 0.2 && fill < 0.6, "fill ratio {fill}");
    }

    #[test]
    fn sizes_scale_with_items() {
        let small = BloomFilter::with_rate(1_000, 0.01);
        let large = BloomFilter::with_rate(1_000_000, 0.01);
        assert!(large.num_bits() > small.num_bits());
        assert!(small.num_hashes() >= 1);
    }

    #[test]
    #[should_panic(expected = "fp_rate")]
    fn bad_rate_panics() {
        BloomFilter::with_rate(100, 1.5);
    }
}
