//! Exact integer histograms.
//!
//! Used in two places: the k-mer count spectrum (whose shape distinguishes
//! the single-genome datasets — 95% singletons for human — from the flat
//! metagenome spectrum of §5.4), and insert-size estimation (§4.4), where
//! each rank builds a local histogram of sampled same-contig pair
//! separations and the team merges them into a global one.

/// Histogram over `u64` values with a dense range and an overflow bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountHistogram {
    /// `bins[v]` counts observations of value `v` for `v < bins.len()`.
    bins: Vec<u64>,
    /// Observations `>= bins.len()`.
    overflow: u64,
    /// Sum of all observed values (exact, for the mean).
    sum: u128,
    /// Total observations.
    n: u64,
}

impl CountHistogram {
    /// A histogram tracking values `0..max_value` exactly.
    pub fn new(max_value: usize) -> Self {
        CountHistogram {
            bins: vec![0; max_value],
            overflow: 0,
            sum: 0,
            n: 0,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        if (value as usize) < self.bins.len() {
            self.bins[value as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.sum += value as u128;
        self.n += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Observations that exceeded the tracked range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count of a particular value (`None` if out of tracked range).
    pub fn bin(&self, value: u64) -> Option<u64> {
        self.bins.get(value as usize).copied()
    }

    /// Mean of all observations (including overflowed ones), or `None` if
    /// empty.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.sum as f64 / self.n as f64)
        }
    }

    /// Standard deviation over the *tracked* range (overflow excluded), or
    /// `None` if no tracked observations.
    pub fn stddev(&self) -> Option<f64> {
        let tracked: u64 = self.bins.iter().sum();
        if tracked == 0 {
            return None;
        }
        let mean = self
            .bins
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum::<f64>()
            / tracked as f64;
        let var = self
            .bins
            .iter()
            .enumerate()
            .map(|(v, &c)| {
                let d = v as f64 - mean;
                d * d * c as f64
            })
            .sum::<f64>()
            / tracked as f64;
        Some(var.sqrt())
    }

    /// The q-quantile (0 ≤ q ≤ 1) over the tracked range; `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let tracked: u64 = self.bins.iter().sum();
        if tracked == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * (tracked - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (v, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen > target {
                return Some(v as u64);
            }
        }
        Some(self.bins.len() as u64 - 1)
    }

    /// Median (the 0.5 quantile).
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Merge another histogram of the same shape.
    ///
    /// # Panics
    /// Panics if tracked ranges differ.
    pub fn merge(&mut self, other: &CountHistogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "range mismatch");
        for (a, &b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.sum += other.sum;
        self.n += other.n;
    }

    /// Fraction of observations equal to `value` (0 if out of range/empty).
    pub fn fraction(&self, value: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.bin(value).unwrap_or(0) as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut h = CountHistogram::new(10);
        for v in [1u64, 2, 2, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bin(3), Some(3));
        assert_eq!(h.bin(0), Some(0));
        assert!((h.mean().unwrap() - 14.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.median(), Some(3));
    }

    #[test]
    fn overflow_counts_but_keeps_mean_exact() {
        let mut h = CountHistogram::new(5);
        h.record(2);
        h.record(100);
        assert_eq!(h.overflow(), 1);
        assert!((h.mean().unwrap() - 51.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_ordered() {
        let mut h = CountHistogram::new(1000);
        for v in 0..1000u64 {
            h.record(v);
        }
        let q1 = h.quantile(0.25).unwrap();
        let q2 = h.quantile(0.5).unwrap();
        let q3 = h.quantile(0.75).unwrap();
        assert!(q1 < q2 && q2 < q3);
        assert!((q2 as i64 - 500).abs() <= 1);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = CountHistogram::new(50);
        let mut b = CountHistogram::new(50);
        let mut whole = CountHistogram::new(50);
        for v in 0..200u64 {
            let val = v % 37;
            whole.record(val);
            if v % 2 == 0 {
                a.record(val);
            } else {
                b.record(val);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_histogram_returns_none() {
        let h = CountHistogram::new(10);
        assert_eq!(h.mean(), None);
        assert_eq!(h.median(), None);
        assert_eq!(h.stddev(), None);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let mut h = CountHistogram::new(10);
        for _ in 0..5 {
            h.record(4);
        }
        assert!(h.stddev().unwrap().abs() < 1e-12);
    }

    #[test]
    fn fraction_singletons() {
        // Emulates the paper's singleton-fraction metric (95% human vs 36%
        // metagenome): fraction of k-mers with count 1 in a count spectrum.
        let mut spectrum = CountHistogram::new(100);
        for _ in 0..95 {
            spectrum.record(1);
        }
        for _ in 0..5 {
            spectrum.record(30);
        }
        assert!((spectrum.fraction(1) - 0.95).abs() < 1e-12);
    }
}
