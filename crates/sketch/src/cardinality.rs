//! HyperLogLog cardinality estimation.
//!
//! The first pass of k-mer analysis estimates the number of *distinct*
//! k-mers so that each rank can size its Bloom filter before the counting
//! pass (§3.1: "an initial pass over the data is already performed to
//! estimate the cardinality"). Sketches are mergeable, so each rank
//! sketches its local read chunk and the team reduces.

/// HyperLogLog sketch with `2^p` registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HyperLogLog {
    p: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// A sketch with `2^p` registers; `p` in `4..=18`. `p = 12` (4096
    /// registers, ~1.6% standard error) is plenty for Bloom sizing.
    pub fn new(p: u8) -> Self {
        assert!((4..=18).contains(&p), "p must be in 4..=18, got {p}");
        HyperLogLog {
            p,
            registers: vec![0u8; 1 << p],
        }
    }

    /// Register count.
    pub fn m(&self) -> usize {
        self.registers.len()
    }

    /// Observe a pre-hashed item.
    #[inline]
    pub fn observe(&mut self, hash: u64) {
        let idx = (hash >> (64 - self.p)) as usize;
        let rest = hash << self.p;
        // Rank = position of the first 1-bit in the remaining bits, 1-based;
        // all-zero remainder gets the maximum.
        let rho = (rest.leading_zeros() as u8).min(64 - self.p) + 1;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Merge another sketch (register-wise max).
    ///
    /// # Panics
    /// Panics if precisions differ.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.p, other.p, "cannot merge sketches of different p");
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// The cardinality estimate (bias-corrected for small/large ranges).
    pub fn estimate(&self) -> f64 {
        let m = self.m() as f64;
        let alpha = match self.m() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2.0f64.powi(-(r as i32)))
            .sum();
        let raw = alpha * m * m / sum;

        if raw <= 2.5 * m {
            // Small-range correction: linear counting over empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_dna::mix64;

    #[test]
    fn empty_estimates_zero() {
        let h = HyperLogLog::new(12);
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn estimate_within_error_bounds() {
        for &n in &[100u64, 10_000, 500_000] {
            let mut h = HyperLogLog::new(12);
            for x in 0..n {
                h.observe(mix64(x));
            }
            let est = h.estimate();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.08, "n={n}: estimate {est} off by {err}");
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new(12);
        for x in 0..1000u64 {
            for _ in 0..50 {
                h.observe(mix64(x));
            }
        }
        let est = h.estimate();
        let err = (est - 1000.0).abs() / 1000.0;
        assert!(err < 0.1, "estimate {est}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        let mut whole = HyperLogLog::new(10);
        for x in 0..20_000u64 {
            whole.observe(mix64(x));
            if x % 2 == 0 {
                a.observe(mix64(x));
            } else {
                b.observe(mix64(x));
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "different p")]
    fn merge_mismatched_precisions_panics() {
        let mut a = HyperLogLog::new(10);
        a.merge(&HyperLogLog::new(12));
    }

    #[test]
    #[should_panic(expected = "p must be")]
    fn precision_out_of_range_panics() {
        HyperLogLog::new(3);
    }
}
