//! Streaming/sketching data structures for k-mer analysis (§3.1).
//!
//! The paper's k-mer analysis makes one pass over the reads to (a) estimate
//! the number of distinct k-mers so Bloom filters can be sized, and (b) run
//! the Misra–Gries frequent-items algorithm so ultra-high-frequency k-mers
//! ("heavy hitters") can be treated specially; a second pass counts k-mers
//! through per-owner Bloom filters that suppress the singleton (almost
//! surely erroneous) k-mers from ever entering the main hash tables.
//!
//! Everything here operates on pre-hashed `u64` keys or generic `Eq + Hash`
//! items, deterministic across ranks and runs.

pub mod bloom;
pub mod cardinality;
pub mod histogram;
pub mod misra_gries;

pub use bloom::BloomFilter;
pub use cardinality::HyperLogLog;
pub use histogram::CountHistogram;
pub use misra_gries::MisraGries;
