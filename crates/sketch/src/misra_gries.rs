//! The Misra–Gries frequent-items ("heavy hitters") summary \[24\].
//!
//! With θ counter slots, the summary reports every item whose true
//! frequency exceeds `N/θ` over a stream of length `N`, and the reported
//! count `f'(x)` is a **lower bound** on the true count with
//! `f(x) - N/θ ≤ f'(x) ≤ f(x)`. HipMer (§3.1) runs this during the
//! cardinality pass (θ = 32,000 in the paper's wheat experiments) and then
//! handles the reported k-mers by local accumulation + global reduction
//! instead of owner-computes, eliminating the load imbalance that
//! ultra-frequent wheat k-mers (70 k-mers with count > 10⁷) otherwise
//! cause.
//!
//! Summaries are *mergeable* (Agarwal et al. \[1\]): merging per-rank
//! summaries and re-pruning yields a summary with the same guarantee over
//! the concatenated stream, which is how the parallel version (Cafaro &
//! Tempesta \[7\]) works.

use std::collections::HashMap;
use std::hash::Hash;

/// A Misra–Gries summary with at most `capacity` counters.
#[derive(Clone, Debug)]
pub struct MisraGries<K: Eq + Hash + Clone> {
    capacity: usize,
    counters: HashMap<K, u64>,
    /// Total stream length observed (for the error bound).
    n: u64,
}

impl<K: Eq + Hash + Clone> MisraGries<K> {
    /// A summary with `capacity` (θ) counter slots.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        MisraGries {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            n: 0,
        }
    }

    /// θ — the number of counter slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stream length observed so far.
    pub fn stream_len(&self) -> u64 {
        self.n
    }

    /// Observe one item (weight 1).
    pub fn observe(&mut self, item: K) {
        self.observe_weighted(item, 1);
    }

    /// Observe an item with weight `w` (used when merging pre-counted
    /// chunks).
    pub fn observe_weighted(&mut self, item: K, w: u64) {
        self.n += w;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += w;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, w);
            return;
        }
        // Summary full: decrement everything by the smallest amount that
        // frees a slot (the classic algorithm decrements by 1 per arriving
        // item; the weighted generalization decrements by
        // min(w, min counter) and recurses on the remainder).
        let dec = w.min(*self.counters.values().min().expect("non-empty"));
        self.counters.retain(|_, c| {
            *c -= dec;
            *c > 0
        });
        let rem = w - dec;
        if rem > 0 {
            self.observe_weighted_after_decrement(item, rem);
        }
    }

    /// Tail call of the weighted decrement loop, avoiding double-counting n.
    fn observe_weighted_after_decrement(&mut self, item: K, w: u64) {
        if let Some(c) = self.counters.get_mut(&item) {
            *c += w;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, w);
            return;
        }
        let dec = w.min(*self.counters.values().min().expect("non-empty"));
        self.counters.retain(|_, c| {
            *c -= dec;
            *c > 0
        });
        let rem = w - dec;
        if rem > 0 {
            self.observe_weighted_after_decrement(item, rem);
        }
    }

    /// The maximum undercount of any reported frequency: `N/θ`.
    pub fn error_bound(&self) -> u64 {
        self.n / self.capacity as u64
    }

    /// All currently-tracked items with their lower-bound counts.
    pub fn items(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counters.iter().map(|(k, &c)| (k, c))
    }

    /// Items whose lower-bound count is at least `min_count`. Guaranteed to
    /// contain every item with true frequency ≥ `min_count + error_bound()`.
    pub fn heavy_hitters(&self, min_count: u64) -> Vec<(K, u64)> {
        let mut out: Vec<(K, u64)> = self
            .counters
            .iter()
            .filter(|(_, &c)| c >= min_count)
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        out.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        out
    }

    /// Merge another summary into this one (mergeable-summaries property).
    pub fn merge(&mut self, other: &MisraGries<K>) {
        // Absorb the other side's counters, then prune back to capacity by
        // subtracting the (capacity+1)-th largest count from everything.
        for (k, &c) in other.counters.iter() {
            *self.counters.entry(k.clone()).or_insert(0) += c;
        }
        self.n += other.n;
        if self.counters.len() > self.capacity {
            let mut counts: Vec<u64> = self.counters.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let cutoff = counts[self.capacity];
            self.counters.retain(|_, c| {
                *c = c.saturating_sub(cutoff);
                *c > 0
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Zipf-ish stream: item i appears ~N/(i+1) times.
    fn skewed_stream(n_items: u64, scale: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for i in 0..n_items {
            for _ in 0..(scale / (i + 1)).max(1) {
                out.push(i);
            }
        }
        out
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut mg = MisraGries::new(100);
        for x in 0..50u64 {
            for _ in 0..=x {
                mg.observe(x);
            }
        }
        for (k, c) in mg.items() {
            assert_eq!(c, k + 1);
        }
    }

    #[test]
    fn finds_all_true_heavy_hitters() {
        let stream = skewed_stream(5_000, 10_000);
        let theta = 256;
        let mut mg = MisraGries::new(theta);
        for &x in &stream {
            mg.observe(x);
        }
        let n = stream.len() as u64;
        let threshold = n / theta as u64;
        // Every item with true count > N/θ must be reported.
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            *truth.entry(x).or_insert(0) += 1;
        }
        let reported: HashMap<u64, u64> = mg.items().map(|(k, c)| (*k, c)).collect();
        for (item, &count) in truth.iter() {
            if count > threshold {
                assert!(reported.contains_key(item), "missed heavy hitter {item}");
            }
        }
    }

    #[test]
    fn counts_are_lower_bounds_within_error() {
        let stream = skewed_stream(1_000, 5_000);
        let mut mg = MisraGries::new(128);
        for &x in &stream {
            mg.observe(x);
        }
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            *truth.entry(x).or_insert(0) += 1;
        }
        let bound = mg.error_bound();
        for (k, reported) in mg.items() {
            let t = truth[k];
            assert!(reported <= t, "overcount for {k}: {reported} > {t}");
            assert!(
                reported + bound >= t,
                "undercount beyond bound for {k}: {reported} + {bound} < {t}"
            );
        }
    }

    #[test]
    fn merged_summaries_keep_guarantee() {
        let stream = skewed_stream(2_000, 8_000);
        let theta = 200;
        // Split stream over 4 "ranks", summarize independently, merge.
        let mut parts: Vec<MisraGries<u64>> = (0..4).map(|_| MisraGries::new(theta)).collect();
        for (i, &x) in stream.iter().enumerate() {
            parts[i % 4].observe(x);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.stream_len(), stream.len() as u64);

        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            *truth.entry(x).or_insert(0) += 1;
        }
        // Mergeable-summary guarantee: error ≤ N/θ over the whole stream
        // (we allow 2x slack for the simple merge-prune implementation).
        let bound = 2 * merged.error_bound();
        for (k, reported) in merged.items() {
            let t = truth[k];
            assert!(reported <= t);
            assert!(reported + bound >= t, "{k}: {reported}+{bound} < {t}");
        }
        // The top item must survive the merge.
        let (top, _) = merged.heavy_hitters(1).into_iter().next().unwrap();
        assert_eq!(top, 0, "most frequent item should be item 0");
    }

    #[test]
    fn heavy_hitters_sorted_desc() {
        let mut mg = MisraGries::new(10);
        for x in 0..5u64 {
            for _ in 0..(x + 1) * 10 {
                mg.observe(x);
            }
        }
        let hh = mg.heavy_hitters(1);
        for w in hh.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn weighted_observe_equivalent_to_repeats() {
        let mut a = MisraGries::new(8);
        let mut b = MisraGries::new(8);
        for x in 0..20u64 {
            let w = x % 5 + 1;
            a.observe_weighted(x, w);
            for _ in 0..w {
                b.observe(x);
            }
        }
        assert_eq!(a.stream_len(), b.stream_len());
        // Not bit-identical in general (decrement order differs), but both
        // must satisfy the MG bound; check top item agrees.
        let ta = a.heavy_hitters(1);
        let tb = b.heavy_hitters(1);
        assert!(!ta.is_empty() && !tb.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        MisraGries::<u64>::new(0);
    }
}
