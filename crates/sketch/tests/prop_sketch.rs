//! Property tests for the streaming sketches.

use hipmer_dna::mix64;
use hipmer_sketch::{BloomFilter, CountHistogram, HyperLogLog, MisraGries};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #[test]
    fn bloom_never_false_negative(keys in prop::collection::vec(any::<u64>(), 1..2000)) {
        let mut f = BloomFilter::with_rate(keys.len(), 0.02);
        for &k in &keys {
            f.insert(mix64(k));
        }
        for &k in &keys {
            prop_assert!(f.contains(mix64(k)));
        }
    }

    #[test]
    fn bloom_second_insert_reports_seen(keys in prop::collection::vec(any::<u64>(), 1..500)) {
        let mut f = BloomFilter::with_rate(keys.len() * 2, 0.01);
        for &k in &keys {
            f.insert(mix64(k));
        }
        for &k in &keys {
            prop_assert!(f.insert(mix64(k)), "re-insert of {k} must report seen");
        }
    }

    #[test]
    fn misra_gries_counts_are_lower_bounds(
        stream in prop::collection::vec(0u64..50, 1..2000),
        theta in 2usize..64,
    ) {
        let mut mg = MisraGries::new(theta);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            mg.observe(x);
            *truth.entry(x).or_insert(0) += 1;
        }
        let bound = mg.error_bound();
        for (k, reported) in mg.items() {
            let t = truth[k];
            prop_assert!(reported <= t, "{k}: {reported} > true {t}");
            prop_assert!(reported + bound >= t, "{k}: undercount beyond N/theta");
        }
        // Completeness: anything with true count > N/theta is tracked.
        for (k, &t) in truth.iter() {
            if t > bound {
                prop_assert!(mg.items().any(|(x, _)| x == k), "missed heavy {k}");
            }
        }
    }

    #[test]
    fn misra_gries_merge_preserves_guarantee(
        s1 in prop::collection::vec(0u64..30, 1..800),
        s2 in prop::collection::vec(0u64..30, 1..800),
        theta in 4usize..32,
    ) {
        let mut a = MisraGries::new(theta);
        let mut b = MisraGries::new(theta);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &s1 { a.observe(x); *truth.entry(x).or_insert(0) += 1; }
        for &x in &s2 { b.observe(x); *truth.entry(x).or_insert(0) += 1; }
        a.merge(&b);
        prop_assert_eq!(a.stream_len(), (s1.len() + s2.len()) as u64);
        // Counts stay lower bounds after a merge.
        for (k, reported) in a.items() {
            prop_assert!(reported <= truth[k]);
        }
    }

    #[test]
    fn hll_estimate_scales_with_cardinality(n in 100u64..20_000) {
        let mut h = HyperLogLog::new(12);
        for x in 0..n {
            h.observe(mix64(x));
        }
        let est = h.estimate();
        let err = (est - n as f64).abs() / n as f64;
        prop_assert!(err < 0.15, "n={n} est={est}");
    }

    #[test]
    fn histogram_merge_commutes(
        v1 in prop::collection::vec(0u64..64, 0..300),
        v2 in prop::collection::vec(0u64..64, 0..300),
    ) {
        let mut a = CountHistogram::new(64);
        let mut b = CountHistogram::new(64);
        for &x in &v1 { a.record(x); }
        for &x in &v2 { b.record(x); }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_quantiles_monotone(v in prop::collection::vec(0u64..100, 1..500)) {
        let mut h = CountHistogram::new(100);
        for &x in &v { h.record(x); }
        let q25 = h.quantile(0.25).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q75 = h.quantile(0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
    }
}
