//! HipMer: an extreme-scale de novo genome assembler — end-to-end
//! pipeline.
//!
//! This crate ties the whole reproduction together (Fig. 1 of the paper:
//! reads → k-mers → contigs → scaffolds):
//!
//! 1. **k-mer analysis** (`hipmer-kanalysis`): error-excluding k-mer
//!    counting with Bloom filters and heavy-hitter handling;
//! 2. **contig generation** (`hipmer-contig`): distributed de Bruijn graph
//!    construction and traversal, optionally communication-avoiding via
//!    oracle partitioning;
//! 3. **scaffolding** (`hipmer-scaffold` + `hipmer-align`): depths,
//!    bubbles, merAligner, insert sizes, splints/spans, links, ties, gap
//!    closing.
//!
//! ```no_run
//! use hipmer::{assemble, PipelineConfig};
//! use hipmer_pgas::{CostModel, Team, Topology};
//! # let reads = vec![];
//! # let lib_ranges = vec![0..0];
//! let team = Team::new(Topology::edison(480));
//! let assembly = assemble(&team, &reads, &lib_ranges, &PipelineConfig::new(31));
//! println!("{}", assembly.report.render(&CostModel::edison()));
//! println!("scaffold N50: {}", assembly.stats.scaffold_n50);
//! ```
//!
//! Every stage both *runs for real* (the scaffolds are genuine assemblies
//! of the input reads) and produces per-rank communication counters which
//! the [`hipmer_pgas::CostModel`] converts into modeled Cray-XC30-like
//! execution times; [`StageTimes`] groups them the way the paper's figures
//! do.

pub mod alloc;
pub mod checkpoint;
pub mod config;
pub mod eval;
pub mod pipeline;
pub mod service;
pub mod stats;

pub use alloc::TrackingAlloc;
pub use checkpoint::{CheckpointStore, Fingerprint, ScaffoldState};
pub use config::PipelineConfig;
pub use eval::{evaluate, EvalReport};
pub use pipeline::{
    assemble, assemble_fastq, planned_stage_names, run_assembly, run_assembly_fastq, Assembly,
    PipelineError, RunOptions,
};
pub use service::AssemblyExecutor;
pub use stats::{kmer_containment, AssemblyStats, StageTimes};
