//! `hipmer` — command-line front end for the assembler.
//!
//! ```text
//! hipmer assemble reads.fastq -o scaffolds.fasta [-k 31] [--ranks 480] \
//!        [--ranks-per-node 24] [--rounds 1] [--metagenome] [--report] \
//!        [--multi-k 21,33,55] \
//!        [--schedule static|dynamic] [--partition uniform|minimizer] \
//!        [--trace trace.json] [--trace-ranks N] [--report-json report.json]
//! hipmer simulate human|wheat|meta -o reads.fastq [--len 100000] [--cov 16]
//! ```
//!
//! `assemble` reads a FASTQ file with the §3.3 parallel block reader, runs
//! the full pipeline on the requested virtual-machine shape, writes the
//! scaffolds as FASTA, and (with `--report`) prints the per-phase modeled
//! times on the Edison-like cost model.
//!
//! Scheduling: `--schedule dynamic` deals the skew-prone stages' work
//! (cooperative traversal, alignment, depths, bubbles, gap closing) as
//! guided chunks from a shared pool instead of fixed blocks. The assembled
//! output is byte-identical to `--schedule static` (the default); only the
//! modeled per-rank load balance — visible as `imbalance` and `steal_ops`
//! in `--report-json` — changes.
//!
//! Partitioning: `--partition minimizer` buckets every k-mer table's keys
//! by window minimizer so adjacent k-mers share an owner rank (k-mer
//! analysis, the de Bruijn graph under cyclic placement, and the aligner
//! seed index). The assembled output is byte-identical to
//! `--partition uniform` (the default); only the off-node traffic —
//! visible as `offnode_fraction`, the per-phase `placement` labels, and
//! the `offnode_by_placement` split in `--report-json` (schema v6) —
//! changes.
//!
//! Multi-k: `--multi-k 21,33,55` (strictly increasing, comma-separated)
//! runs MetaHipMer-style iterative coassembly rounds: k-mer analysis +
//! contig generation repeat once per k, each round's contigs feed the next
//! round as high-confidence pseudo-reads, and one scaffolding pass at the
//! largest k finishes the assembly. The assembly k is the list's last
//! element (`-k`, if also given, must agree). Checkpoints, `--resume`,
//! and `--halt-after` address round stages as `round2/kmer-analysis` etc.;
//! `--report-json` gains a per-round `rounds` array (schema v7).
//!
//! Observability: `--trace <path>` (or the `HIPMER_TRACE=<path>` env var)
//! records per-rank execution spans for every phase and writes them as
//! Chrome trace-event JSON (load in `chrome://tracing` or Perfetto);
//! `--trace-ranks N` caps the number of traced ranks (0 = all, default 16).
//! `--report-json <path>` writes the full machine-readable pipeline report:
//! per-phase counter totals, modeled-time breakdown, off-node fraction,
//! imbalance, heavy-hitter keys, and (schema v3) the per-stage attempt and
//! checkpoint bookkeeping.
//!
//! Metrics: `--metrics-json <path>` enables the [`hipmer_pgas::metrics`]
//! registry for the run and writes its final snapshot (counters, gauges,
//! power-of-two-bucket histograms) as JSON; `--metrics-text` prints the
//! same snapshot in Prometheus text exposition format on stdout.
//! `--heartbeat <secs>` emits rate-limited per-pool progress lines to
//! stderr (or, with `--heartbeat-jsonl <path>`, appends JSONL records).
//! `--trace-sample-ranks N` caps traced ranks via the pipeline config
//! (0 = all), overriding `--trace-ranks` for the assembly stages.
//!
//! Calibration: `--calibrate <fitted.json>` fits the six measurable
//! `CostModel` constants by least-squares regression of measured per-rank
//! execution times against the run's own op counters (see
//! [`hipmer_pgas::calib`]) and writes them as JSON loadable with
//! `CostModel::from_json`; `--report-json` then prices the report with the
//! fitted model (`cost_model: "calibrated"`) instead of the Edison
//! constants.
//!
//! Fault tolerance: `--checkpoint-dir <dir>` persists each completed
//! stage's artifact (every Nth stage with `--checkpoint-interval N`);
//! `--resume` validates the directory and skips completed stages;
//! `--halt-after <stage>` stops (successfully) after the named stage —
//! the restart test hook. `--stage-retries N` re-executes an aborted
//! stage up to N times. Fault injection: `--fault-seed S`,
//! `--fault-transient P` (per-message transient fault probability),
//! `--fault-retries N` (per-message retry budget), and
//! `--fault-kill R:E` (hard-kill rank R at its Eth remote event) arm a
//! deterministic [`hipmer_pgas::FaultPlan`] on the team.

use hipmer::{run_assembly_fastq, PipelineConfig, PipelineError, RunOptions, StageTimes};
use hipmer_pgas::{calib, metrics, trace, CostModel, FaultPlan, Team, Topology};
use hipmer_serve::{signal, ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Per-stage peak-heap accounting for `--metrics-json` (see
/// [`hipmer::alloc`]); free when the metrics registry is disabled beyond
/// two relaxed atomic ops per allocation.
#[global_allocator]
static ALLOC: hipmer::TrackingAlloc = hipmer::TrackingAlloc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hipmer assemble <reads.fastq> -o <scaffolds.fasta> [-k K] [--ranks N]\n\
         \x20         [--ranks-per-node N] [--rounds N] [--metagenome] [--report]\n\
         \x20         [--multi-k K1,K2,...]\n\
         \x20         [--schedule static|dynamic] [--partition uniform|minimizer]\n\
         \x20         [--trace <trace.json>] [--trace-ranks N] [--report-json <report.json>]\n\
         \x20         [--trace-sample-ranks N] [--metrics-json <metrics.json>] [--metrics-text]\n\
         \x20         [--calibrate <fitted.json>] [--heartbeat SECS] [--heartbeat-jsonl <path>]\n\
         \x20         [--checkpoint-dir <dir>] [--resume] [--checkpoint-interval N]\n\
         \x20         [--stage-retries N] [--halt-after <stage>] [--fault-seed S]\n\
         \x20         [--fault-transient P] [--fault-retries N] [--fault-kill R:E]\n  \
         hipmer simulate <human|wheat|meta> -o <reads.fastq> [--len BP] [--cov X] [--seed S]\n  \
         hipmer serve [--addr HOST:PORT] [--state-dir DIR] [--pool-ranks N]\n\
         \x20         [--ranks-per-node N] [--pool-threads N] [--queue-capacity N]\n\
         \x20         [--tenant-quota N]"
    );
    ExitCode::from(2)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("bad value for {flag}")),
    }
}

fn parse_path_flag(args: &[String], flag: &str) -> Result<Option<PathBuf>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(PathBuf::from(v)))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn parse_string_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.clone()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

/// Build the fault plan requested by the `--fault-*` flags, if any.
fn fault_plan_from_args(args: &[String], ranks: usize) -> Result<Option<FaultPlan>, String> {
    let armed = args.iter().any(|a| a.starts_with("--fault-"));
    if !armed {
        return Ok(None);
    }
    let seed: u64 = parse_flag(args, "--fault-seed", 1)?;
    let transient: f64 = parse_flag(args, "--fault-transient", 0.0)?;
    let mut plan = FaultPlan::new(seed, ranks).with_transient(transient);
    if let Some(n) = parse_string_flag(args, "--fault-retries")? {
        let n: u32 = n
            .parse()
            .map_err(|_| "bad value for --fault-retries".to_string())?;
        plan = plan.with_max_retries(n);
    }
    if let Some(spec) = parse_string_flag(args, "--fault-kill")? {
        let (rank, event) = spec
            .split_once(':')
            .and_then(|(r, e)| Some((r.parse().ok()?, e.parse().ok()?)))
            .ok_or_else(|| "--fault-kill wants RANK:EVENT".to_string())?;
        if rank >= ranks {
            return Err(format!("--fault-kill rank {rank} out of range"));
        }
        plan = plan.with_rank_failure(rank, event);
    }
    Ok(Some(plan))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let out: Option<PathBuf> = args
        .iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    match cmd.as_str() {
        "assemble" => {
            let Some(input) = args.get(1).filter(|a| !a.starts_with('-')) else {
                return usage();
            };
            let Some(out) = out else {
                eprintln!("error: -o <scaffolds.fasta> is required");
                return usage();
            };
            // `--multi-k` first: the assembly k defaults to the list's
            // largest (last) element, so `-k` can be omitted; an explicit
            // conflicting `-k` is rejected by `try_multi_k` below.
            let multi_k: Option<Vec<usize>> = match parse_string_flag(&args, "--multi-k") {
                Ok(Some(spec)) => {
                    let ks: Result<Vec<usize>, _> =
                        spec.split(',').map(|s| s.trim().parse()).collect();
                    match ks {
                        Ok(ks) if !ks.is_empty() => Some(ks),
                        _ => {
                            eprintln!(
                                "error: --multi-k wants a comma-separated list of k values, \
                                 e.g. --multi-k 21,33,55"
                            );
                            return usage();
                        }
                    }
                }
                Ok(None) => None,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            let k_default = multi_k
                .as_ref()
                .and_then(|ks| ks.last().copied())
                .unwrap_or(31);
            let (k, ranks, rpn, rounds) = match (
                parse_flag(&args, "-k", k_default),
                parse_flag(&args, "--ranks", 480usize),
                parse_flag(&args, "--ranks-per-node", 24usize),
                parse_flag(&args, "--rounds", 1usize),
            ) {
                (Ok(a), Ok(b), Ok(c), Ok(d)) => (a, b, c, d),
                _ => return usage(),
            };
            // `try_new` so a bad -k (even, 0, > 64) is a clean diagnostic
            // and a nonzero exit, not a panic.
            let mut cfg = match PipelineConfig::try_new(k) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("error: -k {k}: {e}");
                    return ExitCode::from(2);
                }
            };
            match parse_flag(&args, "--schedule", hipmer_pgas::Schedule::Static) {
                Ok(schedule) => cfg = cfg.with_schedule(schedule),
                Err(e) => {
                    eprintln!("error: {e} (want static|dynamic)");
                    return usage();
                }
            }
            match parse_flag(&args, "--partition", hipmer_pgas::PartitionScheme::Uniform) {
                Ok(partition) => cfg = cfg.with_partition(partition),
                Err(e) => {
                    eprintln!("error: {e} (want uniform|minimizer)");
                    return usage();
                }
            }
            if args.iter().any(|a| a == "--metagenome") {
                cfg.scaffold.rounds = 0; // skip scaffolding (§5.4)
            }
            if cfg.scaffolding_enabled() {
                cfg.scaffold.rounds = rounds;
            }
            if let Some(ks) = &multi_k {
                cfg = match cfg.try_multi_k(ks) {
                    Ok(cfg) => cfg,
                    Err(e) => {
                        eprintln!("error: --multi-k: {e}");
                        return ExitCode::from(2);
                    }
                };
            }
            // `--trace` wins over the HIPMER_TRACE env var; either turns
            // the span recorder on for the whole run.
            let (trace_out, report_json) = match (
                parse_path_flag(&args, "--trace"),
                parse_path_flag(&args, "--report-json"),
            ) {
                (Ok(t), Ok(r)) => (t, r),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            let trace_out =
                trace_out.or_else(|| std::env::var_os("HIPMER_TRACE").map(PathBuf::from));
            let trace_ranks = match parse_flag(&args, "--trace-ranks", 16usize) {
                Ok(n) => n,
                _ => return usage(),
            };
            if trace_out.is_some() {
                trace::enable(trace_ranks);
            }
            // `--trace-sample-ranks` rides the pipeline config so library
            // users get the same knob; it overrides `--trace-ranks`.
            match parse_string_flag(&args, "--trace-sample-ranks") {
                Ok(Some(n)) => match n.parse::<usize>() {
                    Ok(n) => cfg = cfg.with_trace_sample_ranks(n),
                    Err(_) => {
                        eprintln!("error: bad value for --trace-sample-ranks");
                        return usage();
                    }
                },
                Ok(None) => {}
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            }
            let (metrics_json, calibrate_out, heartbeat_jsonl) = match (
                parse_path_flag(&args, "--metrics-json"),
                parse_path_flag(&args, "--calibrate"),
                parse_path_flag(&args, "--heartbeat-jsonl"),
            ) {
                (Ok(m), Ok(c), Ok(h)) => (m, c, h),
                (Err(e), ..) | (_, Err(e), _) | (_, _, Err(e)) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            let metrics_text = args.iter().any(|a| a == "--metrics-text");
            let heartbeat_secs = match parse_string_flag(&args, "--heartbeat") {
                Ok(Some(v)) => match v.parse::<f64>() {
                    Ok(secs) if secs > 0.0 => Some(secs),
                    _ => {
                        eprintln!("error: --heartbeat wants a positive seconds value");
                        return usage();
                    }
                },
                Ok(None) => None,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            if metrics_json.is_some()
                || metrics_text
                || calibrate_out.is_some()
                || heartbeat_secs.is_some()
                || heartbeat_jsonl.is_some()
            {
                metrics::enable();
            }
            if let Some(secs) = heartbeat_secs.or(if heartbeat_jsonl.is_some() {
                Some(1.0)
            } else {
                None
            }) {
                metrics::set_heartbeat_interval(Some(std::time::Duration::from_secs_f64(secs)));
                metrics::set_heartbeat_sink(heartbeat_jsonl.clone());
            }
            if trace_out.is_some() || report_json.is_some() {
                // Hash tables built from here on track their hottest keys.
                trace::set_hotkey_capacity(64);
            }
            let opts = {
                let (dir, interval, retries, halt) = match (
                    parse_path_flag(&args, "--checkpoint-dir"),
                    parse_flag(&args, "--checkpoint-interval", 1usize),
                    parse_flag(&args, "--stage-retries", 1usize),
                    parse_string_flag(&args, "--halt-after"),
                ) {
                    (Ok(a), Ok(b), Ok(c), Ok(d)) => (a, b, c, d),
                    (Err(e), ..) | (_, Err(e), ..) | (_, _, Err(e), _) | (_, _, _, Err(e)) => {
                        eprintln!("error: {e}");
                        return usage();
                    }
                };
                RunOptions {
                    checkpoint_dir: dir,
                    resume: args.iter().any(|a| a == "--resume"),
                    checkpoint_interval: interval,
                    stage_retries: retries,
                    halt_after: halt,
                    cancel: None,
                }
            };
            // SIGINT/SIGTERM stop the run at the next stage boundary, so
            // every completed stage's checkpoint is already flushed and a
            // `--resume` rerun restarts from the longest valid prefix.
            // The handler only flips a flag; a watcher thread feeds the
            // pipeline's cancel flag.
            let cancel = Arc::new(AtomicBool::new(false));
            let opts = {
                let mut opts = opts;
                opts.cancel = Some(Arc::clone(&cancel));
                opts
            };
            signal::install();
            {
                let cancel = Arc::clone(&cancel);
                std::thread::spawn(move || loop {
                    if signal::triggered() {
                        cancel.store(true, Ordering::SeqCst);
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                });
            }
            let mut team = Team::new(Topology::new(ranks, rpn));
            match fault_plan_from_args(&args, ranks) {
                Ok(Some(plan)) => {
                    eprintln!("fault injection armed (seed, transient, kill per --fault-* flags)");
                    team = team.with_fault_plan(Arc::new(plan));
                }
                Ok(None) => {}
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            }
            match cfg.multi_k_rounds() {
                Some(ks) => eprintln!(
                    "assembling {input} on {ranks} virtual ranks ({rpn}/node), \
                     multi-k rounds {ks:?}..."
                ),
                None => {
                    eprintln!("assembling {input} on {ranks} virtual ranks ({rpn}/node), k={k}...")
                }
            }
            let assembly = match run_assembly_fastq(&team, std::path::Path::new(input), &cfg, &opts)
            {
                Ok(a) => a,
                Err(PipelineError::Halted { stage }) => {
                    eprintln!("halted after stage {stage:?} (checkpoints saved); no FASTA written");
                    return ExitCode::SUCCESS;
                }
                Err(PipelineError::Interrupted { stage }) => {
                    eprintln!(
                        "interrupted by signal before stage {stage:?}; completed stages are \
                         checkpointed — rerun with --checkpoint-dir ... --resume to continue"
                    );
                    // 128 + SIGINT(2) by convention; SIGTERM lands here too
                    // but 130 keeps shell semantics simple.
                    return ExitCode::from(130);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(path) = &trace_out {
                let events = trace::take_events();
                if let Err(e) = std::fs::write(path, trace::chrome_trace_json(&events)) {
                    eprintln!("error writing {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                let sampled = if trace_ranks == 0 {
                    "all ranks".to_string()
                } else {
                    format!("{trace_ranks} ranks sampled")
                };
                eprintln!(
                    "wrote {} trace spans ({sampled}) -> {}",
                    events.len(),
                    path.display()
                );
            }
            if let Some(path) = &metrics_json {
                if let Err(e) = std::fs::write(path, metrics::to_json()) {
                    eprintln!("error writing {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote metrics snapshot -> {}", path.display());
            }
            if metrics_text {
                print!("{}", metrics::prometheus_text());
            }
            // `--calibrate` fits the cost constants to this run's own
            // measurements; the report (if requested) is then priced with
            // the fitted model so `model_error` reflects the fit.
            let mut report_model = CostModel::edison();
            let mut report_label = "edison";
            if let Some(path) = &calibrate_out {
                match calib::fit(&assembly.report, &CostModel::edison()) {
                    Ok(cal) => {
                        eprintln!("{}", cal.summary());
                        if let Err(e) = std::fs::write(path, cal.model.to_json()) {
                            eprintln!("error writing {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                        eprintln!("wrote fitted cost constants -> {}", path.display());
                        report_model = cal.model;
                        report_label = "calibrated";
                    }
                    Err(e) => {
                        eprintln!("calibration failed: {e}; keeping Edison constants");
                    }
                }
            }
            if let Some(path) = &report_json {
                let json = assembly.report.to_json_labeled(&report_model, report_label);
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("error writing {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote pipeline report -> {}", path.display());
            }
            let records: Vec<hipmer_seqio::SeqRecord> = assembly
                .scaffolds
                .sequences
                .iter()
                .enumerate()
                .map(|(i, s)| hipmer_seqio::SeqRecord::new(format!("scaffold_{i}"), s.clone()))
                .collect();
            let mut buf = Vec::new();
            if let Err(e) = hipmer_seqio::write_fasta(&mut buf, &records, 80)
                .and_then(|_| std::fs::write(&out, &buf))
            {
                eprintln!("error writing {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            for r in &assembly.report.rounds {
                eprintln!(
                    "round {} (k={}): {} contigs, {} pseudo-reads in, {:.1}% off-node",
                    r.round,
                    r.k,
                    r.contigs,
                    r.pseudo_reads,
                    100.0 * r.offnode_fraction
                );
            }
            let s = &assembly.stats;
            eprintln!(
                "done: {} reads -> {} contigs (N50 {}) -> {} scaffolds (N50 {}), {} bases -> {}",
                s.n_reads,
                s.n_contigs,
                s.contig_n50,
                s.n_scaffolds,
                s.scaffold_n50,
                s.scaffold_bases,
                out.display()
            );
            if args.iter().any(|a| a == "--report") {
                let t = StageTimes::from_report(&assembly.report, &CostModel::edison());
                eprintln!("modeled on {ranks} Edison-like cores:");
                eprintln!("  io               {:>10.4} s", t.io);
                eprintln!("  k-mer analysis   {:>10.4} s", t.kmer_analysis);
                eprintln!("  contig generation{:>10.4} s", t.contig_generation);
                eprintln!("  scaffolding      {:>10.4} s", t.scaffolding());
                eprintln!("  TOTAL            {:>10.4} s", t.total());
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            let (queue_capacity, tenant_quota, pool_ranks, rpn) = match (
                parse_flag(&args, "--queue-capacity", 64usize),
                parse_flag(&args, "--tenant-quota", 16usize),
                parse_flag(&args, "--pool-ranks", 16usize),
                parse_flag(&args, "--ranks-per-node", 8usize),
            ) {
                (Ok(a), Ok(b), Ok(c), Ok(d)) => (a, b, c, d),
                _ => return usage(),
            };
            let (addr, state_dir, pool_threads) = match (
                parse_string_flag(&args, "--addr"),
                parse_path_flag(&args, "--state-dir"),
                parse_string_flag(&args, "--pool-threads"),
            ) {
                (Ok(a), Ok(s), Ok(p)) => (a, s, p),
                (Err(e), ..) | (_, Err(e), _) | (_, _, Err(e)) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            let pool_threads = match pool_threads.map(|p| p.parse::<usize>()).transpose() {
                Ok(p) => p,
                Err(_) => {
                    eprintln!("error: bad value for --pool-threads");
                    return usage();
                }
            };
            // The daemon's metrics registry is always on: /metrics is an
            // endpoint, not an opt-in flag.
            metrics::enable();
            let cfg = ServeConfig {
                addr: addr.unwrap_or_else(|| "127.0.0.1:7433".to_string()),
                state_dir: state_dir.unwrap_or_else(|| PathBuf::from("hipmer-serve-state")),
                queue_capacity,
                tenant_quota,
                pool_ranks,
                ranks_per_node: rpn,
                pool_threads,
                handle_signals: true,
                ..ServeConfig::default()
            };
            let server = match Server::start(cfg, hipmer::AssemblyExecutor::shared()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot start server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Tests parse this line to find the bound port; keep stable.
            println!("hipmer serve listening on {}", server.addr());
            eprintln!(
                "pool: {pool_ranks} ranks ({rpn}/node); queue: {queue_capacity}; \
                 quota: {tenant_quota}/tenant; SIGTERM drains gracefully"
            );
            server.join();
            eprintln!("drained; all running jobs checkpointed");
            ExitCode::SUCCESS
        }
        "simulate" => {
            let Some(kind) = args.get(1) else {
                return usage();
            };
            let Some(out) = out else {
                eprintln!("error: -o <reads.fastq> is required");
                return usage();
            };
            let (len, cov, seed) = match (
                parse_flag(&args, "--len", 100_000usize),
                parse_flag(&args, "--cov", 16.0f64),
                parse_flag(&args, "--seed", 42u64),
            ) {
                (Ok(a), Ok(b), Ok(c)) => (a, b, c),
                _ => return usage(),
            };
            let dataset = match kind.as_str() {
                "human" => hipmer_readsim::human_like_dataset(len, cov, true, seed),
                "wheat" => hipmer_readsim::wheat_like_dataset(len, cov, true, seed),
                "meta" => hipmer_readsim::metagenome_dataset(len, 50, cov, true, seed),
                _ => return usage(),
            };
            let mut buf = Vec::new();
            if let Err(e) = hipmer_seqio::write_fastq(&mut buf, &dataset.all_reads())
                .and_then(|_| std::fs::write(&out, &buf))
            {
                eprintln!("error writing {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "simulated {} ({} bp, {} reads) -> {}",
                dataset.name,
                dataset.total_genome_bases(),
                dataset.all_reads().len(),
                out.display()
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
