//! The end-to-end assembly driver, with stage-level fault recovery.
//!
//! The pipeline decomposes into five checkpointable stages —
//! `kmer-analysis`, `contig-generation`, `scaffold-prep`, `alignment`,
//! `scaffolding` — each run inside [`hipmer_pgas::catch_stage_abort`] so
//! an injected (or modeled) rank failure aborts only the stage, not the
//! process. [`run_assembly`] retries an aborted stage up to
//! [`RunOptions::stage_retries`] times, rolling the [`PipelineReport`]
//! back to the stage's mark first so a retried attempt *replaces* the
//! aborted one in the wall-clock and counter totals. With a
//! [`RunOptions::checkpoint_dir`], each completed stage's artifact is
//! persisted (see [`crate::checkpoint`]), and `--resume` skips validated
//! stages entirely — the recovery guarantee is that a resumed or retried
//! run produces a byte-identical assembly to an undisturbed one.
//!
//! With [`crate::config::PipelineConfig::try_multi_k`] (two or more k
//! values) the fixed stage list generalizes to MetaHipMer-style *rounds*:
//! each k runs its own `round{N}/kmer-analysis` + `round{N}/contig-generation`
//! pair, round N+1's input is the original reads plus round N's contigs
//! injected as high-confidence pseudo-reads, and a single scaffolding
//! pass at the largest k closes the pipeline. Every round stage is a
//! first-class checkpointable stage, so `--resume`, `--halt-after`,
//! retry/rollback, and the schema report all work per-round unchanged.

use crate::checkpoint::{self, CheckpointStore, Fingerprint, ScaffoldState};
use crate::config::PipelineConfig;
use crate::stats::AssemblyStats;
use hipmer_align::align_reads;
use hipmer_contig::{generate_contigs, ContigSet};
use hipmer_kanalysis::analyze_kmers;
use hipmer_pgas::{catch_stage_abort, metrics, CheckpointEvent, RoundReport, StageAttempt};
use hipmer_pgas::{CommStats, PhaseReport, PipelineReport, Team, Topology};
use hipmer_scaffold::{prepare_contigs, scaffold_rounds, ScaffoldSet};
use hipmer_seqio::{read_fastq_parallel, SeqRecord};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A finished assembly.
pub struct Assembly {
    /// Final scaffolds (equals contigs wrapped as singletons when
    /// scaffolding is disabled, e.g. the metagenome preset).
    pub scaffolds: ScaffoldSet,
    /// The traversal's contig set (pre-bubble-merge).
    pub contigs: ContigSet,
    /// Headline statistics.
    pub stats: AssemblyStats,
    /// Per-phase counters + modeled-time inputs.
    pub report: PipelineReport,
}

/// Checkpoint/restart knobs for [`run_assembly`]. [`Default`] gives the
/// classic in-memory pipeline: no checkpoint directory, one retry per
/// stage.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Directory for stage checkpoints (`None` disables persistence;
    /// stage retries then restart from in-memory inputs).
    pub checkpoint_dir: Option<PathBuf>,
    /// Validate an existing checkpoint directory and skip its completed
    /// stages instead of starting fresh.
    pub resume: bool,
    /// Save a checkpoint every Nth stage (1 = every stage). A skipped
    /// save invalidates later on-disk artifacts so `--resume` can never
    /// jump a gap.
    pub checkpoint_interval: usize,
    /// How many times an aborted stage is re-executed before the run
    /// gives up with [`PipelineError::StageAborted`].
    pub stage_retries: usize,
    /// Stop (successfully) after the named stage completes — the
    /// checkpoint-then-resume test harness hook.
    pub halt_after: Option<String>,
    /// Cooperative cancellation: checked at every stage boundary. When the
    /// flag is set the run stops with [`PipelineError::Interrupted`]
    /// *between* stages, so with a [`RunOptions::checkpoint_dir`] every
    /// completed stage's artifact is already on disk and a later
    /// `resume: true` run restarts from the longest valid prefix. Signal
    /// handlers (one-shot CLI) and the job server's drain path both feed
    /// this flag.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            checkpoint_dir: None,
            resume: false,
            checkpoint_interval: 1,
            stage_retries: 1,
            halt_after: None,
            cancel: None,
        }
    }
}

/// Why [`run_assembly`] did not return an assembly.
#[derive(Debug)]
pub enum PipelineError {
    /// I/O or input-validation failure: reading the input reads, or
    /// checkpoint store access.
    Io(std::io::Error),
    /// A stage kept aborting after exhausting its retry budget.
    StageAborted {
        /// The stage that failed.
        stage: String,
        /// The failing rank of the last attempt.
        rank: usize,
        /// Total attempts made (1 + retries).
        attempts: usize,
    },
    /// The run stopped early as requested by [`RunOptions::halt_after`].
    Halted {
        /// The stage after which the run halted.
        stage: String,
    },
    /// [`RunOptions::halt_after`] named a stage the configured pipeline
    /// will never run (misspelled, or round-qualified with a round the
    /// multi-k schedule doesn't have). Caught up front, before any stage
    /// executes — previously a bad name silently ran the full pipeline.
    UnknownStage {
        /// The name that matched no planned stage.
        stage: String,
        /// Every stage this run would execute, in order.
        valid: Vec<String>,
    },
    /// The [`RunOptions::cancel`] flag stopped the run at a stage
    /// boundary. Already-completed stages are checkpointed (when a
    /// checkpoint directory is configured), so the run is resumable.
    Interrupted {
        /// The stage that was about to run when the flag was observed.
        stage: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Io(e) => write!(f, "I/O: {e}"),
            PipelineError::StageAborted {
                stage,
                rank,
                attempts,
            } => write!(
                f,
                "stage {stage:?} aborted on rank {rank} after {attempts} attempts"
            ),
            PipelineError::Halted { stage } => write!(f, "halted after stage {stage:?}"),
            PipelineError::UnknownStage { stage, valid } => write!(
                f,
                "unknown --halt-after stage {stage:?}; valid stages: {}",
                valid.join(", ")
            ),
            PipelineError::Interrupted { stage } => {
                write!(f, "interrupted before stage {stage:?}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}

/// Spread `bytes` of checkpoint I/O over the topology's ranks (the way a
/// real stage writes its shard of the artifact to the parallel FS), so
/// the shared-I/O saturation model prices it like any other I/O phase.
fn io_phase(name: String, topo: Topology, bytes: u64, write: bool, wall: f64) -> PhaseReport {
    let ranks = topo.ranks() as u64;
    let mut stats = vec![CommStats::new(); topo.ranks()];
    for (i, s) in stats.iter_mut().enumerate() {
        let share = bytes / ranks + u64::from((i as u64) < bytes % ranks);
        if write {
            s.io_write_bytes = share;
        } else {
            s.io_read_bytes = share;
        }
    }
    PhaseReport::new(name, topo, stats).with_wall(wall)
}

/// Every stage a [`run_assembly`] call with this config will execute, in
/// order. Classic configs plan the fixed two/five-stage list; multi-k
/// configs plan a `round{N}/kmer-analysis` + `round{N}/contig-generation`
/// pair per k, then the scaffolding tail. [`RunOptions::halt_after`] is
/// validated against this list up front, so a misspelled stage name fails
/// fast instead of silently running the whole pipeline.
pub fn planned_stage_names(cfg: &PipelineConfig) -> Vec<String> {
    let mut names = Vec::new();
    if let Some(ks) = cfg.multi_k_rounds() {
        for round in 1..=ks.len() {
            names.push(format!("round{round}/kmer-analysis"));
            names.push(format!("round{round}/contig-generation"));
        }
    } else {
        names.push("kmer-analysis".to_string());
        names.push("contig-generation".to_string());
    }
    if cfg.scaffolding_enabled() {
        names.push("scaffold-prep".to_string());
        names.push("alignment".to_string());
        names.push("scaffolding".to_string());
    }
    names
}

/// Drives the stages of one [`run_assembly`] call: retry-with-rollback on
/// stage aborts, checkpoint save/load, and the per-stage bookkeeping that
/// lands in the schema-v3 report (`stage_attempts`, `checkpoints`).
struct StageRunner<'a> {
    report: PipelineReport,
    store: Option<CheckpointStore>,
    opts: &'a RunOptions,
    topo: Topology,
    next_index: usize,
    total_stages: usize,
}

impl StageRunner<'_> {
    /// Run (or resume) one stage. `run` executes the stage body and may
    /// unwind with a [`hipmer_pgas::StageAbort`]; `encode`/`decode` are
    /// the stage's checkpoint codec.
    fn stage<T>(
        &mut self,
        name: &str,
        mut run: impl FnMut() -> (T, Vec<PhaseReport>),
        encode: impl FnOnce(&T) -> Vec<u8>,
        decode: impl FnOnce(&[u8]) -> std::io::Result<T>,
    ) -> Result<T, PipelineError> {
        let index = self.next_index;
        self.next_index += 1;

        // Cooperative cancellation: stop cleanly between stages, leaving
        // the checkpoint prefix written so far intact for a resume.
        if let Some(cancel) = &self.opts.cancel {
            if cancel.load(Ordering::SeqCst) {
                metrics::counter_add("hipmer/pipeline/interrupted", 1);
                return Err(PipelineError::Interrupted {
                    stage: name.to_string(),
                });
            }
        }

        // Resume path: a validated artifact satisfies the stage outright.
        if self.opts.resume {
            if let Some(store) = &self.store {
                if store.completed(name) {
                    let t0 = Instant::now();
                    let (payload, bytes, checksum) = store.load(name)?;
                    let value = decode(&payload)?;
                    let wall = t0.elapsed().as_secs_f64();
                    metrics::observe(
                        "hipmer/checkpoint/load_nanos",
                        t0.elapsed().as_nanos() as u64,
                    );
                    metrics::observe("hipmer/checkpoint/load_bytes", bytes);
                    self.report.push(io_phase(
                        format!("checkpoint/load-{name}"),
                        self.topo,
                        bytes,
                        false,
                        wall,
                    ));
                    self.report.stage_attempts.push(StageAttempt {
                        stage: name.to_string(),
                        executions: 0,
                        aborted: 0,
                        resumed: true,
                    });
                    self.report.checkpoints.push(CheckpointEvent {
                        stage: name.to_string(),
                        action: "load".to_string(),
                        bytes,
                        checksum,
                    });
                    metrics::pool_progress("pipeline/stages", 1, self.total_stages as u64);
                    return self.maybe_halt(name, value);
                }
            }
        }

        // Live path: execute, retrying after stage aborts with the report
        // rolled back so the failed attempt's phases don't double-count.
        let mark = self.report.mark();
        let mut aborted = 0u64;
        loop {
            crate::alloc::reset_peak();
            match catch_stage_abort(&mut run) {
                Ok((value, phases)) => {
                    if metrics::is_enabled() {
                        metrics::gauge_max(
                            &format!("hipmer/mem/stage_peak_bytes/{name}"),
                            crate::alloc::peak_bytes() as f64,
                        );
                    }
                    for p in phases {
                        self.report.push(p);
                    }
                    self.report.stage_attempts.push(StageAttempt {
                        stage: name.to_string(),
                        executions: aborted + 1,
                        aborted,
                        resumed: false,
                    });
                    if let Some(store) = &mut self.store {
                        if index.is_multiple_of(self.opts.checkpoint_interval.max(1)) {
                            let payload = encode(&value);
                            let t0 = Instant::now();
                            let (bytes, checksum) = store.save(index, name, &payload)?;
                            let wall = t0.elapsed().as_secs_f64();
                            metrics::observe(
                                "hipmer/checkpoint/save_nanos",
                                t0.elapsed().as_nanos() as u64,
                            );
                            metrics::observe("hipmer/checkpoint/save_bytes", bytes);
                            self.report.push(io_phase(
                                format!("checkpoint/save-{name}"),
                                self.topo,
                                bytes,
                                true,
                                wall,
                            ));
                            self.report.checkpoints.push(CheckpointEvent {
                                stage: name.to_string(),
                                action: "save".to_string(),
                                bytes,
                                checksum,
                            });
                        } else {
                            // This stage's output exists only in memory:
                            // anything later on disk is now stale.
                            store.invalidate_from(index);
                        }
                    }
                    metrics::pool_progress("pipeline/stages", 1, self.total_stages as u64);
                    return self.maybe_halt(name, value);
                }
                Err(abort) => {
                    self.report.rollback_to(mark);
                    aborted += 1;
                    if aborted as usize > self.opts.stage_retries {
                        self.report.stage_attempts.push(StageAttempt {
                            stage: name.to_string(),
                            executions: aborted,
                            aborted,
                            resumed: false,
                        });
                        return Err(PipelineError::StageAborted {
                            stage: name.to_string(),
                            rank: abort.rank,
                            attempts: aborted as usize,
                        });
                    }
                }
            }
        }
    }

    fn maybe_halt<T>(&self, name: &str, value: T) -> Result<T, PipelineError> {
        if self.opts.halt_after.as_deref() == Some(name) {
            Err(PipelineError::Halted {
                stage: name.to_string(),
            })
        } else {
            Ok(value)
        }
    }
}

/// Assemble reads end-to-end with checkpoint/restart and stage-abort
/// recovery. `lib_ranges` partitions read indices by library (see
/// [`hipmer_scaffold::scaffold_pipeline`]).
pub fn run_assembly(
    team: &Team,
    reads: &[SeqRecord],
    lib_ranges: &[Range<usize>],
    cfg: &PipelineConfig,
    opts: &RunOptions,
) -> Result<Assembly, PipelineError> {
    let topo = *team.topo();
    // Fail fast on a --halt-after name the configured pipeline will never
    // run; an equality check per stage would just silently never match.
    if let Some(halt) = &opts.halt_after {
        let valid = planned_stage_names(cfg);
        if !valid.iter().any(|s| s == halt) {
            return Err(PipelineError::UnknownStage {
                stage: halt.clone(),
                valid,
            });
        }
    }
    if opts.checkpoint_interval == 0 {
        eprintln!(
            "hipmer: warning: --checkpoint-interval 0 is not meaningful; \
             treating it as 1 (checkpoint every stage)"
        );
    }
    let fingerprint = Fingerprint {
        k: cfg.k,
        ranks: topo.ranks(),
        ranks_per_node: topo.ranks_per_node(),
        n_reads: reads.len(),
        read_bases: reads.iter().map(|r| r.len()).sum(),
        rounds: if cfg.scaffolding_enabled() {
            cfg.scaffold.rounds
        } else {
            0
        },
        multi_k: cfg.multi_k.clone(),
    };
    let store = match &opts.checkpoint_dir {
        Some(dir) if opts.resume => Some(CheckpointStore::open_for_resume(dir, fingerprint)?),
        Some(dir) => Some(CheckpointStore::create(dir, fingerprint)?),
        None => None,
    };
    if let Some(n) = cfg.trace_sample_ranks {
        hipmer_pgas::trace::set_sample_ranks(n);
    }
    let mut runner = StageRunner {
        report: PipelineReport::new().with_partition(cfg.partition().to_string()),
        store,
        opts,
        topo,
        next_index: 0,
        total_stages: cfg.multi_k_rounds().map_or(2, |ks| 2 * ks.len())
            + if cfg.scaffolding_enabled() { 3 } else { 0 },
    };

    let (spectrum, contigs) = if let Some(ks) = cfg.multi_k_rounds() {
        // MetaHipMer rounds: kmer-analysis + contig-generation per k,
        // feeding each round's contigs forward as pseudo-reads. The
        // scaffolding tail below then runs once, at the largest k, on the
        // final round's spectrum/contigs and the *original* reads.
        let n_rounds = ks.len();
        let mut round_reads: Vec<SeqRecord> = Vec::new();
        let mut injected = 0u64;
        let mut last = None;
        for (ri, &k) in ks.iter().enumerate() {
            let round = ri + 1;
            let is_final = round == n_rounds;
            // Non-final rounds prune low-depth hairs (round_prune_depth);
            // the final round runs this config's own stage configs
            // verbatim so `--multi-k` ending at k equals classic-k quality.
            let (ka_cfg, contig_cfg) = if is_final {
                (cfg.kanalysis.clone(), cfg.contig.clone())
            } else {
                cfg.round_stage_configs(k)
            };
            let input: &[SeqRecord] = if round == 1 { reads } else { &round_reads };
            let phase_mark = runner.report.phases.len();
            let spectrum = runner.stage(
                &format!("round{round}/kmer-analysis"),
                || analyze_kmers(team, input, &ka_cfg),
                checkpoint::encode_spectrum,
                |b| checkpoint::decode_spectrum(b, topo, cfg.partition()),
            )?;
            let round_contigs = runner.stage(
                &format!("round{round}/contig-generation"),
                || generate_contigs(team, &spectrum, &contig_cfg),
                checkpoint::encode_contigs,
                checkpoint::decode_contigs,
            )?;
            let mut acc = CommStats::new();
            for p in &runner.report.phases[phase_mark..] {
                acc.merge(&p.totals());
            }
            runner.report.rounds.push(RoundReport {
                round,
                k,
                contigs: round_contigs.len() as u64,
                pseudo_reads: injected,
                offnode_fraction: acc.offnode_fraction().unwrap_or(0.0),
            });
            if !is_final {
                // Next round's input: original reads plus this round's
                // contigs as pseudo-reads. Each pseudo-read is emitted
                // twice so its k-mers clear the min_count=2 filter, at a
                // quality comfortably above the min_qual floor. Derived
                // from the (possibly checkpoint-decoded) contig set, so a
                // resumed round N+1 sees byte-identical input.
                round_reads = reads.to_vec();
                injected = 0;
                for c in &round_contigs.contigs {
                    let rec = SeqRecord::with_uniform_quality(
                        format!("pseudo{round}:{}", c.id),
                        c.seq.clone(),
                        40,
                    );
                    round_reads.push(rec.clone());
                    round_reads.push(rec);
                    injected += 2;
                }
            }
            last = Some((spectrum, round_contigs));
        }
        last.expect("multi-k mode plans at least two rounds")
    } else {
        // Stage 0: k-mer analysis.
        let spectrum = runner.stage(
            "kmer-analysis",
            || analyze_kmers(team, reads, &cfg.kanalysis),
            checkpoint::encode_spectrum,
            |b| checkpoint::decode_spectrum(b, topo, cfg.partition()),
        )?;

        // Stage 1: contig generation (the raw, pre-bubble contig set).
        let contigs = runner.stage(
            "contig-generation",
            || generate_contigs(team, &spectrum, &cfg.contig),
            checkpoint::encode_contigs,
            checkpoint::decode_contigs,
        )?;
        (spectrum, contigs)
    };

    // Stages 2-4: scaffolding (unless disabled).
    let (scaffolds, gaps) = if cfg.scaffolding_enabled() {
        // Stage 2: depths + bubble merging.
        let prepared = runner.stage(
            "scaffold-prep",
            || prepare_contigs(team, &spectrum, &contigs, cfg.scaffold.schedule),
            checkpoint::encode_contigs,
            checkpoint::decode_contigs,
        )?;

        // Stage 3: round-0 merAligner (depends only on the prepared
        // contigs, so it can be hoisted out of the round loop and
        // checkpointed — see `hipmer_scaffold::scaffold_rounds`).
        let alignments = runner.stage(
            "alignment",
            || align_reads(team, &prepared, reads, &cfg.scaffold.align),
            |alns| checkpoint::encode_alignments(alns),
            checkpoint::decode_alignments,
        )?;

        // Stage 4: the scaffolding rounds proper.
        let state = runner.stage(
            "scaffolding",
            || {
                let out = scaffold_rounds(
                    team,
                    &spectrum,
                    prepared.clone(),
                    reads,
                    lib_ranges,
                    &cfg.scaffold,
                    Some(alignments.clone()),
                );
                (
                    ScaffoldState {
                        scaffolds: out.scaffolds,
                        gap_stats: out.gap_stats,
                        insert_means: out.insert_means,
                    },
                    out.reports,
                )
            },
            checkpoint::encode_scaffold_state,
            checkpoint::decode_scaffold_state,
        )?;
        (state.scaffolds, state.gap_stats)
    } else {
        // Contigs become singleton "scaffolds" verbatim. Scaffold members
        // index contigs with u32; surface an overflow as a clean error
        // instead of silently truncating the index.
        let sequences: Vec<Vec<u8>> = contigs.contigs.iter().map(|c| c.seq.clone()).collect();
        let mut singletons = Vec::with_capacity(sequences.len());
        for i in 0..sequences.len() {
            let contig = u32::try_from(i).map_err(|_| {
                PipelineError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("contig index {i} exceeds the u32 scaffold-member id space"),
                ))
            })?;
            singletons.push(hipmer_scaffold::Scaffold {
                members: vec![hipmer_scaffold::ScaffoldMember {
                    contig,
                    reversed: false,
                    gap_before: 0,
                }],
            });
        }
        let scaffolds = ScaffoldSet {
            scaffolds: singletons,
            sequences,
        };
        (scaffolds, Default::default())
    };

    let stats = AssemblyStats {
        n_reads: reads.len(),
        read_bases: reads.iter().map(|r| r.len()).sum(),
        distinct_kmers: spectrum.distinct(),
        n_contigs: contigs.len(),
        contig_n50: contigs.n50(),
        n_scaffolds: scaffolds.len(),
        scaffold_n50: scaffolds.n50(),
        scaffold_bases: scaffolds.total_bases(),
        gaps,
    };

    Ok(Assembly {
        scaffolds,
        contigs,
        stats,
        report: runner.report,
    })
}

/// Assemble reads end-to-end. `lib_ranges` partitions read indices by
/// library (see [`hipmer_scaffold::scaffold_pipeline`]). Thin wrapper
/// over [`run_assembly`] with default [`RunOptions`].
///
/// # Panics
/// Panics if a stage aborts past its retry budget (arm a fault plan and
/// call [`run_assembly`] instead to handle that case).
pub fn assemble(
    team: &Team,
    reads: &[SeqRecord],
    lib_ranges: &[Range<usize>],
    cfg: &PipelineConfig,
) -> Assembly {
    run_assembly(team, reads, lib_ranges, cfg, &RunOptions::default())
        .expect("assembly failed without checkpointing enabled")
}

/// [`run_assembly`] straight from a FASTQ file using the §3.3 parallel
/// block reader; the I/O phase is measured and priced like every other
/// phase. The file is treated as a single library.
pub fn run_assembly_fastq(
    team: &Team,
    path: &Path,
    cfg: &PipelineConfig,
    opts: &RunOptions,
) -> Result<Assembly, PipelineError> {
    // Apply the trace cap before the I/O phase, not just inside
    // `run_assembly`, so `io/fastq` spans honor it too.
    if let Some(n) = cfg.trace_sample_ranks {
        hipmer_pgas::trace::set_sample_ranks(n);
    }
    let (per_rank, io_stats) = read_fastq_parallel(team, path)?;
    let reads: Vec<SeqRecord> = per_rank.into_iter().flatten().collect();
    let lib_range = 0..reads.len();
    let mut assembly = run_assembly(team, &reads, std::slice::from_ref(&lib_range), cfg, opts)?;
    // Prepend the I/O phase so stage grouping sees it.
    assembly.report.phases.insert(
        0,
        hipmer_pgas::PhaseReport::new("io/fastq", *team.topo(), io_stats),
    );
    Ok(assembly)
}

/// Assemble straight from a FASTQ file with default [`RunOptions`].
pub fn assemble_fastq(team: &Team, path: &Path, cfg: &PipelineConfig) -> std::io::Result<Assembly> {
    match run_assembly_fastq(team, path, cfg, &RunOptions::default()) {
        Ok(a) => Ok(a),
        Err(PipelineError::Io(e)) => Err(e),
        Err(e) => panic!("assembly failed without checkpointing enabled: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{kmer_containment, StageTimes};
    use hipmer_pgas::{CostModel, Topology};
    use hipmer_readsim::human_like_dataset;

    fn lib_ranges_of(d: &hipmer_readsim::Dataset) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for lib in &d.reads_per_library {
            out.push(start..start + lib.len());
            start += lib.len();
        }
        out
    }

    #[test]
    fn end_to_end_assembly_reconstructs_genome() {
        let dataset = human_like_dataset(30_000, 18.0, false, 5);
        let team = Team::new(Topology::new(4, 2));
        let reads = dataset.all_reads();
        let cfg = PipelineConfig::new(21);
        let assembly = assemble(&team, &reads, &lib_ranges_of(&dataset), &cfg);

        assert!(assembly.stats.scaffold_n50 >= assembly.stats.contig_n50);
        // Accuracy: nearly all scaffold k-mers come from a haplotype, and
        // nearly the whole genome is covered.
        let reference = {
            let mut r = dataset.genomes[0].haplotypes[0].clone();
            r.extend_from_slice(b"N"); // separator
            r.extend_from_slice(&dataset.genomes[0].haplotypes[1]);
            r
        };
        let (precision, completeness) =
            kmer_containment(&reference, &assembly.scaffolds.sequences, 21);
        assert!(precision > 0.99, "precision {precision}");
        assert!(completeness > 0.90, "completeness {completeness}");
    }

    #[test]
    fn stage_times_are_all_populated() {
        let dataset = human_like_dataset(15_000, 16.0, false, 6);
        let team = Team::new(Topology::new(4, 2));
        let reads = dataset.all_reads();
        let assembly = assemble(
            &team,
            &reads,
            &lib_ranges_of(&dataset),
            &PipelineConfig::new(21),
        );
        let t = StageTimes::from_report(&assembly.report, &CostModel::edison());
        assert!(t.kmer_analysis > 0.0);
        assert!(t.contig_generation > 0.0);
        assert!(t.meraligner > 0.0);
        assert!(t.gap_closing > 0.0);
        assert!(t.rest_scaffolding > 0.0);
        assert!(t.total() > 0.0);
    }

    #[test]
    fn metagenome_preset_skips_scaffolding() {
        let dataset = human_like_dataset(10_000, 14.0, false, 7);
        let team = Team::new(Topology::new(2, 2));
        let reads = dataset.all_reads();
        let assembly = assemble(
            &team,
            &reads,
            &lib_ranges_of(&dataset),
            &PipelineConfig::metagenome_preset(21),
        );
        assert_eq!(assembly.stats.n_scaffolds, assembly.stats.n_contigs);
        assert_eq!(assembly.stats.gaps.total(), 0);
        let t = StageTimes::from_report(&assembly.report, &CostModel::edison());
        assert_eq!(t.meraligner, 0.0);
        assert_eq!(t.gap_closing, 0.0);
    }

    #[test]
    fn assemble_from_fastq_file_counts_io() {
        let dataset = human_like_dataset(10_000, 14.0, false, 8);
        let dir = std::env::temp_dir().join(format!("hipmer-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        let mut buf = Vec::new();
        hipmer_seqio::write_fastq(&mut buf, &dataset.all_reads()).unwrap();
        std::fs::write(&path, &buf).unwrap();

        let team = Team::new(Topology::new(4, 2));
        let assembly = assemble_fastq(&team, &path, &PipelineConfig::new(21)).unwrap();
        assert!(assembly.stats.n_reads > 0);
        let t = StageTimes::from_report(&assembly.report, &CostModel::edison());
        assert!(t.io > 0.0, "I/O phase must be priced");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn ckpt_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hipmer-run-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let dataset = human_like_dataset(15_000, 16.0, false, 11);
        let team = Team::new(Topology::new(4, 2));
        let reads = dataset.all_reads();
        let cfg = PipelineConfig::new(21);
        let ranges = lib_ranges_of(&dataset);

        let plain = assemble(&team, &reads, &ranges, &cfg);

        let dir = ckpt_dir("plainmatch");
        let opts = RunOptions {
            checkpoint_dir: Some(dir.clone()),
            ..RunOptions::default()
        };
        let ckpt = run_assembly(&team, &reads, &ranges, &cfg, &opts).unwrap();
        assert_eq!(plain.scaffolds.sequences, ckpt.scaffolds.sequences);
        // Every stage saved an artifact…
        assert_eq!(
            ckpt.report
                .checkpoints
                .iter()
                .filter(|c| c.action == "save")
                .count(),
            5
        );
        // …and the I/O was priced into the report.
        assert!(ckpt
            .report
            .phases
            .iter()
            .any(|p| p.name.starts_with("checkpoint/save-")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn halt_and_resume_reproduces_the_assembly() {
        let dataset = human_like_dataset(15_000, 16.0, false, 12);
        let team = Team::new(Topology::new(4, 2));
        let reads = dataset.all_reads();
        let cfg = PipelineConfig::new(21);
        let ranges = lib_ranges_of(&dataset);

        let plain = assemble(&team, &reads, &ranges, &cfg);

        let dir = ckpt_dir("resume");
        let halted = run_assembly(
            &team,
            &reads,
            &ranges,
            &cfg,
            &RunOptions {
                checkpoint_dir: Some(dir.clone()),
                halt_after: Some("scaffold-prep".into()),
                ..RunOptions::default()
            },
        );
        assert!(matches!(
            halted,
            Err(PipelineError::Halted { ref stage }) if stage == "scaffold-prep"
        ));

        let resumed = run_assembly(
            &team,
            &reads,
            &ranges,
            &cfg,
            &RunOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain.scaffolds.sequences, resumed.scaffolds.sequences);
        // The first three stages were satisfied from checkpoints.
        let resumed_stages: Vec<_> = resumed
            .report
            .stage_attempts
            .iter()
            .filter(|a| a.resumed)
            .map(|a| a.stage.as_str())
            .collect();
        assert_eq!(
            resumed_stages,
            ["kmer-analysis", "contig-generation", "scaffold-prep"]
        );
        assert!(resumed
            .report
            .phases
            .iter()
            .any(|p| p.name.starts_with("checkpoint/load-")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancelled_run_resumes_to_identical_assembly() {
        let dataset = human_like_dataset(15_000, 16.0, false, 21);
        let team = Team::new(Topology::new(4, 2));
        let reads = dataset.all_reads();
        let cfg = PipelineConfig::new(21);
        let ranges = lib_ranges_of(&dataset);

        let plain = assemble(&team, &reads, &ranges, &cfg);

        // A pre-set cancel flag stops before the first stage runs.
        let dir = ckpt_dir("cancel");
        let cancel = Arc::new(AtomicBool::new(true));
        let err = match run_assembly(
            &team,
            &reads,
            &ranges,
            &cfg,
            &RunOptions {
                checkpoint_dir: Some(dir.clone()),
                cancel: Some(cancel.clone()),
                ..RunOptions::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("pre-set cancel flag must interrupt the run"),
        };
        assert!(matches!(
            err,
            PipelineError::Interrupted { ref stage } if stage == "kmer-analysis"
        ));

        // Run again, letting two stages finish before cancelling (via
        // halt_after to make the boundary deterministic), then resume.
        let halted = run_assembly(
            &team,
            &reads,
            &ranges,
            &cfg,
            &RunOptions {
                checkpoint_dir: Some(dir.clone()),
                halt_after: Some("contig-generation".into()),
                ..RunOptions::default()
            },
        );
        assert!(matches!(halted, Err(PipelineError::Halted { .. })));

        cancel.store(false, Ordering::SeqCst);
        let resumed = run_assembly(
            &team,
            &reads,
            &ranges,
            &cfg,
            &RunOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                cancel: Some(cancel),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain.scaffolds.sequences, resumed.scaffolds.sequences);
        assert!(
            resumed.report.stage_attempts.iter().any(|a| a.resumed),
            "resume must reuse the checkpointed prefix"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_rank_failure_recovers_to_identical_assembly() {
        use hipmer_pgas::FaultPlan;
        use std::sync::Arc;

        let dataset = human_like_dataset(15_000, 16.0, false, 13);
        let reads = dataset.all_reads();
        let cfg = PipelineConfig::new(21);
        let ranges = lib_ranges_of(&dataset);
        let topo = Topology::new(4, 2);

        let plain = assemble(&Team::new(topo), &reads, &ranges, &cfg);

        // Kill rank 2 partway through; the stage aborts once, is rolled
        // back, and the retry (the kill is one-shot) must reproduce the
        // fault-free assembly exactly.
        let plan = FaultPlan::new(99, topo.ranks()).with_rank_failure(2, 1_000);
        let team = Team::new(topo).with_fault_plan(Arc::new(plan));
        let faulty = run_assembly(&team, &reads, &ranges, &cfg, &RunOptions::default()).unwrap();
        assert_eq!(plain.scaffolds.sequences, faulty.scaffolds.sequences);

        let aborted: u64 = faulty.report.stage_attempts.iter().map(|a| a.aborted).sum();
        assert_eq!(aborted, 1, "exactly one stage attempt was killed");
        let retried = faulty
            .report
            .stage_attempts
            .iter()
            .find(|a| a.aborted > 0)
            .unwrap();
        assert_eq!(retried.executions, 2);
    }

    #[test]
    fn exhausted_retry_budget_surfaces_the_failing_stage() {
        use hipmer_pgas::FaultPlan;
        use std::sync::Arc;

        let dataset = human_like_dataset(8_000, 14.0, false, 14);
        let reads = dataset.all_reads();
        let cfg = PipelineConfig::new(21);
        let ranges = lib_ranges_of(&dataset);
        let topo = Topology::new(2, 2);

        // Transient probability 1.0 exhausts any retry budget immediately
        // and escalates to a hard failure on the first remote access.
        let plan = FaultPlan::new(7, topo.ranks()).with_transient(1.0);
        let team = Team::new(topo).with_fault_plan(Arc::new(plan));
        let err = match run_assembly(
            &team,
            &reads,
            &ranges,
            &cfg,
            &RunOptions {
                stage_retries: 1,
                ..RunOptions::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("expected the run to fail"),
        };
        match err {
            PipelineError::StageAborted {
                stage, attempts, ..
            } => {
                assert_eq!(stage, "kmer-analysis");
                assert_eq!(attempts, 2);
            }
            other => panic!("expected StageAborted, got {other}"),
        }
    }

    #[test]
    fn checkpoint_interval_gates_saves() {
        let dataset = human_like_dataset(10_000, 14.0, false, 15);
        let team = Team::new(Topology::new(2, 2));
        let reads = dataset.all_reads();
        let cfg = PipelineConfig::new(21);
        let ranges = lib_ranges_of(&dataset);

        let dir = ckpt_dir("interval");
        let out = run_assembly(
            &team,
            &reads,
            &ranges,
            &cfg,
            &RunOptions {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_interval: 2,
                ..RunOptions::default()
            },
        )
        .unwrap();
        // Stages 0, 2, 4 saved; 1 and 3 skipped — and each skip
        // invalidates what came after, so only the last save survives
        // contiguously... the store keeps records per its prefix rule.
        let saves: Vec<_> = out
            .report
            .checkpoints
            .iter()
            .filter(|c| c.action == "save")
            .map(|c| c.stage.as_str())
            .collect();
        assert_eq!(saves, ["kmer-analysis", "scaffold-prep", "scaffolding"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_halt_after_is_rejected_up_front() {
        let dataset = human_like_dataset(5_000, 12.0, false, 31);
        let team = Team::new(Topology::new(2, 2));
        let reads = dataset.all_reads();
        let ranges = lib_ranges_of(&dataset);

        // Misspelled classic stage name: fails fast, listing the plan.
        let err = match run_assembly(
            &team,
            &reads,
            &ranges,
            &PipelineConfig::new(21),
            &RunOptions {
                halt_after: Some("contig-generatoin".into()),
                ..RunOptions::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("an unknown --halt-after stage must not run the pipeline"),
        };
        match err {
            PipelineError::UnknownStage { stage, valid } => {
                assert_eq!(stage, "contig-generatoin");
                assert_eq!(
                    valid,
                    [
                        "kmer-analysis",
                        "contig-generation",
                        "scaffold-prep",
                        "alignment",
                        "scaffolding"
                    ]
                );
            }
            other => panic!("expected UnknownStage, got {other}"),
        }

        // Round-qualified names are validated against the multi-k plan:
        // "round3/…" doesn't exist in a two-round schedule.
        let cfg = PipelineConfig::metagenome_preset(33)
            .try_multi_k(&[21, 33])
            .unwrap();
        let err = match run_assembly(
            &team,
            &reads,
            &ranges,
            &cfg,
            &RunOptions {
                halt_after: Some("round3/kmer-analysis".into()),
                ..RunOptions::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("an out-of-range round must not run the pipeline"),
        };
        match err {
            PipelineError::UnknownStage { stage, valid } => {
                assert_eq!(stage, "round3/kmer-analysis");
                assert_eq!(
                    valid,
                    [
                        "round1/kmer-analysis",
                        "round1/contig-generation",
                        "round2/kmer-analysis",
                        "round2/contig-generation"
                    ]
                );
            }
            other => panic!("expected UnknownStage, got {other}"),
        }
    }

    #[test]
    fn single_element_multi_k_matches_classic_byte_for_byte() {
        use hipmer_pgas::PartitionScheme;

        let dataset = human_like_dataset(15_000, 16.0, false, 32);
        let team = Team::new(Topology::new(4, 2));
        let reads = dataset.all_reads();
        let ranges = lib_ranges_of(&dataset);

        for partition in [PartitionScheme::Uniform, PartitionScheme::Minimizer] {
            let classic = PipelineConfig::new(21).with_partition(partition);
            let single = PipelineConfig::new(21)
                .with_partition(partition)
                .try_multi_k(&[21])
                .unwrap();
            let a = assemble(&team, &reads, &ranges, &classic);
            let b = assemble(&team, &reads, &ranges, &single);
            assert_eq!(
                a.scaffolds.sequences, b.scaffolds.sequences,
                "--multi-k 21 must be byte-identical to single-k ({partition:?})"
            );
            // And it runs the classic stage list — no round prefixes.
            let stages: Vec<_> = b
                .report
                .stage_attempts
                .iter()
                .map(|s| s.stage.as_str())
                .collect();
            assert_eq!(
                stages,
                [
                    "kmer-analysis",
                    "contig-generation",
                    "scaffold-prep",
                    "alignment",
                    "scaffolding"
                ]
            );
            assert!(b.report.rounds.is_empty(), "classic runs report no rounds");
        }
    }

    #[test]
    fn multi_k_runs_rounds_and_reports_them() {
        let dataset = hipmer_readsim::metagenome_dataset(60_000, 8, 10.0, false, 33);
        let team = Team::new(Topology::new(4, 2));
        let reads = dataset.all_reads();
        let ranges = lib_ranges_of(&dataset);
        let cfg = PipelineConfig::metagenome_preset(33)
            .try_multi_k(&[21, 33])
            .unwrap();

        let assembly = assemble(&team, &reads, &ranges, &cfg);
        let stages: Vec<_> = assembly
            .report
            .stage_attempts
            .iter()
            .map(|s| s.stage.as_str())
            .collect();
        assert_eq!(
            stages,
            [
                "round1/kmer-analysis",
                "round1/contig-generation",
                "round2/kmer-analysis",
                "round2/contig-generation"
            ]
        );
        let rounds = &assembly.report.rounds;
        assert_eq!(rounds.len(), 2);
        assert_eq!((rounds[0].round, rounds[0].k), (1, 21));
        assert_eq!((rounds[1].round, rounds[1].k), (2, 33));
        assert_eq!(rounds[0].pseudo_reads, 0, "round 1 sees only real reads");
        assert!(
            rounds[1].pseudo_reads >= 2 * rounds[0].contigs,
            "round 2 must be fed round 1's contigs as pseudo-reads (twice each)"
        );
        assert!(rounds[0].contigs > 0);
        assert!(assembly.stats.n_contigs > 0);
    }

    #[test]
    fn multi_k_resumes_byte_identically_at_every_round_boundary() {
        let dataset = hipmer_readsim::metagenome_dataset(60_000, 8, 10.0, false, 34);
        let team = Team::new(Topology::new(4, 2));
        let reads = dataset.all_reads();
        let ranges = lib_ranges_of(&dataset);
        // Scaffolding enabled: the resume sweep crosses both the round
        // boundaries and the rounds→scaffolding seam.
        let cfg = PipelineConfig::new(33).try_multi_k(&[21, 33]).unwrap();

        let plain = assemble(&team, &reads, &ranges, &cfg);

        for halt_stage in planned_stage_names(&cfg) {
            let dir = ckpt_dir(&format!("mkres-{}", halt_stage.replace('/', "-")));
            let halted = run_assembly(
                &team,
                &reads,
                &ranges,
                &cfg,
                &RunOptions {
                    checkpoint_dir: Some(dir.clone()),
                    halt_after: Some(halt_stage.clone()),
                    ..RunOptions::default()
                },
            );
            assert!(
                matches!(halted, Err(PipelineError::Halted { ref stage }) if *stage == halt_stage),
                "run must halt after {halt_stage}"
            );
            let resumed = run_assembly(
                &team,
                &reads,
                &ranges,
                &cfg,
                &RunOptions {
                    checkpoint_dir: Some(dir.clone()),
                    resume: true,
                    ..RunOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                plain.scaffolds.sequences, resumed.scaffolds.sequences,
                "kill-and-resume at {halt_stage} must be byte-identical"
            );
            assert!(
                resumed.report.stage_attempts.iter().any(|a| a.resumed),
                "resume after {halt_stage} must reuse the checkpointed prefix"
            );
            // The rounds report is rebuilt identically on resume.
            assert_eq!(resumed.report.rounds.len(), plain.report.rounds.len());
            for (a, b) in plain.report.rounds.iter().zip(&resumed.report.rounds) {
                assert_eq!(
                    (a.round, a.k, a.contigs, a.pseudo_reads),
                    (b.round, b.k, b.contigs, b.pseudo_reads)
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[cfg(test)]
mod indel_tests {
    use super::*;
    use crate::stats::kmer_containment;
    use hipmer_pgas::Topology;
    use hipmer_readsim::{human_like, simulate_library, ErrorModel, Library};

    #[test]
    fn assembly_tolerates_indel_reads() {
        // Indel errors break read k-mers (filtered by counting) and shift
        // alignment diagonals (recovered by the gapped merAligner path);
        // the assembly must stay accurate.
        let genome = human_like(30_000, 44);
        let reads = simulate_library(
            &genome,
            &Library::short_insert(20.0),
            &ErrorModel::illumina_with_indels(),
            45,
        );
        let team = Team::new(Topology::new(6, 3));
        let assembly = assemble(
            &team,
            &reads,
            std::slice::from_ref(&(0..reads.len())),
            &PipelineConfig::new(21),
        );
        let mut reference = genome.haplotypes[0].clone();
        reference.push(b'N');
        reference.extend_from_slice(&genome.haplotypes[1]);
        let (precision, completeness) =
            kmer_containment(&reference, &assembly.scaffolds.sequences, 21);
        assert!(precision > 0.97, "precision {precision}");
        assert!(completeness > 0.80, "completeness {completeness}");
        assert!(assembly.stats.scaffold_n50 > 2_000);
    }
}
