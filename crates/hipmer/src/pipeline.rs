//! The end-to-end assembly driver.

use crate::config::PipelineConfig;
use crate::stats::AssemblyStats;
use hipmer_contig::{generate_contigs, ContigSet};
use hipmer_kanalysis::analyze_kmers;
use hipmer_pgas::{PipelineReport, Team};
use hipmer_scaffold::{scaffold_pipeline, ScaffoldSet};
use hipmer_seqio::{read_fastq_parallel, SeqRecord};
use std::ops::Range;
use std::path::Path;

/// A finished assembly.
pub struct Assembly {
    /// Final scaffolds (equals contigs wrapped as singletons when
    /// scaffolding is disabled, e.g. the metagenome preset).
    pub scaffolds: ScaffoldSet,
    /// The traversal's contig set (pre-bubble-merge).
    pub contigs: ContigSet,
    /// Headline statistics.
    pub stats: AssemblyStats,
    /// Per-phase counters + modeled-time inputs.
    pub report: PipelineReport,
}

/// Assemble reads end-to-end. `lib_ranges` partitions read indices by
/// library (see [`hipmer_scaffold::scaffold_pipeline`]).
pub fn assemble(
    team: &Team,
    reads: &[SeqRecord],
    lib_ranges: &[Range<usize>],
    cfg: &PipelineConfig,
) -> Assembly {
    let mut report = PipelineReport::new();

    // Stage 1: k-mer analysis.
    let (spectrum, phases) = analyze_kmers(team, reads, &cfg.kanalysis);
    for p in phases {
        report.push(p);
    }

    // Stage 2: contig generation.
    let (contigs, phases) = generate_contigs(team, &spectrum, &cfg.contig);
    for p in phases {
        report.push(p);
    }

    // Stage 3: scaffolding (unless disabled).
    let (scaffolds, gaps) = if cfg.scaffolding_enabled() {
        let out = scaffold_pipeline(team, &spectrum, &contigs, reads, lib_ranges, &cfg.scaffold);
        for p in out.reports {
            report.push(p);
        }
        (out.scaffolds, out.gap_stats)
    } else {
        // Contigs become singleton "scaffolds" verbatim.
        let sequences: Vec<Vec<u8>> = contigs.contigs.iter().map(|c| c.seq.clone()).collect();
        let scaffolds = ScaffoldSet {
            scaffolds: sequences
                .iter()
                .enumerate()
                .map(|(i, _)| hipmer_scaffold::Scaffold {
                    members: vec![hipmer_scaffold::ScaffoldMember {
                        contig: i as u32,
                        reversed: false,
                        gap_before: 0,
                    }],
                })
                .collect(),
            sequences,
        };
        (scaffolds, Default::default())
    };

    let stats = AssemblyStats {
        n_reads: reads.len(),
        read_bases: reads.iter().map(|r| r.len()).sum(),
        distinct_kmers: spectrum.distinct(),
        n_contigs: contigs.len(),
        contig_n50: contigs.n50(),
        n_scaffolds: scaffolds.len(),
        scaffold_n50: scaffolds.n50(),
        scaffold_bases: scaffolds.total_bases(),
        gaps,
    };

    Assembly {
        scaffolds,
        contigs,
        stats,
        report,
    }
}

/// Assemble straight from a FASTQ file using the §3.3 parallel block
/// reader; the I/O phase is measured and priced like every other phase.
/// The file is treated as a single library.
pub fn assemble_fastq(team: &Team, path: &Path, cfg: &PipelineConfig) -> std::io::Result<Assembly> {
    let (per_rank, io_stats) = read_fastq_parallel(team, path)?;
    let reads: Vec<SeqRecord> = per_rank.into_iter().flatten().collect();
    let lib_range = 0..reads.len();
    let mut assembly = assemble(team, &reads, std::slice::from_ref(&lib_range), cfg);
    // Prepend the I/O phase so stage grouping sees it.
    let mut report = PipelineReport::new();
    report.push(hipmer_pgas::PhaseReport::new(
        "io/fastq",
        *team.topo(),
        io_stats,
    ));
    for p in assembly.report.phases.drain(..) {
        report.push(p);
    }
    assembly.report = report;
    Ok(assembly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{kmer_containment, StageTimes};
    use hipmer_pgas::{CostModel, Topology};
    use hipmer_readsim::human_like_dataset;

    fn lib_ranges_of(d: &hipmer_readsim::Dataset) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for lib in &d.reads_per_library {
            out.push(start..start + lib.len());
            start += lib.len();
        }
        out
    }

    #[test]
    fn end_to_end_assembly_reconstructs_genome() {
        let dataset = human_like_dataset(30_000, 18.0, false, 5);
        let team = Team::new(Topology::new(4, 2));
        let reads = dataset.all_reads();
        let cfg = PipelineConfig::new(21);
        let assembly = assemble(&team, &reads, &lib_ranges_of(&dataset), &cfg);

        assert!(assembly.stats.scaffold_n50 >= assembly.stats.contig_n50);
        // Accuracy: nearly all scaffold k-mers come from a haplotype, and
        // nearly the whole genome is covered.
        let reference = {
            let mut r = dataset.genomes[0].haplotypes[0].clone();
            r.extend_from_slice(b"N"); // separator
            r.extend_from_slice(&dataset.genomes[0].haplotypes[1]);
            r
        };
        let (precision, completeness) =
            kmer_containment(&reference, &assembly.scaffolds.sequences, 21);
        assert!(precision > 0.99, "precision {precision}");
        assert!(completeness > 0.90, "completeness {completeness}");
    }

    #[test]
    fn stage_times_are_all_populated() {
        let dataset = human_like_dataset(15_000, 16.0, false, 6);
        let team = Team::new(Topology::new(4, 2));
        let reads = dataset.all_reads();
        let assembly = assemble(
            &team,
            &reads,
            &lib_ranges_of(&dataset),
            &PipelineConfig::new(21),
        );
        let t = StageTimes::from_report(&assembly.report, &CostModel::edison());
        assert!(t.kmer_analysis > 0.0);
        assert!(t.contig_generation > 0.0);
        assert!(t.meraligner > 0.0);
        assert!(t.gap_closing > 0.0);
        assert!(t.rest_scaffolding > 0.0);
        assert!(t.total() > 0.0);
    }

    #[test]
    fn metagenome_preset_skips_scaffolding() {
        let dataset = human_like_dataset(10_000, 14.0, false, 7);
        let team = Team::new(Topology::new(2, 2));
        let reads = dataset.all_reads();
        let assembly = assemble(
            &team,
            &reads,
            &lib_ranges_of(&dataset),
            &PipelineConfig::metagenome_preset(21),
        );
        assert_eq!(assembly.stats.n_scaffolds, assembly.stats.n_contigs);
        assert_eq!(assembly.stats.gaps.total(), 0);
        let t = StageTimes::from_report(&assembly.report, &CostModel::edison());
        assert_eq!(t.meraligner, 0.0);
        assert_eq!(t.gap_closing, 0.0);
    }

    #[test]
    fn assemble_from_fastq_file_counts_io() {
        let dataset = human_like_dataset(10_000, 14.0, false, 8);
        let dir = std::env::temp_dir().join(format!("hipmer-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        let mut buf = Vec::new();
        hipmer_seqio::write_fastq(&mut buf, &dataset.all_reads()).unwrap();
        std::fs::write(&path, &buf).unwrap();

        let team = Team::new(Topology::new(4, 2));
        let assembly = assemble_fastq(&team, &path, &PipelineConfig::new(21)).unwrap();
        assert!(assembly.stats.n_reads > 0);
        let t = StageTimes::from_report(&assembly.report, &CostModel::edison());
        assert!(t.io > 0.0, "I/O phase must be priced");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod indel_tests {
    use super::*;
    use crate::stats::kmer_containment;
    use hipmer_pgas::Topology;
    use hipmer_readsim::{human_like, simulate_library, ErrorModel, Library};

    #[test]
    fn assembly_tolerates_indel_reads() {
        // Indel errors break read k-mers (filtered by counting) and shift
        // alignment diagonals (recovered by the gapped merAligner path);
        // the assembly must stay accurate.
        let genome = human_like(30_000, 44);
        let reads = simulate_library(
            &genome,
            &Library::short_insert(20.0),
            &ErrorModel::illumina_with_indels(),
            45,
        );
        let team = Team::new(Topology::new(6, 3));
        let assembly = assemble(
            &team,
            &reads,
            std::slice::from_ref(&(0..reads.len())),
            &PipelineConfig::new(21),
        );
        let mut reference = genome.haplotypes[0].clone();
        reference.push(b'N');
        reference.extend_from_slice(&genome.haplotypes[1]);
        let (precision, completeness) =
            kmer_containment(&reference, &assembly.scaffolds.sequences, 21);
        assert!(precision > 0.97, "precision {precision}");
        assert!(completeness > 0.80, "completeness {completeness}");
        assert!(assembly.stats.scaffold_n50 > 2_000);
    }
}
