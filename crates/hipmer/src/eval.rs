//! Assembly evaluation against a known reference.
//!
//! The paper defers accuracy to the Assemblathon studies ("HipMer …
//! produces results that are biologically equivalent to the original
//! Meraculous results") — but a reproduction on *simulated* genomes can
//! check itself directly. This module computes the standard evaluation
//! metrics (QUAST/Assemblathon-style) with an alignment-free k-mer
//! anchoring scheme that is fast enough to run inside tests:
//!
//! * contiguity: N50, NG50 (against the reference size), L50, largest
//!   scaffold;
//! * completeness: fraction of reference k-mers covered;
//! * correctness: k-mer precision, duplication ratio, and **misassembly
//!   detection** — a scaffold whose anchor chain jumps between distant
//!   reference loci, switches strand, or switches haplotype/reference
//!   sequence is counted as misassembled (QUAST's relocation /
//!   inversion / translocation categories collapsed into one count).

use hipmer_dna::{Kmer, KmerCodec, KmerHashMap};

/// Where a k-mer anchor sits in the reference set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Anchor {
    /// Which reference sequence.
    seq: u32,
    /// Offset of the k-mer within it.
    pos: u32,
    /// `true` if the scaffold shows the reverse complement of the
    /// reference's forward orientation at this anchor.
    rc: bool,
}

/// The evaluation result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EvalReport {
    /// Scaffold N50 over the assembly.
    pub n50: usize,
    /// NG50: N50 computed against the *reference* length (0 if the
    /// assembly covers less than half the reference).
    pub ng50: usize,
    /// Number of scaffolds needed to reach half the assembly (L50).
    pub l50: usize,
    /// Longest scaffold.
    pub largest: usize,
    /// Total assembled bases (Ns excluded).
    pub assembled_bases: usize,
    /// Fraction of reference k-mers present in the assembly.
    pub genome_fraction: f64,
    /// Fraction of assembly k-mers present in the reference.
    pub precision: f64,
    /// Mean number of times a covered reference k-mer appears in the
    /// assembly (1.0 = no duplication).
    pub duplication_ratio: f64,
    /// Scaffolds whose anchor chain breaks (relocation/inversion/
    /// translocation).
    pub misassembled_scaffolds: usize,
    /// Scaffolds evaluated (with at least two anchors).
    pub scaffolds_evaluated: usize,
}

/// Anchors two neighboring scaffold k-mers must stay within to be called
/// colinear (bases).
const MAX_JUMP: i64 = 1000;
/// Minimum anchors on each side of a break to call a misassembly (guards
/// against stray repeat anchors).
const MIN_FLANK_ANCHORS: usize = 5;

/// Evaluate `scaffolds` against a set of reference sequences (haplotypes
/// or community genomes) using `k`-mer anchors.
pub fn evaluate(references: &[&[u8]], scaffolds: &[Vec<u8>], k: usize) -> EvalReport {
    let codec = KmerCodec::new(k);

    // Reference index: canonical k-mer -> up to 2 anchor positions (repeat
    // k-mers beyond that are unreliable anchors and are skipped).
    let mut index: KmerHashMap<Kmer, Vec<Anchor>> = KmerHashMap::default();
    let mut ref_kmers = 0usize;
    for (si, r) in references.iter().enumerate() {
        for (pos, km, canon) in codec.canonical_kmers(r) {
            ref_kmers += 1;
            let e = index.entry(canon).or_default();
            if e.len() < 2 {
                e.push(Anchor {
                    seq: si as u32,
                    pos: pos as u32,
                    rc: canon != km,
                });
            }
        }
    }
    // Distinct reference k-mers (for fraction denominators).
    let ref_distinct = index.len();

    let mut covered: KmerHashMap<Kmer, u32> = KmerHashMap::default();
    let mut asm_kmers = 0usize;
    let mut asm_hits = 0usize;
    let mut misassembled = 0usize;
    let mut evaluated = 0usize;

    for scaffold in scaffolds {
        // Anchor chain for misassembly detection, over unambiguous
        // (single-locus) anchors only.
        let mut chain: Vec<(i64, Anchor)> = Vec::new(); // (scaffold pos, anchor)
        for (pos, km, canon) in codec.canonical_kmers(scaffold) {
            asm_kmers += 1;
            if let Some(anchors) = index.get(&canon) {
                asm_hits += 1;
                *covered.entry(canon).or_insert(0) += 1;
                if anchors.len() == 1 {
                    let a = anchors[0];
                    // Orientation of the scaffold relative to the
                    // reference at this anchor.
                    let scaffold_rc = canon != km;
                    chain.push((
                        pos as i64,
                        Anchor {
                            seq: a.seq,
                            pos: a.pos,
                            rc: a.rc != scaffold_rc,
                        },
                    ));
                }
            }
        }
        if chain.len() < 2 {
            continue;
        }
        evaluated += 1;
        // Scan the chain for breaks: a change of reference sequence, a
        // strand flip, or a diagonal jump, with enough support on both
        // sides.
        let mut breaks = 0usize;
        let mut run_len = 0usize;
        for w in chain.windows(2) {
            let ((p1, a1), (p2, a2)) = (w[0], w[1]);
            let step = p2 - p1;
            let colinear = a1.seq == a2.seq && a1.rc == a2.rc && {
                let rstep = if a1.rc {
                    a1.pos as i64 - a2.pos as i64
                } else {
                    a2.pos as i64 - a1.pos as i64
                };
                (rstep - step).abs() <= MAX_JUMP
            };
            if colinear {
                run_len += 1;
            } else {
                let remaining = chain.len() - run_len - 1;
                if run_len >= MIN_FLANK_ANCHORS && remaining >= MIN_FLANK_ANCHORS {
                    breaks += 1;
                }
                run_len = 0;
            }
        }
        if breaks > 0 {
            misassembled += 1;
        }
    }

    // Contiguity metrics.
    let mut lens: Vec<usize> = scaffolds
        .iter()
        .map(|s| s.iter().filter(|&&b| b != b'N').count())
        .collect();
    lens.sort_unstable_by(|a, b| b.cmp(a));
    let assembled: usize = lens.iter().sum();
    let reference_len: usize = references.iter().map(|r| r.len()).sum();
    let stat_50 = |target: usize| -> (usize, usize) {
        let mut acc = 0usize;
        for (i, &l) in lens.iter().enumerate() {
            acc += l;
            if 2 * acc >= target * 2 / 2 && acc * 2 >= target {
                return (l, i + 1);
            }
        }
        (0, lens.len())
    };
    let (n50, l50) = stat_50(assembled);
    let (ng50, _) = stat_50(reference_len);

    let total_cov_instances: u64 = covered.values().map(|&c| c as u64).sum();
    EvalReport {
        n50,
        ng50,
        l50,
        largest: lens.first().copied().unwrap_or(0),
        assembled_bases: assembled,
        genome_fraction: if ref_distinct == 0 {
            0.0
        } else {
            covered.len() as f64 / ref_distinct as f64
        },
        precision: if asm_kmers == 0 {
            0.0
        } else {
            asm_hits as f64 / asm_kmers as f64
        },
        duplication_ratio: if covered.is_empty() {
            0.0
        } else {
            total_cov_instances as f64 / covered.len() as f64
        },
        misassembled_scaffolds: misassembled,
        scaffolds_evaluated: evaluated,
    }
    .with_ref_kmers(ref_kmers)
}

impl EvalReport {
    fn with_ref_kmers(self, _n: usize) -> Self {
        self
    }

    /// Render a compact text report.
    pub fn render(&self) -> String {
        format!(
            "N50 {}  NG50 {}  L50 {}  largest {}  bases {}\n\
             genome fraction {:.2}%  precision {:.2}%  duplication {:.3}\n\
             misassembled scaffolds {}/{}",
            self.n50,
            self.ng50,
            self.l50,
            self.largest,
            self.assembled_bases,
            100.0 * self.genome_fraction,
            100.0 * self.precision,
            self.duplication_ratio,
            self.misassembled_scaffolds,
            self.scaffolds_evaluated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(17);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn perfect_assembly_scores_clean() {
        let reference = lcg(5_000, 1);
        let scaffolds = vec![reference.clone()];
        let r = evaluate(&[&reference], &scaffolds, 21);
        assert!((r.genome_fraction - 1.0).abs() < 1e-9);
        assert!((r.precision - 1.0).abs() < 1e-9);
        assert!((r.duplication_ratio - 1.0).abs() < 1e-9);
        assert_eq!(r.misassembled_scaffolds, 0);
        assert_eq!(r.n50, 5_000);
        assert_eq!(r.ng50, 5_000);
        assert_eq!(r.l50, 1);
    }

    #[test]
    fn fragmented_assembly_has_lower_ng50() {
        let reference = lcg(10_000, 2);
        // Assembly = first 60% in 3 pieces; 40% missing.
        let scaffolds = vec![
            reference[..2_000].to_vec(),
            reference[2_000..4_000].to_vec(),
            reference[4_000..6_000].to_vec(),
        ];
        let r = evaluate(&[&reference], &scaffolds, 21);
        assert!(r.genome_fraction < 0.65);
        assert_eq!(r.n50, 2_000);
        // NG50 against the full 10k reference: cumulative 6k ≥ 5k at the
        // third piece.
        assert_eq!(r.ng50, 2_000);
        assert_eq!(r.misassembled_scaffolds, 0);
    }

    #[test]
    fn relocation_is_detected() {
        let reference = lcg(10_000, 3);
        // Chimeric scaffold: [1000..2000] glued to [7000..8000].
        let mut chimera = reference[1_000..2_000].to_vec();
        chimera.extend_from_slice(&reference[7_000..8_000]);
        let r = evaluate(&[&reference], &[chimera], 21);
        assert_eq!(r.misassembled_scaffolds, 1, "{r:?}");
        // The k-mers themselves are all real.
        assert!(r.precision > 0.97);
    }

    #[test]
    fn inversion_is_detected() {
        let reference = lcg(8_000, 4);
        let mut inv = reference[..2_000].to_vec();
        inv.extend(hipmer_dna::revcomp(&reference[2_000..4_000]));
        let r = evaluate(&[&reference], &[inv], 21);
        assert_eq!(r.misassembled_scaffolds, 1);
    }

    #[test]
    fn translocation_between_references_is_detected() {
        let ref_a = lcg(5_000, 5);
        let ref_b = lcg(5_000, 6);
        let mut chimera = ref_a[..1_500].to_vec();
        chimera.extend_from_slice(&ref_b[..1_500]);
        let r = evaluate(&[&ref_a, &ref_b], &[chimera], 21);
        assert_eq!(r.misassembled_scaffolds, 1);
    }

    #[test]
    fn adjacent_pieces_do_not_false_positive() {
        // A scaffold that simply spans a small N gap stays clean.
        let reference = lcg(6_000, 7);
        let mut scaffold = reference[..3_000].to_vec();
        scaffold.extend(std::iter::repeat_n(b'N', 50));
        scaffold.extend_from_slice(&reference[3_050..6_000]);
        let r = evaluate(&[&reference], &[scaffold], 21);
        assert_eq!(r.misassembled_scaffolds, 0, "{r:?}");
        assert!(r.genome_fraction > 0.95);
    }

    #[test]
    fn duplication_ratio_counts_extra_copies() {
        let reference = lcg(4_000, 8);
        let scaffolds = vec![reference.clone(), reference[..2_000].to_vec()];
        let r = evaluate(&[&reference], &scaffolds, 21);
        assert!(r.duplication_ratio > 1.4, "{}", r.duplication_ratio);
        assert_eq!(r.misassembled_scaffolds, 0);
    }

    #[test]
    fn junk_scaffold_hurts_precision_only() {
        let reference = lcg(4_000, 9);
        let scaffolds = vec![reference.clone(), lcg(1_000, 999)];
        let r = evaluate(&[&reference], &scaffolds, 21);
        assert!(r.precision < 0.9);
        assert!((r.genome_fraction - 1.0).abs() < 1e-9);
        assert_eq!(r.misassembled_scaffolds, 0);
    }

    #[test]
    fn render_contains_key_fields() {
        let reference = lcg(2_000, 10);
        let r = evaluate(&[&reference], std::slice::from_ref(&reference), 21);
        let text = r.render();
        assert!(text.contains("N50"));
        assert!(text.contains("genome fraction"));
    }
}
