//! Whole-pipeline configuration.

use hipmer_contig::ContigConfig;
use hipmer_kanalysis::KmerAnalysisConfig;
use hipmer_scaffold::ScaffoldConfig;

/// Configuration for a complete assembly run.
#[derive(Clone)]
pub struct PipelineConfig {
    /// The assembly k (de Bruijn graph k-mer length; must be odd).
    pub k: usize,
    /// Stage 1 settings.
    pub kanalysis: KmerAnalysisConfig,
    /// Stage 2 settings.
    pub contig: ContigConfig,
    /// Stage 3 settings.
    pub scaffold: ScaffoldConfig,
}

impl PipelineConfig {
    /// Defaults for an assembly at the given (odd) k. The aligner seed
    /// length defaults to a shorter seed (better sensitivity on read
    /// tails) capped at k.
    pub fn new(k: usize) -> Self {
        assert!(k % 2 == 1, "assembly k must be odd, got {k}");
        let seed_len = 15.min(k);
        PipelineConfig {
            k,
            kanalysis: KmerAnalysisConfig::new(k),
            contig: ContigConfig::new(k),
            scaffold: ScaffoldConfig::new(seed_len),
        }
    }

    /// Preset matching the wheat runs: four scaffolding rounds (§5.3: "the
    /// wheat pipeline ... requires four rounds of scaffolding").
    pub fn wheat_preset(k: usize) -> Self {
        let mut cfg = Self::new(k);
        cfg.scaffold.rounds = 4;
        cfg
    }

    /// Preset for metagenomes: §5.4 runs HipMer only through contig
    /// generation ("single-genome logic may introduce errors in the
    /// scaffolding of a metagenome"), so scaffolding is marked skipped.
    pub fn metagenome_preset(k: usize) -> Self {
        let mut cfg = Self::new(k);
        cfg.scaffold.rounds = 0; // interpreted as "skip scaffolding"
        cfg
    }

    /// Whether scaffolding runs at all.
    pub fn scaffolding_enabled(&self) -> bool {
        self.scaffold.rounds > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let d = PipelineConfig::new(31);
        assert_eq!(d.k, 31);
        assert!(d.scaffolding_enabled());
        assert_eq!(PipelineConfig::wheat_preset(31).scaffold.rounds, 4);
        assert!(!PipelineConfig::metagenome_preset(31).scaffolding_enabled());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_k_rejected() {
        PipelineConfig::new(32);
    }
}
