//! Whole-pipeline configuration.

use hipmer_contig::ContigConfig;
use hipmer_kanalysis::KmerAnalysisConfig;
use hipmer_pgas::{PartitionScheme, Schedule};
use hipmer_scaffold::ScaffoldConfig;

/// Configuration for a complete assembly run.
#[derive(Clone)]
pub struct PipelineConfig {
    /// The assembly k (de Bruijn graph k-mer length; must be odd).
    pub k: usize,
    /// Stage 1 settings.
    pub kanalysis: KmerAnalysisConfig,
    /// Stage 2 settings.
    pub contig: ContigConfig,
    /// Stage 3 settings.
    pub scaffold: ScaffoldConfig,
    /// Cap on the number of ranks whose execution spans are recorded when
    /// tracing is enabled (`None` leaves the tracer's own setting alone;
    /// `Some(0)` means all ranks). Applied by the pipeline via
    /// [`hipmer_pgas::trace::set_sample_ranks`].
    pub trace_sample_ranks: Option<usize>,
    /// MetaHipMer multi-k schedule: the strictly increasing k values for
    /// the iterative kanalysis → contig rounds (the SC18 follow-on's
    /// "Extreme Scale De Novo Metagenome Assembly" loop). Empty (the
    /// default) or a single value runs the classic single-k pipeline; with
    /// two or more values, each round re-analyzes the reads plus the
    /// previous round's contigs (injected as high-confidence pseudo-reads)
    /// and the final alignment + scaffolding pass runs at the largest k,
    /// which must equal [`Self::k`]. Set via [`Self::try_multi_k`].
    pub multi_k: Vec<usize>,
    /// Per-round depth floor for abundance-aware hair/tip pruning in the
    /// *non-final* multi-k rounds: short dead-end contigs whose mean k-mer
    /// depth is below this are dropped before they are fed forward as
    /// pseudo-reads, so later rounds do not inherit error branches from
    /// low-abundance species. `0.0` disables pruning; the default `2.5`
    /// sits just above the k-mer analysis `min_count` of 2, so hairs that
    /// barely cleared the count filter are dropped while genuine
    /// low-coverage contigs (mean depth ≥ 3) survive. The final round (and
    /// the classic single-k path) never prunes, keeping single-k output
    /// byte-identical to the pre-multi-k pipeline.
    pub round_prune_depth: f64,
}

impl PipelineConfig {
    /// Defaults for an assembly at the given (odd) k. The aligner seed
    /// length defaults to a shorter seed (better sensitivity on read
    /// tails) capped at k.
    ///
    /// Panics on an invalid k; the CLI path uses [`Self::try_new`].
    pub fn new(k: usize) -> Self {
        match Self::try_new(k) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible construction: rejects an even k or a k outside the packed
    /// k-mer range (`1..=MAX_K`) with a printable error.
    pub fn try_new(k: usize) -> Result<Self, String> {
        hipmer_dna::KmerCodec::try_new(k).map_err(|e| e.to_string())?;
        if k.is_multiple_of(2) {
            return Err(format!("assembly k must be odd, got {k}"));
        }
        let seed_len = 15.min(k);
        Ok(PipelineConfig {
            k,
            kanalysis: KmerAnalysisConfig::new(k),
            contig: ContigConfig::new(k),
            scaffold: ScaffoldConfig::new(seed_len),
            trace_sample_ranks: None,
            multi_k: Vec::new(),
            round_prune_depth: 2.5,
        })
    }

    /// Stage configs for one *non-final* multi-k round at `k`: fresh
    /// kanalysis/contig defaults at that k, with this config's schedule,
    /// partition, placement, and traversal mode carried over, and hair/tip
    /// pruning armed at [`Self::round_prune_depth`]. The final round uses
    /// [`Self::kanalysis`]/[`Self::contig`] verbatim (pruning off).
    pub fn round_stage_configs(&self, k: usize) -> (KmerAnalysisConfig, ContigConfig) {
        let mut ka = KmerAnalysisConfig::new(k);
        ka.partition = self.kanalysis.partition;
        let mut cc = ContigConfig::new(k);
        cc.schedule = self.contig.schedule;
        cc.partition = self.contig.partition;
        cc.placement = self.contig.placement.clone();
        cc.mode = self.contig.mode;
        cc.prune_depth_floor = self.round_prune_depth;
        (ka, cc)
    }

    /// Install a MetaHipMer multi-k round schedule (e.g. `[21, 33, 55]`).
    /// Every k must be valid for [`Self::try_new`], the list must be
    /// strictly increasing, and the final (largest) k must equal
    /// [`Self::k`] — the stage configs built for this `PipelineConfig` are
    /// the ones the final round and the scaffolding pass run with, so a
    /// mismatched final k would silently assemble at the wrong k. The CLI
    /// constructs the config *from* the last list element, so this only
    /// trips library misuse.
    pub fn try_multi_k(mut self, ks: &[usize]) -> Result<Self, String> {
        if ks.is_empty() {
            return Err("--multi-k needs at least one k value".into());
        }
        for &k in ks {
            Self::try_new(k)?;
        }
        for w in ks.windows(2) {
            if w[1] <= w[0] {
                return Err(format!(
                    "--multi-k values must be strictly increasing, got {} after {}",
                    w[1], w[0]
                ));
            }
        }
        let last = *ks.last().expect("non-empty");
        if last != self.k {
            return Err(format!(
                "--multi-k final value {last} must equal the assembly k {} \
                 (build the config from the largest k)",
                self.k
            ));
        }
        self.multi_k = ks.to_vec();
        Ok(self)
    }

    /// The multi-k round schedule when the MetaHipMer iterative path is
    /// active: two or more k values. A single-element (or empty) schedule
    /// is the classic single-k pipeline and returns `None` so callers
    /// cannot accidentally fork the code path — `--multi-k 21` must stay
    /// byte-identical to `-k 21`.
    pub fn multi_k_rounds(&self) -> Option<&[usize]> {
        (self.multi_k.len() >= 2).then_some(&self.multi_k[..])
    }

    /// Cap the number of ranks traced per phase (0 = all ranks). Only
    /// takes effect when span tracing is enabled.
    pub fn with_trace_sample_ranks(mut self, n: usize) -> Self {
        self.trace_sample_ranks = Some(n);
        self
    }

    /// Apply one [`Schedule`] to every skew-prone stage: the cooperative
    /// contig traversal, the aligner read loop, contig depths, bubble
    /// merging, and gap closing. [`Schedule::Dynamic`] deals each stage's
    /// work as guided chunks from a shared pool instead of fixed
    /// contiguous blocks; the assembled output is byte-identical either
    /// way, only the modeled load balance changes.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.contig.schedule = schedule;
        self.scaffold = self.scaffold.with_schedule(schedule);
        self
    }

    /// Apply one [`PartitionScheme`] to every k-mer-keyed table in the
    /// pipeline: the k-mer analysis votes/final tables, the de Bruijn
    /// graph (under cyclic placement), and the merAligner seed index.
    /// [`PartitionScheme::Minimizer`] buckets each k-mer by its window
    /// minimizer so adjacent k-mers share an owner rank; the assembled
    /// output is byte-identical either way, only the off-node traffic
    /// changes.
    pub fn with_partition(mut self, partition: PartitionScheme) -> Self {
        self.kanalysis.partition = partition;
        self.contig.partition = partition;
        self.scaffold = self.scaffold.with_partition(partition);
        self
    }

    /// The partition scheme the pipeline's k-mer tables use (the stage
    /// configs carry their own copies; [`Self::with_partition`] keeps them
    /// in lock-step, and this reads the canonical one for reporting).
    pub fn partition(&self) -> PartitionScheme {
        self.kanalysis.partition
    }

    /// Preset matching the wheat runs: four scaffolding rounds (§5.3: "the
    /// wheat pipeline ... requires four rounds of scaffolding").
    pub fn wheat_preset(k: usize) -> Self {
        let mut cfg = Self::new(k);
        cfg.scaffold.rounds = 4;
        cfg
    }

    /// Preset for metagenomes: §5.4 runs HipMer only through contig
    /// generation ("single-genome logic may introduce errors in the
    /// scaffolding of a metagenome"), so scaffolding is marked skipped.
    pub fn metagenome_preset(k: usize) -> Self {
        let mut cfg = Self::new(k);
        cfg.scaffold.rounds = 0; // interpreted as "skip scaffolding"
        cfg
    }

    /// Whether scaffolding runs at all.
    pub fn scaffolding_enabled(&self) -> bool {
        self.scaffold.rounds > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let d = PipelineConfig::new(31);
        assert_eq!(d.k, 31);
        assert!(d.scaffolding_enabled());
        assert_eq!(PipelineConfig::wheat_preset(31).scaffold.rounds, 4);
        assert!(!PipelineConfig::metagenome_preset(31).scaffolding_enabled());
    }

    #[test]
    fn with_schedule_reaches_every_stage() {
        let cfg = PipelineConfig::new(31).with_schedule(Schedule::Dynamic);
        assert_eq!(cfg.contig.schedule, Schedule::Dynamic);
        assert_eq!(cfg.scaffold.schedule, Schedule::Dynamic);
        assert_eq!(cfg.scaffold.align.schedule, Schedule::Dynamic);
        assert_eq!(cfg.scaffold.gap.schedule, Schedule::Dynamic);
    }

    #[test]
    fn with_partition_reaches_every_stage() {
        let cfg = PipelineConfig::new(31);
        assert_eq!(cfg.partition(), PartitionScheme::Uniform);
        let cfg = cfg.with_partition(PartitionScheme::Minimizer);
        assert_eq!(cfg.partition(), PartitionScheme::Minimizer);
        assert_eq!(cfg.kanalysis.partition, PartitionScheme::Minimizer);
        assert_eq!(cfg.contig.partition, PartitionScheme::Minimizer);
        assert_eq!(cfg.scaffold.align.partition, PartitionScheme::Minimizer);
    }

    #[test]
    fn trace_sample_ranks_defaults_off_and_is_settable() {
        assert_eq!(PipelineConfig::new(31).trace_sample_ranks, None);
        let cfg = PipelineConfig::new(31).with_trace_sample_ranks(4);
        assert_eq!(cfg.trace_sample_ranks, Some(4));
        assert_eq!(
            PipelineConfig::new(31)
                .with_trace_sample_ranks(0)
                .trace_sample_ranks,
            Some(0)
        );
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_k_rejected() {
        PipelineConfig::new(32);
    }

    #[test]
    fn multi_k_defaults_to_classic_single_k() {
        let cfg = PipelineConfig::new(31);
        assert!(cfg.multi_k.is_empty());
        assert_eq!(cfg.multi_k_rounds(), None);
        // A single-element schedule is also the classic path.
        let cfg = PipelineConfig::new(21).try_multi_k(&[21]).unwrap();
        assert_eq!(cfg.multi_k_rounds(), None);
    }

    #[test]
    fn multi_k_validation() {
        let cfg = PipelineConfig::new(55).try_multi_k(&[21, 33, 55]).unwrap();
        assert_eq!(cfg.multi_k_rounds(), Some(&[21, 33, 55][..]));

        // Final k must equal the assembly k.
        assert!(PipelineConfig::new(31).try_multi_k(&[21, 33]).is_err());
        // Strictly increasing.
        assert!(PipelineConfig::new(33).try_multi_k(&[33, 33]).is_err());
        assert!(PipelineConfig::new(21).try_multi_k(&[33, 21]).is_err());
        // Each k must itself be valid (odd, in packed range).
        assert!(PipelineConfig::new(33).try_multi_k(&[22, 33]).is_err());
        assert!(PipelineConfig::new(33).try_multi_k(&[]).is_err());
    }

    #[test]
    fn round_stage_configs_carry_schedule_and_partition() {
        let cfg = PipelineConfig::new(55)
            .with_schedule(Schedule::Dynamic)
            .with_partition(PartitionScheme::Minimizer)
            .try_multi_k(&[21, 55])
            .unwrap();
        let (ka, cc) = cfg.round_stage_configs(21);
        assert_eq!(ka.k, 21);
        assert_eq!(ka.partition, PartitionScheme::Minimizer);
        assert_eq!(cc.schedule, Schedule::Dynamic);
        assert_eq!(cc.partition, PartitionScheme::Minimizer);
        assert_eq!(cc.prune_depth_floor, cfg.round_prune_depth);
        // The final-round configs (cfg.contig) never prune.
        assert_eq!(cfg.contig.prune_depth_floor, 0.0);
    }

    #[test]
    fn try_new_rejects_bad_k_without_panicking() {
        assert!(PipelineConfig::try_new(31).is_ok());
        assert!(PipelineConfig::try_new(63).is_ok());
        for bad in [0usize, 32, 65, 1000] {
            let err = match PipelineConfig::try_new(bad) {
                Ok(_) => panic!("k={bad} must be rejected"),
                Err(e) => e,
            };
            assert!(err.contains(&bad.to_string()) || bad == 0, "k={bad}: {err}");
        }
    }
}
