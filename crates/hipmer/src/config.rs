//! Whole-pipeline configuration.

use hipmer_contig::ContigConfig;
use hipmer_kanalysis::KmerAnalysisConfig;
use hipmer_pgas::{PartitionScheme, Schedule};
use hipmer_scaffold::ScaffoldConfig;

/// Configuration for a complete assembly run.
#[derive(Clone)]
pub struct PipelineConfig {
    /// The assembly k (de Bruijn graph k-mer length; must be odd).
    pub k: usize,
    /// Stage 1 settings.
    pub kanalysis: KmerAnalysisConfig,
    /// Stage 2 settings.
    pub contig: ContigConfig,
    /// Stage 3 settings.
    pub scaffold: ScaffoldConfig,
    /// Cap on the number of ranks whose execution spans are recorded when
    /// tracing is enabled (`None` leaves the tracer's own setting alone;
    /// `Some(0)` means all ranks). Applied by the pipeline via
    /// [`hipmer_pgas::trace::set_sample_ranks`].
    pub trace_sample_ranks: Option<usize>,
}

impl PipelineConfig {
    /// Defaults for an assembly at the given (odd) k. The aligner seed
    /// length defaults to a shorter seed (better sensitivity on read
    /// tails) capped at k.
    ///
    /// Panics on an invalid k; the CLI path uses [`Self::try_new`].
    pub fn new(k: usize) -> Self {
        match Self::try_new(k) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible construction: rejects an even k or a k outside the packed
    /// k-mer range (`1..=MAX_K`) with a printable error.
    pub fn try_new(k: usize) -> Result<Self, String> {
        hipmer_dna::KmerCodec::try_new(k).map_err(|e| e.to_string())?;
        if k.is_multiple_of(2) {
            return Err(format!("assembly k must be odd, got {k}"));
        }
        let seed_len = 15.min(k);
        Ok(PipelineConfig {
            k,
            kanalysis: KmerAnalysisConfig::new(k),
            contig: ContigConfig::new(k),
            scaffold: ScaffoldConfig::new(seed_len),
            trace_sample_ranks: None,
        })
    }

    /// Cap the number of ranks traced per phase (0 = all ranks). Only
    /// takes effect when span tracing is enabled.
    pub fn with_trace_sample_ranks(mut self, n: usize) -> Self {
        self.trace_sample_ranks = Some(n);
        self
    }

    /// Apply one [`Schedule`] to every skew-prone stage: the cooperative
    /// contig traversal, the aligner read loop, contig depths, bubble
    /// merging, and gap closing. [`Schedule::Dynamic`] deals each stage's
    /// work as guided chunks from a shared pool instead of fixed
    /// contiguous blocks; the assembled output is byte-identical either
    /// way, only the modeled load balance changes.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.contig.schedule = schedule;
        self.scaffold = self.scaffold.with_schedule(schedule);
        self
    }

    /// Apply one [`PartitionScheme`] to every k-mer-keyed table in the
    /// pipeline: the k-mer analysis votes/final tables, the de Bruijn
    /// graph (under cyclic placement), and the merAligner seed index.
    /// [`PartitionScheme::Minimizer`] buckets each k-mer by its window
    /// minimizer so adjacent k-mers share an owner rank; the assembled
    /// output is byte-identical either way, only the off-node traffic
    /// changes.
    pub fn with_partition(mut self, partition: PartitionScheme) -> Self {
        self.kanalysis.partition = partition;
        self.contig.partition = partition;
        self.scaffold = self.scaffold.with_partition(partition);
        self
    }

    /// The partition scheme the pipeline's k-mer tables use (the stage
    /// configs carry their own copies; [`Self::with_partition`] keeps them
    /// in lock-step, and this reads the canonical one for reporting).
    pub fn partition(&self) -> PartitionScheme {
        self.kanalysis.partition
    }

    /// Preset matching the wheat runs: four scaffolding rounds (§5.3: "the
    /// wheat pipeline ... requires four rounds of scaffolding").
    pub fn wheat_preset(k: usize) -> Self {
        let mut cfg = Self::new(k);
        cfg.scaffold.rounds = 4;
        cfg
    }

    /// Preset for metagenomes: §5.4 runs HipMer only through contig
    /// generation ("single-genome logic may introduce errors in the
    /// scaffolding of a metagenome"), so scaffolding is marked skipped.
    pub fn metagenome_preset(k: usize) -> Self {
        let mut cfg = Self::new(k);
        cfg.scaffold.rounds = 0; // interpreted as "skip scaffolding"
        cfg
    }

    /// Whether scaffolding runs at all.
    pub fn scaffolding_enabled(&self) -> bool {
        self.scaffold.rounds > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let d = PipelineConfig::new(31);
        assert_eq!(d.k, 31);
        assert!(d.scaffolding_enabled());
        assert_eq!(PipelineConfig::wheat_preset(31).scaffold.rounds, 4);
        assert!(!PipelineConfig::metagenome_preset(31).scaffolding_enabled());
    }

    #[test]
    fn with_schedule_reaches_every_stage() {
        let cfg = PipelineConfig::new(31).with_schedule(Schedule::Dynamic);
        assert_eq!(cfg.contig.schedule, Schedule::Dynamic);
        assert_eq!(cfg.scaffold.schedule, Schedule::Dynamic);
        assert_eq!(cfg.scaffold.align.schedule, Schedule::Dynamic);
        assert_eq!(cfg.scaffold.gap.schedule, Schedule::Dynamic);
    }

    #[test]
    fn with_partition_reaches_every_stage() {
        let cfg = PipelineConfig::new(31);
        assert_eq!(cfg.partition(), PartitionScheme::Uniform);
        let cfg = cfg.with_partition(PartitionScheme::Minimizer);
        assert_eq!(cfg.partition(), PartitionScheme::Minimizer);
        assert_eq!(cfg.kanalysis.partition, PartitionScheme::Minimizer);
        assert_eq!(cfg.contig.partition, PartitionScheme::Minimizer);
        assert_eq!(cfg.scaffold.align.partition, PartitionScheme::Minimizer);
    }

    #[test]
    fn trace_sample_ranks_defaults_off_and_is_settable() {
        assert_eq!(PipelineConfig::new(31).trace_sample_ranks, None);
        let cfg = PipelineConfig::new(31).with_trace_sample_ranks(4);
        assert_eq!(cfg.trace_sample_ranks, Some(4));
        assert_eq!(
            PipelineConfig::new(31)
                .with_trace_sample_ranks(0)
                .trace_sample_ranks,
            Some(0)
        );
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_k_rejected() {
        PipelineConfig::new(32);
    }

    #[test]
    fn try_new_rejects_bad_k_without_panicking() {
        assert!(PipelineConfig::try_new(31).is_ok());
        assert!(PipelineConfig::try_new(63).is_ok());
        for bad in [0usize, 32, 65, 1000] {
            let err = match PipelineConfig::try_new(bad) {
                Ok(_) => panic!("k={bad} must be rejected"),
                Err(e) => e,
            };
            assert!(err.contains(&bad.to_string()) || bad == 0, "k={bad}: {err}");
        }
    }
}
