//! Heap accounting for per-stage memory high-water marks.
//!
//! [`TrackingAlloc`] wraps the system allocator and maintains two process
//! globals: the *current* number of live heap bytes and the *peak* since
//! the last [`reset_peak`]. The `hipmer` binary installs it as the
//! `#[global_allocator]`; the pipeline resets the peak before each stage
//! and publishes the stage's high-water mark as the gauge
//! `hipmer/mem/stage_peak_bytes/<stage>` in [`hipmer_pgas::metrics`].
//!
//! Cost: two relaxed atomic RMWs per allocation/deallocation (an add and a
//! `fetch_max`), which is noise next to the allocator itself. When the
//! allocator is *not* installed (library users, unit tests), the counters
//! simply stay at zero and every accessor returns 0 — callers need no
//! feature gate.
//!
//! The peak is maintained with a relaxed `fetch_max`, so concurrent
//! allocations from phase worker threads can transiently under-report by
//! the size of an in-flight allocation; high-water marks here are
//! observability data, not an enforcement mechanism, and that slack is
//! acceptable.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CUR: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that tracks live and peak heap bytes.
pub struct TrackingAlloc;

#[inline]
fn grew(bytes: usize) {
    let cur = CUR.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(cur, Ordering::Relaxed);
}

#[inline]
fn shrank(bytes: usize) {
    CUR.fetch_sub(bytes, Ordering::Relaxed);
}

// SAFETY: defers entirely to `System` for allocation; the bookkeeping
// touches only atomics and never the returned memory.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            grew(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            grew(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        shrank(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                grew(new_size - layout.size());
            } else {
                shrank(layout.size() - new_size);
            }
        }
        p
    }
}

/// Live heap bytes right now (0 unless [`TrackingAlloc`] is installed as
/// the global allocator).
pub fn current_bytes() -> u64 {
    CUR.load(Ordering::Relaxed) as u64
}

/// Peak live heap bytes since the last [`reset_peak`] (0 unless
/// [`TrackingAlloc`] is installed).
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed) as u64
}

/// Restart the high-water mark from the current live size, so the next
/// [`peak_bytes`] reading reflects only growth from this point on.
pub fn reset_peak() {
    PEAK.store(CUR.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests run without TrackingAlloc installed, so they exercise
    // the bookkeeping helpers directly rather than through real allocs.
    #[test]
    fn peak_follows_growth_and_survives_shrink() {
        reset_peak();
        let base = current_bytes();
        grew(1000);
        assert_eq!(current_bytes(), base + 1000);
        assert!(peak_bytes() >= base + 1000);
        shrank(600);
        assert_eq!(current_bytes(), base + 400);
        assert!(peak_bytes() >= base + 1000, "peak must not fall with frees");
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
        shrank(400); // restore
    }
}
