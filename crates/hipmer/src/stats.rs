//! Assembly statistics and stage-time grouping.

use hipmer_dna::{Kmer, KmerCodec, KmerHashSet};
use hipmer_pgas::{CostModel, PipelineReport};
use hipmer_scaffold::GapCloseStats;

/// Headline numbers for a finished assembly.
#[derive(Clone, Copy, Debug, Default)]
pub struct AssemblyStats {
    /// Input reads.
    pub n_reads: usize,
    /// Input bases.
    pub read_bases: usize,
    /// Distinct non-erroneous k-mers.
    pub distinct_kmers: usize,
    /// Contigs out of the traversal (pre-bubble-merge).
    pub n_contigs: usize,
    /// Contig N50 (pre-bubble-merge).
    pub contig_n50: usize,
    /// Final scaffolds.
    pub n_scaffolds: usize,
    /// Scaffold N50 over final sequences.
    pub scaffold_n50: usize,
    /// Total scaffold bases.
    pub scaffold_bases: usize,
    /// Gap-closing outcome counters.
    pub gaps: GapCloseStats,
}

/// Modeled per-stage seconds, grouped the way Figs. 6–8 plot them.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTimes {
    /// FASTQ input time.
    pub io: f64,
    /// K-mer analysis (sketch + bloom + count + finalize).
    pub kmer_analysis: f64,
    /// Contig generation (graph build + traversal).
    pub contig_generation: f64,
    /// merAligner (index + align), within scaffolding.
    pub meraligner: f64,
    /// Gap closing, within scaffolding.
    pub gap_closing: f64,
    /// The remaining scaffolding modules (depths, bubbles, inserts,
    /// splints/spans, links, ties).
    pub rest_scaffolding: f64,
}

impl StageTimes {
    /// Total scaffolding time.
    pub fn scaffolding(&self) -> f64 {
        self.meraligner + self.gap_closing + self.rest_scaffolding
    }

    /// End-to-end total.
    pub fn total(&self) -> f64 {
        self.io + self.kmer_analysis + self.contig_generation + self.scaffolding()
    }

    /// Group a pipeline report's phases by name prefixes.
    pub fn from_report(report: &PipelineReport, model: &CostModel) -> StageTimes {
        let mut t = StageTimes::default();
        for phase in &report.phases {
            let secs = phase.modeled(model).total();
            let name = phase.name.as_str();
            if name.starts_with("io/") {
                t.io += secs;
            } else if name.starts_with("kmer-analysis/") {
                t.kmer_analysis += secs;
            } else if name.starts_with("contig/") {
                t.contig_generation += secs;
            } else if name.starts_with("scaffold/meraligner") {
                t.meraligner += secs;
            } else if name.starts_with("scaffold/gap-closing") {
                t.gap_closing += secs;
            } else if name.starts_with("scaffold/") {
                t.rest_scaffolding += secs;
            } else {
                // Unknown phases count toward the closest umbrella: rest.
                t.rest_scaffolding += secs;
            }
        }
        t
    }
}

/// Fraction of `query`'s k-mers found in `reference` (both directions are
/// canonicalized), plus the fraction of the reference's k-mers covered by
/// the queries. A cheap, alignment-free accuracy/completeness check used
/// by the examples and integration tests.
pub fn kmer_containment(reference: &[u8], queries: &[Vec<u8>], k: usize) -> (f64, f64) {
    let codec = KmerCodec::new(k);
    let ref_set: KmerHashSet<Kmer> = codec
        .canonical_kmers(reference)
        .map(|(_, _, canon)| canon)
        .collect();
    let mut query_total = 0usize;
    let mut query_hit = 0usize;
    let mut covered: KmerHashSet<Kmer> = KmerHashSet::default();
    for q in queries {
        for (_, _, canon) in codec.canonical_kmers(q) {
            query_total += 1;
            if ref_set.contains(&canon) {
                query_hit += 1;
                covered.insert(canon);
            }
        }
    }
    let precision = if query_total == 0 {
        0.0
    } else {
        query_hit as f64 / query_total as f64
    };
    let completeness = if ref_set.is_empty() {
        0.0
    } else {
        covered.len() as f64 / ref_set.len() as f64
    };
    (precision, completeness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_pgas::{CommStats, PhaseReport, Topology};

    #[test]
    fn stage_grouping() {
        let topo = Topology::new(2, 2);
        let mk = |name: &str, ops: u64| {
            let stats = vec![
                CommStats {
                    compute_ops: ops,
                    ..CommStats::default()
                };
                2
            ];
            PhaseReport::new(name, topo, stats)
        };
        let mut report = PipelineReport::new();
        report.push(mk("io/fastq", 1000));
        report.push(mk("kmer-analysis/count", 2000));
        report.push(mk("contig/traversal", 3000));
        report.push(mk("scaffold/meraligner-align", 4000));
        report.push(mk("scaffold/gap-closing", 5000));
        report.push(mk("scaffold/links", 6000));
        let model = CostModel::edison();
        let t = StageTimes::from_report(&report, &model);
        assert!(t.io > 0.0 && t.kmer_analysis > t.io);
        assert!(t.meraligner > t.contig_generation);
        assert!(t.rest_scaffolding > t.gap_closing);
        let sum = t.io + t.kmer_analysis + t.contig_generation + t.scaffolding();
        assert!((t.total() - sum).abs() < 1e-12);
    }

    #[test]
    fn containment_exact_and_partial() {
        let reference = b"ACGTACGTTGCAACGGATCGATCGAAT".to_vec();
        let (p, c) = kmer_containment(&reference, std::slice::from_ref(&reference), 11);
        assert!((p - 1.0).abs() < 1e-12);
        assert!((c - 1.0).abs() < 1e-12);
        // Half-matching query.
        let mut q = reference[..15].to_vec();
        q.extend(b"TTTTTTTTTTTTTTT");
        let (p2, c2) = kmer_containment(&reference, &[q], 11);
        assert!(p2 < 1.0);
        assert!(c2 < 1.0);
        assert!(p2 > 0.0);
    }

    #[test]
    fn containment_respects_orientation_invariance() {
        let reference = b"ACGTTGCAACGGATCGATCGAATCCGT".to_vec();
        let rc = hipmer_dna::revcomp(&reference);
        let (p, c) = kmer_containment(&reference, &[rc], 11);
        assert!((p - 1.0).abs() < 1e-12);
        assert!((c - 1.0).abs() < 1e-12);
    }
}
