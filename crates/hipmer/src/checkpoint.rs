//! Stage-boundary checkpointing of pipeline intermediate products.
//!
//! At 15K+ cores the dominant operational risk is losing hours of work to
//! a mid-stage failure; HipMer's successors (the iterative MetaHipMer loop
//! in particular) lean on persisting per-iteration intermediate state to
//! the shared filesystem. This module gives the reproduction the same
//! substrate: each pipeline stage's output — the k-mer spectrum, the
//! contig set, the round-0 alignments, the scaffold state — serializes to
//! a versioned on-disk artifact with an FNV-1a 64 checksum, indexed by a
//! JSON manifest that also pins the run *fingerprint* (k, topology, input
//! shape, rounds). `--resume` re-opens the store, validates version,
//! fingerprint, and every artifact checksum, and keeps the longest valid
//! prefix of completed stages; the driver then skips those stages and
//! re-executes from the first missing one.
//!
//! The format is deliberately hand-rolled little-endian binary (no serde
//! in the dependency tree): every integer is fixed-width LE, sequences
//! are length-prefixed, and collections are sorted canonically before
//! writing so a given artifact is byte-identical across runs, topologies,
//! and OS-thread schedules — the property the recovery acceptance test
//! (`assembly byte-identical after an injected rank failure`) rests on.

use hipmer_align::Alignment;
use hipmer_contig::{Contig, ContigSet};
use hipmer_dna::{ExtChoice, ExtensionPair, Kmer, KmerCodec};
use hipmer_kanalysis::{KmerEntry, KmerSpectrum};
use hipmer_pgas::json::Value;
use hipmer_pgas::{PartitionScheme, Topology};
use hipmer_scaffold::{GapCloseStats, Scaffold, ScaffoldMember, ScaffoldSet};
use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint artifact.
pub const MAGIC: &[u8; 4] = b"HMCP";

/// On-disk format version; bumped on any incompatible layout change.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit checksum (the per-artifact integrity check; fast,
/// dependency-free, and byte-order independent).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Little-endian byte writer / reader.

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}
fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u64(out, v.len() as u64);
    out.extend_from_slice(v);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "checkpoint artifact truncated")
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        if end > self.buf.len() {
            return Err(truncated());
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> io::Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes after checkpoint artifact",
            ))
        }
    }
}

fn header(out: &mut Vec<u8>, tag: u8) {
    out.extend_from_slice(MAGIC);
    put_u32(out, FORMAT_VERSION);
    put_u8(out, tag);
}

fn check_header(r: &mut Reader<'_>, tag: u8) -> io::Result<()> {
    if r.take(4)? != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad checkpoint magic",
        ));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint format v{version}, expected v{FORMAT_VERSION}"),
        ));
    }
    let got = r.u8()?;
    if got != tag {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("artifact tag {got}, expected {tag}"),
        ));
    }
    Ok(())
}

/// Artifact tag for a k-mer spectrum.
const TAG_SPECTRUM: u8 = 1;
/// Artifact tag for a contig set.
const TAG_CONTIGS: u8 = 2;
/// Artifact tag for an alignment set.
const TAG_ALIGNMENTS: u8 = 3;
/// Artifact tag for scaffold state.
const TAG_SCAFFOLD: u8 = 4;

fn ext_code(e: ExtChoice) -> u8 {
    match e {
        ExtChoice::Unique(c) => c, // 0..=3
        ExtChoice::Fork => 4,
        ExtChoice::None => 5,
    }
}

fn ext_decode(v: u8) -> io::Result<ExtChoice> {
    match v {
        0..=3 => Ok(ExtChoice::Unique(v)),
        4 => Ok(ExtChoice::Fork),
        5 => Ok(ExtChoice::None),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad extension code {v}"),
        )),
    }
}

// ---------------------------------------------------------------------
// Artifact codecs.

/// Serialize a k-mer spectrum (entries in canonical ascending-bits order,
/// so the artifact is byte-identical across runs and topologies).
pub fn encode_spectrum(spectrum: &KmerSpectrum) -> Vec<u8> {
    let entries = spectrum.export_entries();
    let mut out = Vec::with_capacity(entries.len() * 22 + 32);
    header(&mut out, TAG_SPECTRUM);
    put_u32(&mut out, spectrum.codec.k() as u32);
    put_u64(&mut out, entries.len() as u64);
    for (km, e) in entries {
        put_u128(&mut out, km.0);
        put_u32(&mut out, e.count);
        put_u8(&mut out, ext_code(e.exts.left));
        put_u8(&mut out, ext_code(e.exts.right));
    }
    out
}

/// Rebuild a k-mer spectrum over `topo` from [`encode_spectrum`] bytes,
/// homing entries with `partition` (the artifact itself is
/// placement-independent, so a checkpoint written under one scheme
/// restores cleanly under another; the fingerprint deliberately excludes
/// the scheme for the same reason).
pub fn decode_spectrum(
    bytes: &[u8],
    topo: Topology,
    partition: PartitionScheme,
) -> io::Result<KmerSpectrum> {
    let mut r = Reader::new(bytes);
    check_header(&mut r, TAG_SPECTRUM)?;
    let k = r.u32()? as usize;
    let n = r.u64()? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let km = Kmer(r.u128()?);
        let count = r.u32()?;
        let left = ext_decode(r.u8()?)?;
        let right = ext_decode(r.u8()?)?;
        entries.push((
            km,
            KmerEntry {
                count,
                exts: ExtensionPair { left, right },
            },
        ));
    }
    r.finish()?;
    Ok(KmerSpectrum::from_entries(topo, k, partition, entries))
}

/// Serialize a contig set (already canonically ordered: longest-first
/// with ties broken by sequence, ids dense).
pub fn encode_contigs(contigs: &ContigSet) -> Vec<u8> {
    let mut out = Vec::new();
    header(&mut out, TAG_CONTIGS);
    put_u32(&mut out, contigs.codec.k() as u32);
    put_u64(&mut out, contigs.contigs.len() as u64);
    for c in &contigs.contigs {
        put_u64(&mut out, c.id as u64);
        put_f64(&mut out, c.depth);
        put_bytes(&mut out, &c.seq);
    }
    out
}

/// Rebuild a contig set from [`encode_contigs`] bytes.
pub fn decode_contigs(bytes: &[u8]) -> io::Result<ContigSet> {
    let mut r = Reader::new(bytes);
    check_header(&mut r, TAG_CONTIGS)?;
    let k = r.u32()? as usize;
    let n = r.u64()? as usize;
    let mut contigs = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u64()? as usize;
        let depth = r.f64()?;
        let seq = r.bytes()?;
        contigs.push(Contig { id, seq, depth });
    }
    r.finish()?;
    Ok(ContigSet {
        contigs,
        codec: KmerCodec::new(k),
    })
}

/// Serialize an alignment set (already in deterministic read order).
pub fn encode_alignments(alignments: &[Alignment]) -> Vec<u8> {
    let mut out = Vec::with_capacity(alignments.len() * 33 + 32);
    header(&mut out, TAG_ALIGNMENTS);
    put_u64(&mut out, alignments.len() as u64);
    for a in alignments {
        put_u32(&mut out, a.read);
        put_u32(&mut out, a.contig);
        put_u32(&mut out, a.read_start);
        put_u32(&mut out, a.read_end);
        put_u32(&mut out, a.contig_start);
        put_u32(&mut out, a.contig_end);
        put_u32(&mut out, a.matches);
        put_u32(&mut out, a.read_len);
        put_u8(&mut out, u8::from(a.rc));
    }
    out
}

/// Rebuild an alignment set from [`encode_alignments`] bytes.
pub fn decode_alignments(bytes: &[u8]) -> io::Result<Vec<Alignment>> {
    let mut r = Reader::new(bytes);
    check_header(&mut r, TAG_ALIGNMENTS)?;
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let read = r.u32()?;
        let contig = r.u32()?;
        let read_start = r.u32()?;
        let read_end = r.u32()?;
        let contig_start = r.u32()?;
        let contig_end = r.u32()?;
        let matches = r.u32()?;
        let read_len = r.u32()?;
        let rc = match r.u8()? {
            0 => false,
            1 => true,
            v => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad rc flag {v}"),
                ))
            }
        };
        out.push(Alignment {
            read,
            contig,
            read_start,
            read_end,
            contig_start,
            contig_end,
            rc,
            matches,
            read_len,
        });
    }
    r.finish()?;
    Ok(out)
}

/// Everything the scaffolding stage produces that downstream consumers
/// (FASTA output, stats) need — the checkpointable form of
/// [`hipmer_scaffold::ScaffoldOutput`] minus the phase reports.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaffoldState {
    /// Final scaffolds with gap-closed sequences.
    pub scaffolds: ScaffoldSet,
    /// Gap-closing outcome counters, summed over rounds.
    pub gap_stats: GapCloseStats,
    /// Per-library insert estimates actually used.
    pub insert_means: Vec<f64>,
}

/// Serialize scaffold state.
pub fn encode_scaffold_state(state: &ScaffoldState) -> Vec<u8> {
    let mut out = Vec::new();
    header(&mut out, TAG_SCAFFOLD);
    put_u64(&mut out, state.scaffolds.scaffolds.len() as u64);
    for s in &state.scaffolds.scaffolds {
        put_u64(&mut out, s.members.len() as u64);
        for m in &s.members {
            put_u32(&mut out, m.contig);
            put_u8(&mut out, u8::from(m.reversed));
            put_i64(&mut out, m.gap_before);
        }
    }
    put_u64(&mut out, state.scaffolds.sequences.len() as u64);
    for seq in &state.scaffolds.sequences {
        put_bytes(&mut out, seq);
    }
    put_u64(&mut out, state.gap_stats.overlap_joined as u64);
    put_u64(&mut out, state.gap_stats.spanned as u64);
    put_u64(&mut out, state.gap_stats.walked as u64);
    put_u64(&mut out, state.gap_stats.patched as u64);
    put_u64(&mut out, state.gap_stats.nfilled as u64);
    put_u64(&mut out, state.insert_means.len() as u64);
    for &m in &state.insert_means {
        put_f64(&mut out, m);
    }
    out
}

/// Rebuild scaffold state from [`encode_scaffold_state`] bytes.
pub fn decode_scaffold_state(bytes: &[u8]) -> io::Result<ScaffoldState> {
    let mut r = Reader::new(bytes);
    check_header(&mut r, TAG_SCAFFOLD)?;
    let n_scaffolds = r.u64()? as usize;
    let mut scaffolds = Vec::with_capacity(n_scaffolds);
    for _ in 0..n_scaffolds {
        let n_members = r.u64()? as usize;
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            let contig = r.u32()?;
            let reversed = r.u8()? != 0;
            let gap_before = r.i64()?;
            members.push(ScaffoldMember {
                contig,
                reversed,
                gap_before,
            });
        }
        scaffolds.push(Scaffold { members });
    }
    let n_seqs = r.u64()? as usize;
    let mut sequences = Vec::with_capacity(n_seqs);
    for _ in 0..n_seqs {
        sequences.push(r.bytes()?);
    }
    let gap_stats = GapCloseStats {
        overlap_joined: r.u64()? as usize,
        spanned: r.u64()? as usize,
        walked: r.u64()? as usize,
        patched: r.u64()? as usize,
        nfilled: r.u64()? as usize,
    };
    let n_means = r.u64()? as usize;
    let mut insert_means = Vec::with_capacity(n_means);
    for _ in 0..n_means {
        insert_means.push(r.f64()?);
    }
    r.finish()?;
    Ok(ScaffoldState {
        scaffolds: ScaffoldSet {
            scaffolds,
            sequences,
        },
        gap_stats,
        insert_means,
    })
}

// ---------------------------------------------------------------------
// The store: manifest + per-stage artifact files.

/// The run parameters a checkpoint is only valid for. A `--resume`
/// against a store whose fingerprint differs (changed k, topology, input,
/// or round count) is rejected — the stale artifacts would silently
/// produce a different assembly than a fresh run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// k-mer length.
    pub k: usize,
    /// Virtual ranks.
    pub ranks: usize,
    /// Ranks per node.
    pub ranks_per_node: usize,
    /// Input reads.
    pub n_reads: usize,
    /// Total input bases.
    pub read_bases: usize,
    /// Scaffolding rounds (0 when scaffolding is disabled).
    pub rounds: usize,
    /// The multi-k round schedule (empty for classic single-k runs). A
    /// single-k store can never satisfy a `--resume` of a multi-k run (or
    /// vice versa, or a run with a different k schedule): the round-scoped
    /// artifacts would line up by index but encode different assemblies.
    pub multi_k: Vec<usize>,
}

impl Fingerprint {
    fn to_value(&self) -> Value {
        let multi_k = self
            .multi_k
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut v = Value::obj();
        v.set("k", self.k)
            .set("ranks", self.ranks)
            .set("ranks_per_node", self.ranks_per_node)
            .set("n_reads", self.n_reads)
            .set("read_bases", self.read_bases)
            .set("rounds", self.rounds)
            .set("multi_k", multi_k);
        v
    }

    fn from_value(v: &Value) -> Option<Fingerprint> {
        let get = |key: &str| v.get(key).and_then(Value::as_u64).map(|x| x as usize);
        let multi_k = match v.get("multi_k").and_then(Value::as_str)? {
            "" => Vec::new(),
            list => list
                .split(',')
                .map(|s| s.parse::<usize>().ok())
                .collect::<Option<Vec<_>>>()?,
        };
        Some(Fingerprint {
            k: get("k")?,
            ranks: get("ranks")?,
            ranks_per_node: get("ranks_per_node")?,
            n_reads: get("n_reads")?,
            read_bases: get("read_bases")?,
            rounds: get("rounds")?,
            multi_k,
        })
    }
}

/// One completed stage recorded in the manifest.
#[derive(Clone, Debug)]
struct StageRecord {
    /// Stage index in pipeline order (records are kept contiguous from 0).
    index: usize,
    name: String,
    file: String,
    bytes: u64,
    checksum: u64,
}

/// A checkpoint directory: a `manifest.json` plus one artifact file per
/// completed stage. See the [module docs](self) for the validation rules.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    fingerprint: Fingerprint,
    stages: Vec<StageRecord>,
}

const MANIFEST: &str = "manifest.json";

impl CheckpointStore {
    /// Create (or reset) a checkpoint directory for a fresh run: any
    /// existing manifest is discarded and rewritten empty.
    pub fn create(dir: &Path, fingerprint: Fingerprint) -> io::Result<CheckpointStore> {
        std::fs::create_dir_all(dir)?;
        let store = CheckpointStore {
            dir: dir.to_path_buf(),
            fingerprint,
            stages: Vec::new(),
        };
        store.write_manifest()?;
        Ok(store)
    }

    /// Open an existing checkpoint directory for `--resume`: the manifest
    /// must parse, carry the current format version, and match
    /// `fingerprint` exactly; per-stage artifacts are checksum-verified
    /// and the store keeps the longest *valid prefix* of stages contiguous
    /// from index 0 (a later stage without its predecessors is useless —
    /// re-execution needs every upstream artifact).
    pub fn open_for_resume(dir: &Path, fingerprint: Fingerprint) -> io::Result<CheckpointStore> {
        let text = std::fs::read_to_string(dir.join(MANIFEST))?;
        let doc = Value::parse(&text)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "unreadable manifest"))?;
        let version = doc.get("format_version").and_then(Value::as_u64);
        if version != Some(FORMAT_VERSION as u64) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("manifest format {version:?}, expected {FORMAT_VERSION}"),
            ));
        }
        let found = doc
            .get("fingerprint")
            .and_then(Fingerprint::from_value)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "manifest fingerprint"))?;
        if found != fingerprint {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint fingerprint {found:?} does not match this run {fingerprint:?}"),
            ));
        }
        let mut stages = Vec::new();
        if let Some(arr) = doc.get("stages").and_then(Value::as_arr) {
            for s in arr {
                let rec = (|| {
                    Some(StageRecord {
                        index: s.get("index").and_then(Value::as_u64)? as usize,
                        name: s.get("name").and_then(Value::as_str)?.to_string(),
                        file: s.get("file").and_then(Value::as_str)?.to_string(),
                        bytes: s.get("bytes").and_then(Value::as_u64)?,
                        checksum: u64::from_str_radix(
                            s.get("checksum")
                                .and_then(Value::as_str)?
                                .trim_start_matches("0x"),
                            16,
                        )
                        .ok()?,
                    })
                })();
                match rec {
                    Some(r) => stages.push(r),
                    None => break, // keep the prefix before the bad record
                }
            }
        }
        // Keep the longest checksum-valid prefix contiguous from stage 0.
        let mut valid = Vec::new();
        for (i, rec) in stages.into_iter().enumerate() {
            if rec.index != i {
                break;
            }
            let ok = std::fs::read(dir.join(&rec.file))
                .map(|bytes| bytes.len() as u64 == rec.bytes && fnv1a(&bytes) == rec.checksum)
                .unwrap_or(false);
            if !ok {
                break;
            }
            valid.push(rec);
        }
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            fingerprint,
            stages: valid,
        })
    }

    /// The fingerprint this store was created/opened with.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// Whether `stage` (by name) has a validated artifact.
    pub fn completed(&self, stage: &str) -> bool {
        self.stages.iter().any(|s| s.name == stage)
    }

    /// Number of validated stages (contiguous from 0).
    pub fn completed_stages(&self) -> usize {
        self.stages.len()
    }

    /// Persist `payload` as the artifact of `stage` (pipeline index
    /// `index`), replacing any record at or after that index (they are
    /// stale once an earlier stage re-executes). The artifact is written
    /// to a temp file and renamed, so a crash mid-save never corrupts an
    /// existing record. Returns `(bytes, checksum)` for reporting.
    pub fn save(&mut self, index: usize, stage: &str, payload: &[u8]) -> io::Result<(u64, u64)> {
        self.invalidate_from(index);
        let checksum = fnv1a(payload);
        // Round-scoped stage names ("round1/kmer-analysis") contain a path
        // separator; flatten it so the artifact stays a plain file in the
        // checkpoint directory. The manifest keys records by the *name*,
        // so lookups are unaffected.
        let file = format!("stage-{index:02}-{}.ckpt", stage.replace('/', "-"));
        let tmp = self.dir.join(format!("{file}.tmp"));
        std::fs::write(&tmp, payload)?;
        std::fs::rename(&tmp, self.dir.join(&file))?;
        self.stages.push(StageRecord {
            index,
            name: stage.to_string(),
            file,
            bytes: payload.len() as u64,
            checksum,
        });
        self.write_manifest()?;
        Ok((payload.len() as u64, checksum))
    }

    /// Load and checksum-verify the artifact of `stage`. Returns the raw
    /// payload bytes plus `(bytes, checksum)` for reporting.
    pub fn load(&self, stage: &str) -> io::Result<(Vec<u8>, u64, u64)> {
        let rec = self
            .stages
            .iter()
            .find(|s| s.name == stage)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no checkpoint for stage {stage:?}"),
                )
            })?;
        let bytes = std::fs::read(self.dir.join(&rec.file))?;
        if fnv1a(&bytes) != rec.checksum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checksum mismatch for stage {stage:?}"),
            ));
        }
        Ok((bytes, rec.bytes, rec.checksum))
    }

    /// Drop every record at or after pipeline index `index` (used both by
    /// [`save`](Self::save) and when a stage executes *without* saving —
    /// e.g. under `--checkpoint-interval` — so later stale artifacts can
    /// never be resumed past a gap).
    pub fn invalidate_from(&mut self, index: usize) {
        if self.stages.iter().any(|s| s.index >= index) {
            self.stages.retain(|s| s.index < index);
            self.write_manifest().ok();
        }
    }

    fn write_manifest(&self) -> io::Result<()> {
        let mut doc = Value::obj();
        doc.set("format_version", FORMAT_VERSION as u64)
            .set("generator", "hipmer")
            .set("fingerprint", self.fingerprint.to_value());
        let stages: Vec<Value> = self
            .stages
            .iter()
            .map(|s| {
                let mut v = Value::obj();
                v.set("index", s.index)
                    .set("name", s.name.as_str())
                    .set("file", s.file.as_str())
                    .set("bytes", s.bytes)
                    .set("checksum", format!("{:#018x}", s.checksum));
                v
            })
            .collect();
        doc.set("stages", stages);
        let tmp = self.dir.join(format!("{MANIFEST}.tmp"));
        std::fs::write(&tmp, doc.to_json())?;
        std::fs::rename(&tmp, self.dir.join(MANIFEST))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Fingerprint {
        Fingerprint {
            k: 21,
            ranks: 4,
            ranks_per_node: 2,
            n_reads: 100,
            read_bases: 10_000,
            rounds: 1,
            multi_k: Vec::new(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hipmer-ckpt-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn alignments_round_trip() {
        let alns = vec![
            Alignment {
                read: 1,
                contig: 2,
                read_start: 3,
                read_end: 99,
                contig_start: 10,
                contig_end: 106,
                rc: true,
                matches: 95,
                read_len: 100,
            },
            Alignment {
                read: 7,
                contig: 0,
                read_start: 0,
                read_end: 50,
                contig_start: 400,
                contig_end: 450,
                rc: false,
                matches: 50,
                read_len: 50,
            },
        ];
        let bytes = encode_alignments(&alns);
        let back = decode_alignments(&bytes).unwrap();
        assert_eq!(alns, back);
        assert_eq!(encode_alignments(&back), bytes, "re-encode is stable");
    }

    #[test]
    fn scaffold_state_round_trips() {
        let state = ScaffoldState {
            scaffolds: ScaffoldSet {
                scaffolds: vec![Scaffold {
                    members: vec![
                        ScaffoldMember {
                            contig: 0,
                            reversed: false,
                            gap_before: 0,
                        },
                        ScaffoldMember {
                            contig: 3,
                            reversed: true,
                            gap_before: -12,
                        },
                    ],
                }],
                sequences: vec![b"ACGTNNNACGT".to_vec()],
            },
            gap_stats: GapCloseStats {
                overlap_joined: 1,
                spanned: 2,
                walked: 3,
                patched: 4,
                nfilled: 5,
            },
            insert_means: vec![395.25, 2400.0],
        };
        let bytes = encode_scaffold_state(&state);
        let back = decode_scaffold_state(&bytes).unwrap();
        assert_eq!(state, back);
        assert_eq!(encode_scaffold_state(&back), bytes);
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = encode_alignments(&[]);
        // Flip a payload byte: header checks or reader bounds must fail…
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(decode_alignments(&bad).is_err());
        // …and truncation too.
        assert!(decode_alignments(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_alignments(&long).is_err());
    }

    #[test]
    fn store_save_load_and_resume() {
        let dir = tmpdir("store");
        let mut store = CheckpointStore::create(&dir, fp()).unwrap();
        let payload = encode_alignments(&[]);
        let (bytes, sum) = store.save(0, "kmer-analysis", &payload).unwrap();
        assert_eq!(bytes, payload.len() as u64);
        assert_eq!(sum, fnv1a(&payload));
        store.save(1, "contig-generation", &payload).unwrap();

        let reopened = CheckpointStore::open_for_resume(&dir, fp()).unwrap();
        assert_eq!(reopened.completed_stages(), 2);
        assert!(reopened.completed("kmer-analysis"));
        let (data, b, s) = reopened.load("contig-generation").unwrap();
        assert_eq!(data, payload);
        assert_eq!((b, s), (bytes, sum));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_fingerprint_mismatch() {
        let dir = tmpdir("fpmm");
        CheckpointStore::create(&dir, fp()).unwrap();
        let other = Fingerprint { k: 31, ..fp() };
        let err = CheckpointStore::open_for_resume(&dir, other).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_keeps_only_the_valid_prefix() {
        let dir = tmpdir("prefix");
        let mut store = CheckpointStore::create(&dir, fp()).unwrap();
        let payload = encode_alignments(&[]);
        store.save(0, "a", &payload).unwrap();
        store.save(1, "b", &payload).unwrap();
        store.save(2, "c", &payload).unwrap();
        // Corrupt the middle artifact: stage 2 becomes unreachable.
        let victim = dir.join("stage-01-b.ckpt");
        let mut data = std::fs::read(&victim).unwrap();
        data[0] ^= 0xff;
        std::fs::write(&victim, &data).unwrap();

        let reopened = CheckpointStore::open_for_resume(&dir, fp()).unwrap();
        assert_eq!(reopened.completed_stages(), 1);
        assert!(reopened.completed("a"));
        assert!(!reopened.completed("b"));
        assert!(!reopened.completed("c"), "no resume past a gap");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_truncates_stale_later_stages() {
        let dir = tmpdir("truncate");
        let mut store = CheckpointStore::create(&dir, fp()).unwrap();
        let payload = encode_alignments(&[]);
        store.save(0, "a", &payload).unwrap();
        store.save(1, "b", &payload).unwrap();
        store.save(2, "c", &payload).unwrap();
        // Re-executing stage 1 invalidates stages 1 and 2.
        store.save(1, "b", &payload).unwrap();
        assert_eq!(store.completed_stages(), 2);
        assert!(!store.completed("c"));
        // And the manifest agrees after reopening.
        let reopened = CheckpointStore::open_for_resume(&dir, fp()).unwrap();
        assert_eq!(reopened.completed_stages(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalidate_from_blocks_resume_past_a_gap() {
        let dir = tmpdir("gap");
        let mut store = CheckpointStore::create(&dir, fp()).unwrap();
        let payload = encode_alignments(&[]);
        store.save(0, "a", &payload).unwrap();
        store.save(1, "b", &payload).unwrap();
        // Stage 0 re-executed without saving (checkpoint interval): every
        // later artifact is stale.
        store.invalidate_from(0);
        assert_eq!(store.completed_stages(), 0);
        let reopened = CheckpointStore::open_for_resume(&dir, fp()).unwrap();
        assert_eq!(reopened.completed_stages(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
