//! The assembly-side implementation of the job service: wires the real
//! five-stage pipeline into `hipmer-serve`'s generic [`JobExecutor`].
//!
//! One executor instance serves the whole daemon. Each job:
//!
//! * keys the result cache by a fingerprint of the **input file bytes**
//!   plus every output-affecting parameter (`k`, ranks, ranks-per-node,
//!   rounds, metagenome preset), so identical resubmissions hit and any
//!   parameter change misses;
//! * runs on a sub-[`Team`](hipmer_pgas::Team) carved from the daemon's shared
//!   [`hipmer_pgas::TeamPool`] lease, with the job's metrics recorded
//!   under a `job/<id>/` scope and its trace spans in a private per-team
//!   recorder (concurrent jobs don't interleave observability state);
//! * checkpoints every stage into the cache directory, so a drain-time
//!   interruption leaves a prefix that the next submission of the same
//!   spec resumes instead of recomputing.

use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use hipmer_pgas::json::Value;
use hipmer_pgas::{metrics, trace, CostModel, TeamLease};
use hipmer_serve::{ExecOutcome, JobExecutor, JobSpec};

use crate::checkpoint;
use crate::config::PipelineConfig;
use crate::pipeline::{run_assembly_fastq, PipelineError, RunOptions};

/// Number of trace ranks sampled per job (kept small: the daemon may run
/// many jobs, and each trace is stored in the result cache).
const TRACE_SAMPLE_RANKS: usize = 4;

/// [`JobExecutor`] running the real assembly pipeline.
#[derive(Debug, Default)]
pub struct AssemblyExecutor;

impl AssemblyExecutor {
    /// A boxed executor ready for [`hipmer_serve::Server::start`].
    pub fn shared() -> Arc<dyn JobExecutor> {
        Arc::new(AssemblyExecutor)
    }
}

/// Build the pipeline configuration a spec describes, mirroring the
/// one-shot CLI's flag handling so `serve` and `assemble` agree.
fn config_for(spec: &JobSpec) -> Result<PipelineConfig, String> {
    let mut cfg = PipelineConfig::try_new(spec.k).map_err(|e| format!("k={}: {e}", spec.k))?;
    if spec.metagenome {
        cfg.scaffold.rounds = 0; // skip scaffolding (§5.4)
    } else {
        cfg.scaffold.rounds = spec.rounds;
    }
    cfg = cfg.with_trace_sample_ranks(TRACE_SAMPLE_RANKS);
    Ok(cfg)
}

impl JobExecutor for AssemblyExecutor {
    fn cache_key(&self, spec: &JobSpec) -> Result<String, String> {
        // Content fingerprint, not path: a re-simulated input at the same
        // path must miss, and the same reads under a new name must hit.
        let bytes = std::fs::read(&spec.input)
            .map_err(|e| format!("cannot read input {:?}: {e}", spec.input))?;
        config_for(spec)?; // reject invalid parameters at admission
        let material = format!(
            "{:016x}|k={}|ranks={}|rpn={}|rounds={}|meta={}",
            checkpoint::fnv1a(&bytes),
            spec.k,
            spec.ranks,
            spec.ranks_per_node,
            spec.rounds,
            spec.metagenome,
        );
        Ok(format!("{:016x}", checkpoint::fnv1a(material.as_bytes())))
    }

    fn execute(
        &self,
        job_id: u64,
        spec: &JobSpec,
        lease: &TeamLease,
        out_dir: &Path,
        resume: bool,
        cancel: &Arc<AtomicBool>,
    ) -> ExecOutcome {
        // Everything this job records lands under `job/<id>/...` in the
        // shared registry; worker threads inherit the scope via the team.
        let _scope = metrics::scoped(&format!("job/{job_id}"));
        let recorder = trace::Recorder::new(TRACE_SAMPLE_RANKS);

        let cfg = match config_for(spec) {
            Ok(c) => c,
            Err(e) => return ExecOutcome::Failed { error: e },
        };
        // The lease may have granted fewer ranks than requested (clamped
        // to the pool); the topology must stay valid either way.
        let rpn = spec.ranks_per_node.clamp(1, lease.ranks());
        let team = lease.team_with_rpn(rpn).with_recorder(recorder.clone());

        let opts = RunOptions {
            checkpoint_dir: Some(out_dir.join("checkpoints")),
            resume,
            cancel: Some(Arc::clone(cancel)),
            ..RunOptions::default()
        };
        let assembly = match run_assembly_fastq(&team, Path::new(&spec.input), &cfg, &opts) {
            Ok(a) => a,
            Err(PipelineError::Interrupted { .. }) => return ExecOutcome::Interrupted,
            Err(PipelineError::Io(e)) if resume => {
                // A corrupt checkpoint prefix must not wedge the job:
                // fall back to a fresh run under the same key.
                metrics::counter_add("hipmer/serve/resume_fallbacks", 1);
                let fresh = RunOptions {
                    resume: false,
                    ..opts.clone()
                };
                match run_assembly_fastq(&team, Path::new(&spec.input), &cfg, &fresh) {
                    Ok(a) => a,
                    Err(PipelineError::Interrupted { .. }) => return ExecOutcome::Interrupted,
                    Err(e2) => {
                        return ExecOutcome::Failed {
                            error: format!("resume failed ({e}); fresh run failed: {e2}"),
                        }
                    }
                }
            }
            Err(e) => {
                return ExecOutcome::Failed {
                    error: e.to_string(),
                }
            }
        };

        // Outputs: FASTA, schema-v5 report, per-job chrome trace.
        let records: Vec<hipmer_seqio::SeqRecord> = assembly
            .scaffolds
            .sequences
            .iter()
            .enumerate()
            .map(|(i, s)| hipmer_seqio::SeqRecord::new(format!("scaffold_{i}"), s.clone()))
            .collect();
        let mut fasta = Vec::new();
        if let Err(e) = hipmer_seqio::write_fasta(&mut fasta, &records, 80) {
            return ExecOutcome::Failed {
                error: format!("FASTA encoding failed: {e}"),
            };
        }
        let report = assembly
            .report
            .to_json_labeled(&CostModel::edison(), "edison");
        let trace_json = trace::chrome_trace_json(&recorder.take_events());
        for (name, bytes) in [
            ("scaffolds.fasta", fasta.as_slice()),
            ("report.json", report.as_bytes()),
            ("trace.json", trace_json.as_bytes()),
        ] {
            if let Err(e) = std::fs::write(out_dir.join(name), bytes) {
                return ExecOutcome::Failed {
                    error: format!("writing {name} failed: {e}"),
                };
            }
        }

        let s = &assembly.stats;
        let mut summary = Value::obj();
        summary
            .set("n_reads", s.n_reads)
            .set("n_contigs", s.n_contigs)
            .set("contig_n50", s.contig_n50)
            .set("n_scaffolds", s.n_scaffolds)
            .set("scaffold_n50", s.scaffold_n50)
            .set("scaffold_bases", s.scaffold_bases)
            .set("ranks", team.topo().ranks());
        ExecOutcome::Completed { summary }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_reads(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hipmer-svc-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        let dataset = hipmer_readsim::human_like_dataset(6_000, 10.0, false, 31);
        let mut buf = Vec::new();
        hipmer_seqio::write_fastq(&mut buf, &dataset.all_reads()).unwrap();
        std::fs::write(&path, &buf).unwrap();
        path
    }

    fn spec_for(input: &Path) -> JobSpec {
        JobSpec {
            input: input.to_string_lossy().into_owned(),
            k: 21,
            ranks: 4,
            ranks_per_node: 2,
            rounds: 1,
            metagenome: false,
            tenant: "test".to_string(),
            priority: 0,
        }
    }

    #[test]
    fn cache_key_tracks_content_and_parameters() {
        let input = write_reads("key");
        let exec = AssemblyExecutor;
        let mut spec = spec_for(&input);
        let base = exec.cache_key(&spec).unwrap();
        assert_eq!(exec.cache_key(&spec).unwrap(), base, "deterministic");

        spec.k = 23;
        assert_ne!(exec.cache_key(&spec).unwrap(), base, "k changes the key");
        spec.k = 21;
        spec.tenant = "other".to_string();
        spec.priority = 9;
        assert_eq!(
            exec.cache_key(&spec).unwrap(),
            base,
            "scheduling metadata must not affect the key"
        );

        // Content change -> new key, even at the same path.
        let mut bytes = std::fs::read(&input).unwrap();
        bytes.extend_from_slice(b"@extra\nACGT\n+\nIIII\n");
        std::fs::write(&input, &bytes).unwrap();
        assert_ne!(exec.cache_key(&spec).unwrap(), base);

        spec.input = "/nonexistent/reads.fastq".to_string();
        assert!(exec.cache_key(&spec).is_err());
        std::fs::remove_dir_all(input.parent().unwrap()).ok();
    }

    #[test]
    fn invalid_k_is_rejected_at_key_time() {
        let input = write_reads("badk");
        let exec = AssemblyExecutor;
        let mut spec = spec_for(&input);
        spec.k = 22; // even k is invalid
        assert!(exec.cache_key(&spec).is_err());
        std::fs::remove_dir_all(input.parent().unwrap()).ok();
    }
}
