//! End-to-end test of the `hipmer` command-line binary: simulate reads,
//! assemble them, check the FASTA output.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hipmer")
}

#[test]
fn simulate_then_assemble_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hipmer-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");
    let out = dir.join("scaffolds.fasta");

    let sim = Command::new(bin())
        .args([
            "simulate",
            "human",
            "-o",
            reads.to_str().unwrap(),
            "--len",
            "20000",
            "--cov",
            "16",
            "--seed",
            "5",
        ])
        .output()
        .expect("simulate runs");
    assert!(
        sim.status.success(),
        "{}",
        String::from_utf8_lossy(&sim.stderr)
    );
    assert!(reads.exists());

    let asm = Command::new(bin())
        .args([
            "assemble",
            reads.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
            "-k",
            "21",
            "--ranks",
            "16",
            "--ranks-per-node",
            "8",
            "--report",
        ])
        .output()
        .expect("assemble runs");
    assert!(
        asm.status.success(),
        "{}",
        String::from_utf8_lossy(&asm.stderr)
    );
    let stderr = String::from_utf8_lossy(&asm.stderr);
    assert!(stderr.contains("scaffolds"), "{stderr}");
    assert!(
        stderr.contains("TOTAL"),
        "--report must print modeled times"
    );

    // The FASTA parses and contains real sequence.
    let fasta = std::fs::read(&out).unwrap();
    let records = hipmer_seqio::parse_fasta(&fasta).unwrap();
    assert!(!records.is_empty());
    let total: usize = records.iter().map(|r| r.seq.len()).sum();
    assert!(total > 10_000, "assembled only {total} bases");
    for r in &records {
        assert!(hipmer_dna::validate_dna(&r.seq).is_ok());
        assert!(r.id.starts_with("scaffold_"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dynamic_schedule_matches_static_fasta_and_records_steals() {
    use hipmer_pgas::json::Value;

    let dir = std::env::temp_dir().join(format!("hipmer-cli-sched-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");

    let sim = Command::new(bin())
        .args([
            "simulate",
            "human",
            "-o",
            reads.to_str().unwrap(),
            "--len",
            "15000",
            "--cov",
            "14",
            "--seed",
            "7",
        ])
        .output()
        .expect("simulate runs");
    assert!(
        sim.status.success(),
        "{}",
        String::from_utf8_lossy(&sim.stderr)
    );

    let run = |schedule: &str| {
        let out = dir.join(format!("scaffolds-{schedule}.fasta"));
        let report = dir.join(format!("report-{schedule}.json"));
        let asm = Command::new(bin())
            .args([
                "assemble",
                reads.to_str().unwrap(),
                "-o",
                out.to_str().unwrap(),
                "-k",
                "21",
                "--ranks",
                "16",
                "--ranks-per-node",
                "8",
                "--schedule",
                schedule,
                "--report-json",
                report.to_str().unwrap(),
            ])
            .output()
            .expect("assemble runs");
        assert!(
            asm.status.success(),
            "{}",
            String::from_utf8_lossy(&asm.stderr)
        );
        (
            std::fs::read(&out).unwrap(),
            std::fs::read_to_string(&report).unwrap(),
        )
    };
    let (fasta_static, report_static) = run("static");
    let (fasta_dynamic, report_dynamic) = run("dynamic");
    assert_eq!(
        fasta_static, fasta_dynamic,
        "schedules must assemble byte-identical scaffolds"
    );

    // Static records no steals; dynamic records them on the converted
    // phases (traversal claim, aligner, depths, bubbles, gap closing).
    let steals = |doc: &str| -> u64 {
        let doc = Value::parse(doc).unwrap();
        doc.get("phases")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|p| {
                p.get("totals")
                    .and_then(|t| t.get("steal_ops"))
                    .and_then(Value::as_u64)
                    .unwrap()
            })
            .sum()
    };
    assert_eq!(steals(&report_static), 0, "static schedule must not steal");
    assert!(
        steals(&report_dynamic) > 0,
        "dynamic schedule must record steal operations"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn minimizer_partition_matches_uniform_fasta_and_labels_report() {
    use hipmer_pgas::json::Value;

    let dir = std::env::temp_dir().join(format!("hipmer-cli-part-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");

    let sim = Command::new(bin())
        .args([
            "simulate",
            "human",
            "-o",
            reads.to_str().unwrap(),
            "--len",
            "15000",
            "--cov",
            "14",
            "--seed",
            "11",
        ])
        .output()
        .expect("simulate runs");
    assert!(
        sim.status.success(),
        "{}",
        String::from_utf8_lossy(&sim.stderr)
    );

    let run = |partition: &str| {
        let out = dir.join(format!("scaffolds-{partition}.fasta"));
        let report = dir.join(format!("report-{partition}.json"));
        let asm = Command::new(bin())
            .args([
                "assemble",
                reads.to_str().unwrap(),
                "-o",
                out.to_str().unwrap(),
                "-k",
                "21",
                "--ranks",
                "16",
                "--ranks-per-node",
                "8",
                "--partition",
                partition,
                "--report-json",
                report.to_str().unwrap(),
            ])
            .output()
            .expect("assemble runs");
        assert!(
            asm.status.success(),
            "{}",
            String::from_utf8_lossy(&asm.stderr)
        );
        (
            std::fs::read(&out).unwrap(),
            std::fs::read_to_string(&report).unwrap(),
        )
    };
    let (fasta_uniform, report_uniform) = run("uniform");
    let (fasta_minimizer, report_minimizer) = run("minimizer");
    assert_eq!(
        fasta_uniform, fasta_minimizer,
        "partition schemes must assemble byte-identical scaffolds"
    );

    // The schema-v6 partition surface: the header names the scheme, the
    // placement split carries the expected labels, and the traversal
    // phase's off-node fraction drops under minimizer bucketing.
    let doc_uni = Value::parse(&report_uniform).unwrap();
    let doc_min = Value::parse(&report_minimizer).unwrap();
    assert_eq!(
        doc_uni.get("partition").and_then(Value::as_str),
        Some("uniform")
    );
    assert_eq!(
        doc_min.get("partition").and_then(Value::as_str),
        Some("minimizer")
    );
    let split_keys = |doc: &Value| -> Vec<String> {
        doc.get("offnode_by_placement")
            .unwrap()
            .keys()
            .iter()
            .map(|s| s.to_string())
            .collect()
    };
    assert!(split_keys(&doc_uni).iter().all(|k| k == "uniform"));
    assert!(split_keys(&doc_min)
        .iter()
        .all(|k| k.starts_with("minimizer(")));
    let traversal_offnode = |doc: &Value| -> f64 {
        doc.get("phases")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .find(|p| p.get("name").and_then(Value::as_str) == Some("contig/traversal"))
            .and_then(|p| p.get("offnode_fraction"))
            .and_then(Value::as_f64)
            .unwrap()
    };
    let uni = traversal_offnode(&doc_uni);
    let min = traversal_offnode(&doc_min);
    assert!(
        min < uni * 0.75,
        "minimizer traversal off-node fraction {min} must undercut uniform {uni} by >= 25%"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_and_report_json_outputs_are_valid() {
    use hipmer_pgas::json::Value;

    let dir = std::env::temp_dir().join(format!("hipmer-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");
    let out = dir.join("scaffolds.fasta");
    let trace = dir.join("trace.json");
    let report = dir.join("report.json");

    let sim = Command::new(bin())
        .args([
            "simulate",
            "human",
            "-o",
            reads.to_str().unwrap(),
            "--len",
            "15000",
            "--cov",
            "14",
            "--seed",
            "9",
        ])
        .output()
        .expect("simulate runs");
    assert!(
        sim.status.success(),
        "{}",
        String::from_utf8_lossy(&sim.stderr)
    );

    let asm = Command::new(bin())
        .args([
            "assemble",
            reads.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
            "-k",
            "21",
            "--ranks",
            "8",
            "--ranks-per-node",
            "4",
            "--trace",
            trace.to_str().unwrap(),
            "--trace-ranks",
            "4",
            "--report-json",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("assemble runs");
    assert!(
        asm.status.success(),
        "{}",
        String::from_utf8_lossy(&asm.stderr)
    );

    // The trace is a Chrome trace-event JSON array: complete ("X") spans
    // carrying pid/tid/ts/dur, restricted to the sampled ranks.
    let trace_doc = Value::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let events = trace_doc.as_arr().expect("trace is a JSON array");
    let spans: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .collect();
    assert!(!spans.is_empty(), "trace must contain complete events");
    for s in &spans {
        assert!(s.get("name").and_then(Value::as_str).is_some());
        assert_eq!(s.get("pid").and_then(Value::as_u64), Some(1));
        let tid = s.get("tid").and_then(Value::as_u64).unwrap();
        assert!(tid < 4, "rank {tid} exceeds --trace-ranks 4");
        assert!(s.get("ts").and_then(Value::as_f64).is_some());
        assert!(s.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
    }
    // Every pipeline stage shows up at least once.
    for stage in ["io/", "kmer-analysis/", "contig/", "scaffold/"] {
        assert!(
            spans.iter().any(|s| s
                .get("name")
                .and_then(Value::as_str)
                .unwrap()
                .starts_with(stage)),
            "no trace span for stage {stage}"
        );
    }

    // The report is the schema-versioned pipeline document with per-phase
    // metrics, and the traced run recorded hot keys on the count phase.
    let report_doc = Value::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
    assert_eq!(
        report_doc.get("schema_version").and_then(Value::as_u64),
        Some(7)
    );
    // Schema v7: classic single-k runs serialize an empty rounds array.
    assert!(report_doc
        .get("rounds")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());
    assert_eq!(
        report_doc.get("cost_model").and_then(Value::as_str),
        Some("edison")
    );
    // Schema v5: the measured-vs-modeled summary is always present.
    let model_error = report_doc.get("model_error").expect("model_error block");
    assert!(model_error
        .get("mean_rel_error")
        .and_then(Value::as_f64)
        .is_some());
    assert!(!model_error
        .get("phases")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());
    // Schema v3: per-stage attempt bookkeeping is always present; a
    // fault-free, checkpoint-free run shows one clean execution per stage
    // and no checkpoint events.
    let attempts = report_doc.get("stage_attempts").unwrap().as_arr().unwrap();
    assert_eq!(attempts.len(), 5, "five pipeline stages");
    for a in attempts {
        assert_eq!(a.get("executions").and_then(Value::as_u64), Some(1));
        assert_eq!(a.get("aborted").and_then(Value::as_u64), Some(0));
    }
    assert!(report_doc
        .get("checkpoints")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());
    assert_eq!(
        report_doc
            .get("topology")
            .and_then(|t| t.get("ranks"))
            .and_then(Value::as_u64),
        Some(8)
    );
    let phases = report_doc.get("phases").unwrap().as_arr().unwrap();
    assert!(phases.len() >= 8, "only {} phases reported", phases.len());
    for p in phases {
        assert!(p.get("wall_seconds").and_then(Value::as_f64).unwrap() > 0.0);
        // Schema v5: every phase carries its measured timings.
        assert!(p
            .get("measured")
            .and_then(|m| m.get("max_rank_seconds"))
            .and_then(Value::as_f64)
            .is_some());
        assert!(p.get("offnode_fraction").and_then(Value::as_f64).is_some());
        assert!(p.get("imbalance").and_then(Value::as_f64).unwrap() >= 1.0);
        // Schema v4: steal accounting is always present (0 under the
        // default static schedule).
        assert!(p
            .get("totals")
            .and_then(|t| t.get("steal_ops"))
            .and_then(Value::as_u64)
            .is_some());
        assert!(p
            .get("modeled")
            .and_then(|m| m.get("total_seconds"))
            .is_some());
    }
    let count = phases
        .iter()
        .find(|p| p.get("name").and_then(Value::as_str) == Some("kmer-analysis/count"))
        .expect("count phase present");
    assert!(
        !count.get("hot_keys").unwrap().as_arr().unwrap().is_empty(),
        "traced run must surface hot keys"
    );
    // Schema v2: the read-side communication-avoidance counters are
    // reported, and the aligner exercises both batching and caching.
    let align = phases
        .iter()
        .find(|p| p.get("name").and_then(Value::as_str) == Some("scaffold/meraligner-align"))
        .expect("align phase present");
    let totals = align.get("totals").expect("phase totals present");
    assert!(
        totals
            .get("lookup_batches")
            .and_then(Value::as_u64)
            .unwrap()
            > 0,
        "aligner must ship batched lookups"
    );
    assert!(
        totals.get("cache_hits").and_then(Value::as_u64).unwrap() > 0,
        "aligner caches must see hits"
    );
    assert!(totals.get("cache_misses").and_then(Value::as_u64).is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_calibration_and_trace_sampling_flags_work_end_to_end() {
    use hipmer_pgas::json::Value;

    let dir = std::env::temp_dir().join(format!("hipmer-cli-metrics-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");

    let sim = Command::new(bin())
        .args([
            "simulate",
            "human",
            "-o",
            reads.to_str().unwrap(),
            "--len",
            "15000",
            "--cov",
            "14",
            "--seed",
            "17",
        ])
        .output()
        .expect("simulate runs");
    assert!(sim.status.success());

    let out = dir.join("scaffolds.fasta");
    let trace = dir.join("trace.json");
    let report = dir.join("report.json");
    let metrics = dir.join("metrics.json");
    let fitted = dir.join("fitted.json");
    let asm = Command::new(bin())
        .args([
            "assemble",
            reads.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
            "-k",
            "21",
            "--ranks",
            "8",
            "--ranks-per-node",
            "4",
            "--trace",
            trace.to_str().unwrap(),
            "--trace-ranks",
            "4",
            "--trace-sample-ranks",
            "2",
            "--metrics-json",
            metrics.to_str().unwrap(),
            "--metrics-text",
            "--calibrate",
            fitted.to_str().unwrap(),
            "--report-json",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("assemble runs");
    assert!(
        asm.status.success(),
        "{}",
        String::from_utf8_lossy(&asm.stderr)
    );

    // --trace-sample-ranks 2 overrides --trace-ranks 4 for the pipeline
    // stages: no span may carry a rank id >= 2.
    let trace_doc = Value::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let spans: Vec<&Value> = trace_doc
        .as_arr()
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .collect();
    assert!(!spans.is_empty());
    for s in &spans {
        let tid = s.get("tid").and_then(Value::as_u64).unwrap();
        assert!(tid < 2, "rank {tid} exceeds --trace-sample-ranks 2");
    }

    // The metrics snapshot is valid JSON carrying the instrumented names.
    let metrics_doc = Value::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(
        metrics_doc
            .get("metrics_schema_version")
            .and_then(Value::as_u64),
        Some(1)
    );
    let names: Vec<&str> = metrics_doc
        .get("metrics")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|m| m.get("name").and_then(Value::as_str).unwrap())
        .collect();
    for expected in [
        "pgas/dht/entries",
        "pgas/lookup/wire_bytes",
        "pgas/outbox/wire_bytes",
        "pgas/team/phase_nanos",
        "hipmer/mem/stage_peak_bytes/kmer-analysis",
        "progress/pipeline/stages/done",
    ] {
        assert!(names.contains(&expected), "missing metric {expected}");
    }
    // The tracking allocator is installed in the binary, so stage peaks
    // are real heap numbers, not zeros.
    let peak = metrics_doc
        .get("metrics")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|m| {
            m.get("name").and_then(Value::as_str)
                == Some("hipmer/mem/stage_peak_bytes/kmer-analysis")
        })
        .unwrap();
    assert!(peak.get("value").and_then(Value::as_f64).unwrap() > 0.0);

    // --metrics-text prints Prometheus exposition on stdout.
    let stdout = String::from_utf8_lossy(&asm.stdout);
    assert!(stdout.contains("# TYPE"), "{stdout}");
    assert!(stdout.contains("_bucket{le="), "{stdout}");

    // The fitted constants round-trip through CostModel::from_json
    // byte-identically.
    let fitted_text = std::fs::read_to_string(&fitted).unwrap();
    let model = hipmer_pgas::CostModel::from_json(&fitted_text).expect("fitted constants load");
    assert_eq!(
        model.to_json(),
        fitted_text,
        "round-trip must be byte-identical"
    );

    // The report was priced with the fitted model and carries model_error.
    let report_doc = Value::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
    assert_eq!(
        report_doc.get("cost_model").and_then(Value::as_str),
        Some("calibrated")
    );
    let errors = report_doc
        .get("model_error")
        .unwrap()
        .get("phases")
        .unwrap()
        .as_arr()
        .unwrap();
    assert!(!errors.is_empty());
    for e in errors {
        assert!(e.get("rel_error").and_then(Value::as_f64).unwrap() >= 0.0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_halt_then_resume_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("hipmer-cli-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");

    let sim = Command::new(bin())
        .args([
            "simulate",
            "human",
            "-o",
            reads.to_str().unwrap(),
            "--len",
            "15000",
            "--cov",
            "14",
            "--seed",
            "21",
        ])
        .output()
        .expect("simulate runs");
    assert!(sim.status.success());

    let base = dir.join("base.fasta");
    let common = [
        "assemble",
        reads.to_str().unwrap(),
        "-k",
        "21",
        "--ranks",
        "8",
        "--ranks-per-node",
        "4",
    ];
    let run = |extra: &[&str]| {
        let out = Command::new(bin())
            .args(common)
            .args(extra)
            .output()
            .unwrap();
        (out.status, String::from_utf8_lossy(&out.stderr).to_string())
    };
    let (st, err) = run(&["-o", base.to_str().unwrap()]);
    assert!(st.success(), "{err}");

    // Kill the run after stage 2 (scaffold-prep): exit 0, no FASTA.
    let ckpt = dir.join("ckpt");
    let halted = dir.join("halted.fasta");
    let (st, err) = run(&[
        "-o",
        halted.to_str().unwrap(),
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--halt-after",
        "scaffold-prep",
    ]);
    assert!(st.success(), "{err}");
    assert!(err.contains("halted after stage"), "{err}");
    assert!(!halted.exists(), "halted run must not write a FASTA");

    // Resume: completed stages load from checkpoints, the assembly is
    // byte-identical, and the report records the loads.
    let resumed = dir.join("resumed.fasta");
    let report = dir.join("resume-report.json");
    let (st, err) = run(&[
        "-o",
        resumed.to_str().unwrap(),
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--resume",
        "--report-json",
        report.to_str().unwrap(),
    ]);
    assert!(st.success(), "{err}");
    assert_eq!(
        std::fs::read(&base).unwrap(),
        std::fs::read(&resumed).unwrap(),
        "resumed assembly must be byte-identical"
    );
    let doc = hipmer_pgas::json::Value::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
    use hipmer_pgas::json::Value;
    let resumed_stages: Vec<&str> = doc
        .get("stage_attempts")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter(|a| a.get("resumed").and_then(Value::as_bool) == Some(true))
        .map(|a| a.get("stage").and_then(Value::as_str).unwrap())
        .collect();
    assert_eq!(
        resumed_stages,
        ["kmer-analysis", "contig-generation", "scaffold-prep"]
    );
    let loads = doc
        .get("checkpoints")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter(|c| c.get("action").and_then(Value::as_str) == Some("load"))
        .count();
    assert_eq!(loads, 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_injection_recovers_byte_identically() {
    use hipmer_pgas::json::Value;

    let dir = std::env::temp_dir().join(format!("hipmer-cli-fault-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");

    let sim = Command::new(bin())
        .args([
            "simulate",
            "human",
            "-o",
            reads.to_str().unwrap(),
            "--len",
            "15000",
            "--cov",
            "14",
            "--seed",
            "33",
        ])
        .output()
        .expect("simulate runs");
    assert!(sim.status.success());

    let common = [
        "assemble",
        reads.to_str().unwrap(),
        "-k",
        "21",
        "--ranks",
        "8",
        "--ranks-per-node",
        "4",
    ];
    let base = dir.join("base.fasta");
    let out = Command::new(bin())
        .args(common)
        .args(["-o", base.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Seeded transient faults plus a one-shot hard kill of rank 3: the
    // transient faults retry transparently, the kill aborts its stage,
    // and the retry (from checkpoints) must reproduce the assembly.
    //
    // The whole scenario runs once per OS-thread count (1, 4, and 8):
    // fault injection, deterministic abort selection, and the recovered
    // output must not depend on how virtual ranks multiplex onto threads
    // (the measured-parallelism engine defers sends and parks batches
    // under contention, which only multi-threaded runs exercise).
    for threads in ["1", "4", "8"] {
        let faulty = dir.join(format!("faulty-{threads}t.fasta"));
        let ckpt = dir.join(format!("ckpt-{threads}t"));
        let report = dir.join(format!("fault-report-{threads}t.json"));
        let out = Command::new(bin())
            .env("HIPMER_THREADS", threads)
            .args(common)
            .args([
                "-o",
                faulty.to_str().unwrap(),
                "--checkpoint-dir",
                ckpt.to_str().unwrap(),
                "--stage-retries",
                "2",
                "--fault-seed",
                "7",
                "--fault-transient",
                "0.002",
                // Event 300 lands well inside contig traversal at every
                // thread count (k-mer analysis contributes ~30 remote
                // events per rank, traversal ~1600): the threshold must
                // not sit near a stage boundary or the firing stage
                // becomes sensitive to small accounting shifts.
                "--fault-kill",
                "3:300",
                "--report-json",
                report.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "[{threads} threads] {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            std::fs::read(&base).unwrap(),
            std::fs::read(&faulty).unwrap(),
            "[{threads} threads] recovered assembly must be byte-identical to the fault-free one"
        );

        let doc = Value::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        let attempts = doc.get("stage_attempts").unwrap().as_arr().unwrap();
        let aborted: u64 = attempts
            .iter()
            .map(|a| a.get("aborted").and_then(Value::as_u64).unwrap())
            .sum();
        assert_eq!(
            aborted, 1,
            "[{threads} threads] the kill must abort exactly one stage attempt"
        );
        // Deterministic abort selection: the aborted stage is the same at
        // every thread count because fault events are counted per rank
        // (attempt-deterministic accounting) and the abort picks the
        // lowest failing rank, not the first thread to observe a failure.
        let aborted_stage: Vec<&str> = attempts
            .iter()
            .filter(|a| a.get("aborted").and_then(Value::as_u64) == Some(1))
            .map(|a| a.get("stage").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(
            aborted_stage,
            ["contig-generation"],
            "[{threads} threads] same stage aborts at every thread count"
        );
        // The injected transient faults and their retries are visible in
        // the phase totals.
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        let faults: u64 = phases
            .iter()
            .map(|p| {
                p.get("totals")
                    .and_then(|t| t.get("transient_faults"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0)
            })
            .sum();
        let retries: u64 = phases
            .iter()
            .map(|p| {
                p.get("totals")
                    .and_then(|t| t.get("retries"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0)
            })
            .sum();
        assert!(
            faults > 0,
            "[{threads} threads] transient faults must be injected and counted"
        );
        assert!(
            retries >= faults,
            "[{threads} threads] every transient fault costs a retry"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_k_assembles_and_reports_rounds() {
    use hipmer_pgas::json::Value;

    let dir = std::env::temp_dir().join(format!("hipmer-cli-multik-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");

    let sim = Command::new(bin())
        .args([
            "simulate",
            "meta",
            "-o",
            reads.to_str().unwrap(),
            "--len",
            "60000",
            "--cov",
            "10",
            "--seed",
            "23",
        ])
        .output()
        .expect("simulate runs");
    assert!(
        sim.status.success(),
        "{}",
        String::from_utf8_lossy(&sim.stderr)
    );

    let out = dir.join("scaffolds.fasta");
    let report = dir.join("report.json");
    let asm = Command::new(bin())
        .args([
            "assemble",
            reads.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
            "--multi-k",
            "21,33",
            "--metagenome",
            "--ranks",
            "8",
            "--ranks-per-node",
            "4",
            "--report-json",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("assemble runs");
    let stderr = String::from_utf8_lossy(&asm.stderr);
    assert!(asm.status.success(), "{stderr}");
    assert!(stderr.contains("multi-k rounds [21, 33]"), "{stderr}");
    assert!(stderr.contains("round 1 (k=21):"), "{stderr}");
    assert!(stderr.contains("round 2 (k=33):"), "{stderr}");
    assert!(out.exists(), "multi-k run must write the FASTA");

    // The schema-v7 rounds surface.
    let doc = Value::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
    assert_eq!(doc.get("schema_version").and_then(Value::as_u64), Some(7));
    let rounds = doc.get("rounds").unwrap().as_arr().unwrap();
    assert_eq!(rounds.len(), 2);
    assert_eq!(rounds[0].get("k").and_then(Value::as_u64), Some(21));
    assert_eq!(rounds[1].get("k").and_then(Value::as_u64), Some(33));
    assert_eq!(
        rounds[0].get("pseudo_reads").and_then(Value::as_u64),
        Some(0)
    );
    assert!(
        rounds[1]
            .get("pseudo_reads")
            .and_then(Value::as_u64)
            .unwrap()
            > 0
    );
    let stages: Vec<&str> = doc
        .get("stage_attempts")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|a| a.get("stage").and_then(Value::as_str).unwrap())
        .collect();
    assert_eq!(
        stages,
        [
            "round1/kmer-analysis",
            "round1/contig-generation",
            "round2/kmer-analysis",
            "round2/contig-generation"
        ]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_halt_after_stage_exits_nonzero_listing_valid_stages() {
    let dir = std::env::temp_dir().join(format!("hipmer-cli-badhalt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");
    std::fs::write(
        &reads,
        b"@r1\nACGTACGTACGTACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIIIIIIIIIIIIIII\n",
    )
    .unwrap();

    let out = Command::new(bin())
        .args([
            "assemble",
            reads.to_str().unwrap(),
            "-o",
            dir.join("out.fasta").to_str().unwrap(),
            "-k",
            "21",
            "--ranks",
            "4",
            "--ranks-per-node",
            "2",
            "--halt-after",
            "scafold-prep",
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "a misspelled --halt-after stage must fail, not silently run: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(
        stderr.contains("unknown --halt-after stage") && stderr.contains("scaffold-prep"),
        "error must list the valid stages: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_fastq_exits_nonzero_with_clean_error() {
    let dir = std::env::temp_dir().join(format!("hipmer-cli-trunc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("truncated.fastq");
    // Second record cut off mid-way: no quality line at all.
    std::fs::write(
        &reads,
        b"@r1\nACGTACGTACGT\n+\nIIIIIIIIIIII\n@r2\nACGTACGT\n",
    )
    .unwrap();

    let out = Command::new(bin())
        .args([
            "assemble",
            reads.to_str().unwrap(),
            "-o",
            dir.join("out.fasta").to_str().unwrap(),
            "-k",
            "21",
            "--ranks",
            "4",
            "--ranks-per-node",
            "2",
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "truncated input must fail: {stderr}");
    assert!(
        !stderr.contains("panicked"),
        "must fail cleanly, not panic: {stderr}"
    );
    assert!(
        stderr.contains("error:") && stderr.contains("record"),
        "error must name the failing record: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_k_exits_nonzero_with_clean_error() {
    let dir = std::env::temp_dir().join(format!("hipmer-cli-badk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");
    std::fs::write(&reads, b"@r1\nACGTACGT\n+\nIIIIIIII\n").unwrap();
    for bad_k in ["22", "0", "65"] {
        let out = Command::new(bin())
            .args([
                "assemble",
                reads.to_str().unwrap(),
                "-o",
                dir.join("out.fasta").to_str().unwrap(),
                "-k",
                bad_k,
            ])
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "-k {bad_k} must fail: {stderr}");
        assert!(
            !stderr.contains("panicked"),
            "-k {bad_k} must fail cleanly, not panic: {stderr}"
        );
        assert!(stderr.contains("error:"), "-k {bad_k}: {stderr}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = Command::new(bin()).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let out = Command::new(bin())
        .args(["assemble", "/nonexistent.fastq", "-o", "/tmp/x.fasta"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
