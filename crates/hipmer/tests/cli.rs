//! End-to-end test of the `hipmer` command-line binary: simulate reads,
//! assemble them, check the FASTA output.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hipmer")
}

#[test]
fn simulate_then_assemble_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hipmer-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");
    let out = dir.join("scaffolds.fasta");

    let sim = Command::new(bin())
        .args([
            "simulate",
            "human",
            "-o",
            reads.to_str().unwrap(),
            "--len",
            "20000",
            "--cov",
            "16",
            "--seed",
            "5",
        ])
        .output()
        .expect("simulate runs");
    assert!(sim.status.success(), "{}", String::from_utf8_lossy(&sim.stderr));
    assert!(reads.exists());

    let asm = Command::new(bin())
        .args([
            "assemble",
            reads.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
            "-k",
            "21",
            "--ranks",
            "16",
            "--ranks-per-node",
            "8",
            "--report",
        ])
        .output()
        .expect("assemble runs");
    assert!(asm.status.success(), "{}", String::from_utf8_lossy(&asm.stderr));
    let stderr = String::from_utf8_lossy(&asm.stderr);
    assert!(stderr.contains("scaffolds"), "{stderr}");
    assert!(stderr.contains("TOTAL"), "--report must print modeled times");

    // The FASTA parses and contains real sequence.
    let fasta = std::fs::read(&out).unwrap();
    let records = hipmer_seqio::parse_fasta(&fasta).unwrap();
    assert!(!records.is_empty());
    let total: usize = records.iter().map(|r| r.seq.len()).sum();
    assert!(total > 10_000, "assembled only {total} bases");
    for r in &records {
        assert!(hipmer_dna::validate_dna(&r.seq).is_ok());
        assert!(r.id.starts_with("scaffold_"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = Command::new(bin()).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let out = Command::new(bin())
        .args(["assemble", "/nonexistent.fastq", "-o", "/tmp/x.fasta"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
