//! End-to-end test of the `hipmer` command-line binary: simulate reads,
//! assemble them, check the FASTA output.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hipmer")
}

#[test]
fn simulate_then_assemble_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hipmer-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");
    let out = dir.join("scaffolds.fasta");

    let sim = Command::new(bin())
        .args([
            "simulate",
            "human",
            "-o",
            reads.to_str().unwrap(),
            "--len",
            "20000",
            "--cov",
            "16",
            "--seed",
            "5",
        ])
        .output()
        .expect("simulate runs");
    assert!(
        sim.status.success(),
        "{}",
        String::from_utf8_lossy(&sim.stderr)
    );
    assert!(reads.exists());

    let asm = Command::new(bin())
        .args([
            "assemble",
            reads.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
            "-k",
            "21",
            "--ranks",
            "16",
            "--ranks-per-node",
            "8",
            "--report",
        ])
        .output()
        .expect("assemble runs");
    assert!(
        asm.status.success(),
        "{}",
        String::from_utf8_lossy(&asm.stderr)
    );
    let stderr = String::from_utf8_lossy(&asm.stderr);
    assert!(stderr.contains("scaffolds"), "{stderr}");
    assert!(
        stderr.contains("TOTAL"),
        "--report must print modeled times"
    );

    // The FASTA parses and contains real sequence.
    let fasta = std::fs::read(&out).unwrap();
    let records = hipmer_seqio::parse_fasta(&fasta).unwrap();
    assert!(!records.is_empty());
    let total: usize = records.iter().map(|r| r.seq.len()).sum();
    assert!(total > 10_000, "assembled only {total} bases");
    for r in &records {
        assert!(hipmer_dna::validate_dna(&r.seq).is_ok());
        assert!(r.id.starts_with("scaffold_"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_and_report_json_outputs_are_valid() {
    use hipmer_pgas::json::Value;

    let dir = std::env::temp_dir().join(format!("hipmer-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("reads.fastq");
    let out = dir.join("scaffolds.fasta");
    let trace = dir.join("trace.json");
    let report = dir.join("report.json");

    let sim = Command::new(bin())
        .args([
            "simulate",
            "human",
            "-o",
            reads.to_str().unwrap(),
            "--len",
            "15000",
            "--cov",
            "14",
            "--seed",
            "9",
        ])
        .output()
        .expect("simulate runs");
    assert!(
        sim.status.success(),
        "{}",
        String::from_utf8_lossy(&sim.stderr)
    );

    let asm = Command::new(bin())
        .args([
            "assemble",
            reads.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
            "-k",
            "21",
            "--ranks",
            "8",
            "--ranks-per-node",
            "4",
            "--trace",
            trace.to_str().unwrap(),
            "--trace-ranks",
            "4",
            "--report-json",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("assemble runs");
    assert!(
        asm.status.success(),
        "{}",
        String::from_utf8_lossy(&asm.stderr)
    );

    // The trace is a Chrome trace-event JSON array: complete ("X") spans
    // carrying pid/tid/ts/dur, restricted to the sampled ranks.
    let trace_doc = Value::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let events = trace_doc.as_arr().expect("trace is a JSON array");
    let spans: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .collect();
    assert!(!spans.is_empty(), "trace must contain complete events");
    for s in &spans {
        assert!(s.get("name").and_then(Value::as_str).is_some());
        assert_eq!(s.get("pid").and_then(Value::as_u64), Some(1));
        let tid = s.get("tid").and_then(Value::as_u64).unwrap();
        assert!(tid < 4, "rank {tid} exceeds --trace-ranks 4");
        assert!(s.get("ts").and_then(Value::as_f64).is_some());
        assert!(s.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
    }
    // Every pipeline stage shows up at least once.
    for stage in ["io/", "kmer-analysis/", "contig/", "scaffold/"] {
        assert!(
            spans.iter().any(|s| s
                .get("name")
                .and_then(Value::as_str)
                .unwrap()
                .starts_with(stage)),
            "no trace span for stage {stage}"
        );
    }

    // The report is the schema-versioned pipeline document with per-phase
    // metrics, and the traced run recorded hot keys on the count phase.
    let report_doc = Value::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
    assert_eq!(
        report_doc.get("schema_version").and_then(Value::as_u64),
        Some(2)
    );
    assert_eq!(
        report_doc
            .get("topology")
            .and_then(|t| t.get("ranks"))
            .and_then(Value::as_u64),
        Some(8)
    );
    let phases = report_doc.get("phases").unwrap().as_arr().unwrap();
    assert!(phases.len() >= 8, "only {} phases reported", phases.len());
    for p in phases {
        assert!(p.get("wall_seconds").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(p.get("offnode_fraction").and_then(Value::as_f64).is_some());
        assert!(p.get("imbalance").and_then(Value::as_f64).unwrap() >= 1.0);
        assert!(p
            .get("modeled")
            .and_then(|m| m.get("total_seconds"))
            .is_some());
    }
    let count = phases
        .iter()
        .find(|p| p.get("name").and_then(Value::as_str) == Some("kmer-analysis/count"))
        .expect("count phase present");
    assert!(
        !count.get("hot_keys").unwrap().as_arr().unwrap().is_empty(),
        "traced run must surface hot keys"
    );
    // Schema v2: the read-side communication-avoidance counters are
    // reported, and the aligner exercises both batching and caching.
    let align = phases
        .iter()
        .find(|p| p.get("name").and_then(Value::as_str) == Some("scaffold/meraligner-align"))
        .expect("align phase present");
    let totals = align.get("totals").expect("phase totals present");
    assert!(
        totals
            .get("lookup_batches")
            .and_then(Value::as_u64)
            .unwrap()
            > 0,
        "aligner must ship batched lookups"
    );
    assert!(
        totals.get("cache_hits").and_then(Value::as_u64).unwrap() > 0,
        "aligner caches must see hits"
    );
    assert!(totals.get("cache_misses").and_then(Value::as_u64).is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = Command::new(bin()).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let out = Command::new(bin())
        .args(["assemble", "/nonexistent.fastq", "-o", "/tmp/x.fasta"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
