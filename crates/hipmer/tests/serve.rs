//! End-to-end test of `hipmer serve`: boot the real daemon binary, submit
//! a mix of fresh, duplicate, and resumed jobs over HTTP, and check that
//! the served assemblies are byte-identical to the one-shot CLI's output
//! while duplicates come from the result cache.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use hipmer_pgas::json::Value;
use hipmer_serve::http;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hipmer")
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(state_dir: &std::path::Path, pool_ranks: usize, rpn: usize) -> Daemon {
        let mut child = Command::new(bin())
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--state-dir",
                state_dir.to_str().unwrap(),
                "--pool-ranks",
                &pool_ranks.to_string(),
                "--ranks-per-node",
                &rpn.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        // The daemon prints "hipmer serve listening on IP:PORT" once bound.
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("daemon printed its address")
            .expect("readable stdout");
        let addr = line
            .rsplit(' ')
            .next()
            .expect("address on the listening line")
            .to_string();
        Daemon { child, addr }
    }

    fn drain_and_wait(mut self) {
        let _ = http::request(&self.addr, "POST", "/admin/drain", None);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("wait works") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("daemon did not drain in time");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}

fn simulate_reads(path: &std::path::Path, seed: u64) {
    let status = Command::new(bin())
        .args([
            "simulate",
            "human",
            "-o",
            path.to_str().unwrap(),
            "--len",
            "8000",
            "--cov",
            "12",
            "--seed",
            &seed.to_string(),
        ])
        .status()
        .expect("simulate runs");
    assert!(status.success());
}

fn oneshot_assemble(reads: &std::path::Path, out: &std::path::Path, ranks: usize, rpn: usize) {
    let status = Command::new(bin())
        .args([
            "assemble",
            reads.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
            "-k",
            "21",
            "--ranks",
            &ranks.to_string(),
            "--ranks-per-node",
            &rpn.to_string(),
        ])
        .status()
        .expect("assemble runs");
    assert!(status.success());
}

fn submit(addr: &str, input: &std::path::Path, tenant: &str, ranks: usize, rpn: usize) -> u64 {
    let body = format!(
        r#"{{"input": "{}", "tenant": "{tenant}", "k": 21, "ranks": {ranks}, "ranks_per_node": {rpn}}}"#,
        input.to_str().unwrap()
    );
    let (status, reply) = http::request(addr, "POST", "/v1/jobs", Some(body.as_bytes())).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&reply));
    Value::parse(std::str::from_utf8(&reply).unwrap())
        .unwrap()
        .get("id")
        .and_then(Value::as_u64)
        .unwrap()
}

fn wait_completed(addr: &str, id: u64) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, reply) = http::request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(status, 200);
        let doc = Value::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
        match doc.get("status").and_then(Value::as_str) {
            Some("queued") | Some("running") => {
                assert!(
                    Instant::now() < deadline,
                    "job {id} did not finish: {doc:?}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
            Some("completed") => return doc,
            other => panic!("job {id} ended as {other:?}: {doc:?}"),
        }
    }
}

fn fasta_of(addr: &str, id: u64) -> Vec<u8> {
    let (status, bytes) =
        http::request(addr, "GET", &format!("/v1/jobs/{id}/fasta"), None).unwrap();
    assert_eq!(status, 200);
    bytes
}

#[test]
fn served_jobs_match_oneshot_cli_and_duplicates_hit_cache() {
    let dir = std::env::temp_dir().join(format!("hipmer-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let reads_a = dir.join("a.fastq");
    let reads_b = dir.join("b.fastq");
    simulate_reads(&reads_a, 5);
    simulate_reads(&reads_b, 6);

    // Ground truth from the one-shot CLI on the same team shape.
    let ref_a = dir.join("ref_a.fasta");
    let ref_b = dir.join("ref_b.fasta");
    oneshot_assemble(&reads_a, &ref_a, 4, 2);
    oneshot_assemble(&reads_b, &ref_b, 4, 2);

    let daemon = Daemon::start(&dir.join("state"), 8, 4);
    let addr = daemon.addr.clone();

    // Concurrent mix: two distinct fresh jobs from different tenants plus
    // a duplicate of the first submitted while it runs.
    let id_a = submit(&addr, &reads_a, "alice", 4, 2);
    let id_b = submit(&addr, &reads_b, "bob", 4, 2);
    let id_dup = submit(&addr, &reads_a, "carol", 4, 2);

    let done_a = wait_completed(&addr, id_a);
    let done_b = wait_completed(&addr, id_b);
    let done_dup = wait_completed(&addr, id_dup);
    assert_eq!(done_a.get("cache").and_then(Value::as_str), Some("miss"));
    assert_eq!(done_b.get("cache").and_then(Value::as_str), Some("miss"));
    assert_eq!(
        done_dup.get("cache").and_then(Value::as_str),
        Some("hit"),
        "duplicate of a running/finished job must come from the cache"
    );

    // Byte-identical FASTA versus the one-shot CLI.
    let served_a = fasta_of(&addr, id_a);
    let served_b = fasta_of(&addr, id_b);
    let served_dup = fasta_of(&addr, id_dup);
    assert_eq!(served_a, std::fs::read(&ref_a).unwrap());
    assert_eq!(served_b, std::fs::read(&ref_b).unwrap());
    assert_eq!(served_dup, served_a);

    // A cold resubmission after completion is also an instant hit.
    let id_again = submit(&addr, &reads_a, "alice", 4, 2);
    let done_again = wait_completed(&addr, id_again);
    assert_eq!(done_again.get("cache").and_then(Value::as_str), Some("hit"));

    // Stats agree: two real runs, two cache hits.
    let (status, reply) = http::request(&addr, "GET", "/v1/stats", None).unwrap();
    assert_eq!(status, 200);
    let stats = Value::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(4));
    assert_eq!(stats.get("cache_hits").and_then(Value::as_u64), Some(2));

    // The report artifact is the schema-v7 pipeline report.
    let (status, report) =
        http::request(&addr, "GET", &format!("/v1/jobs/{id_a}/report"), None).unwrap();
    assert_eq!(status, 200);
    let report = Value::parse(std::str::from_utf8(&report).unwrap()).unwrap();
    assert_eq!(
        report.get("schema_version").and_then(Value::as_u64),
        Some(7)
    );
    // The per-job trace artifact is valid chrome-trace JSON.
    let (status, trace) =
        http::request(&addr, "GET", &format!("/v1/jobs/{id_a}/trace"), None).unwrap();
    assert_eq!(status, 200);
    assert!(Value::parse(std::str::from_utf8(&trace).unwrap()).is_ok());

    // Prometheus metrics include the per-job scoped counters.
    let (status, metrics) = http::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(metrics).unwrap();
    assert!(
        text.contains("serve_jobs_submitted"),
        "metrics text missing serve counters:\n{text}"
    );

    daemon.drain_and_wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_drains_daemon_cleanly() {
    // Unix-only: uses kill(1) to deliver a real SIGTERM to the daemon.
    if !cfg!(unix) {
        return;
    }
    let dir = std::env::temp_dir().join(format!("hipmer-serve-sig-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let reads = dir.join("r.fastq");
    simulate_reads(&reads, 7);

    let mut daemon = Daemon::start(&dir.join("state"), 4, 2);
    let id = submit(&daemon.addr, &reads, "alice", 4, 2);

    let kill = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match daemon.child.try_wait().expect("wait works") {
            Some(status) => {
                assert!(status.success(), "drained daemon must exit 0, got {status}");
                break;
            }
            None if Instant::now() > deadline => {
                let _ = daemon.child.kill();
                panic!("daemon ignored SIGTERM");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    // The job either completed before the drain or was interrupted with
    // checkpoints on disk; either way the state dir exists and a fresh
    // daemon can serve or resume it.
    let _ = id;
    assert!(dir.join("state").join("cache").is_dir());
    std::fs::remove_dir_all(&dir).ok();
}
