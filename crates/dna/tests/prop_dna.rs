//! Property-based tests for the DNA primitives.

use hipmer_dna::{
    canonical_seq, encode_base, hash::mix128, is_canonical_seq, revcomp, revcomp_in_place,
    ExtVotes, KmerCodec, BASES,
};
use proptest::prelude::*;

/// Strategy: an ACGT sequence of the given length range.
fn dna_seq(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(&BASES[..]), len)
}

/// Strategy: a sequence that may also contain Ns.
fn dna_seq_with_n(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(&b"ACGTN"[..]), len)
}

proptest! {
    #[test]
    fn pack_unpack_roundtrip(k in 1usize..=64, seed in any::<u64>()) {
        // Derive a deterministic sequence of length k from the seed.
        let seq: Vec<u8> = (0..k)
            .map(|i| BASES[((seed >> (2 * (i % 32))) & 3) as usize])
            .collect();
        let c = KmerCodec::new(k);
        let kmer = c.pack(&seq).unwrap();
        prop_assert_eq!(c.unpack(kmer), seq);
    }

    #[test]
    fn packed_revcomp_matches_string_revcomp(seq in dna_seq(1..64)) {
        let c = KmerCodec::new(seq.len());
        let kmer = c.pack(&seq).unwrap();
        prop_assert_eq!(c.unpack(c.revcomp(kmer)), revcomp(&seq));
    }

    #[test]
    fn revcomp_is_involution(seq in dna_seq_with_n(0..200)) {
        prop_assert_eq!(revcomp(&revcomp(&seq)), seq);
    }

    #[test]
    fn revcomp_in_place_matches_functional(seq in dna_seq_with_n(0..200)) {
        let mut v = seq.clone();
        revcomp_in_place(&mut v);
        prop_assert_eq!(v, revcomp(&seq));
    }

    #[test]
    fn canonical_is_idempotent_and_minimal(seq in dna_seq(1..100)) {
        let canon = canonical_seq(seq.clone());
        prop_assert!(canon == seq || canon == revcomp(&seq));
        prop_assert!(canon <= seq);
        prop_assert!(canon <= revcomp(&seq));
        prop_assert_eq!(canonical_seq(canon.clone()), canon.clone());
        prop_assert!(is_canonical_seq(&canon));
    }

    #[test]
    fn canonical_invariant_under_revcomp(seq in dna_seq(1..100)) {
        prop_assert_eq!(canonical_seq(seq.clone()), canonical_seq(revcomp(&seq)));
    }

    #[test]
    fn kmer_iter_yields_every_clean_window(seq in dna_seq_with_n(0..120), k in 1usize..8) {
        let c = KmerCodec::new(k);
        let got: Vec<(usize, hipmer_dna::Kmer)> = c.kmers(&seq).collect();
        // Reference: brute force over windows.
        let mut expect = Vec::new();
        if seq.len() >= k {
            for off in 0..=seq.len() - k {
                if let Some(km) = c.pack(&seq[off..off + k]) {
                    expect.push((off, km));
                }
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn extend_right_equals_repack(seq in dna_seq(2..65)) {
        let k = seq.len() - 1;
        let c = KmerCodec::new(k);
        let first = c.pack(&seq[..k]).unwrap();
        let second = c.pack(&seq[1..]).unwrap();
        let code = encode_base(seq[k]).unwrap();
        prop_assert_eq!(c.extend_right(first, code), second);
        let first_code = encode_base(seq[0]).unwrap();
        prop_assert_eq!(c.extend_left(second, first_code), first);
    }

    #[test]
    fn incremental_canonical_iter_equals_per_position_pack(
        seq in dna_seq_with_n(0..180),
        k in 1usize..=64,
    ) {
        let c = KmerCodec::new(k);
        let got: Vec<(usize, hipmer_dna::Kmer, hipmer_dna::Kmer)> =
            c.canonical_kmers(&seq).collect();
        // Reference: pack every clean window from scratch, canonicalize by
        // computing the full reverse complement.
        let mut expect = Vec::new();
        if seq.len() >= k {
            for off in 0..=seq.len() - k {
                if let Some(km) = c.pack(&seq[off..off + k]) {
                    expect.push((off, km, c.canonical(km)));
                }
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn canonical_kmer_invariant_under_revcomp(seq in dna_seq(1..64)) {
        let c = KmerCodec::new(seq.len());
        let kmer = c.pack(&seq).unwrap();
        prop_assert_eq!(c.canonical(kmer), c.canonical(c.revcomp(kmer)));
    }

    #[test]
    fn ext_votes_merge_is_commutative(
        recs_a in prop::collection::vec((0u8..4, 0u8..4), 0..20),
        recs_b in prop::collection::vec((0u8..4, 0u8..4), 0..20),
    ) {
        let mut a = ExtVotes::new();
        for (l, r) in &recs_a { a.record(Some(*l), Some(*r)); }
        let mut b = ExtVotes::new();
        for (l, r) in &recs_b { b.record(Some(*l), Some(*r)); }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn ext_votes_flip_commutes_with_decide(
        recs in prop::collection::vec((0u8..4, 0u8..4), 0..20),
        min_votes in 1u32..4,
    ) {
        let mut v = ExtVotes::new();
        for (l, r) in &recs { v.record(Some(*l), Some(*r)); }
        // Deciding then flipping must equal flipping then deciding.
        prop_assert_eq!(v.decide(min_votes).flip(), v.flip().decide(min_votes));
    }

    #[test]
    fn mix128_has_no_trivial_collisions(a in any::<u128>(), b in any::<u128>()) {
        if a != b {
            // Not a guarantee for a hash, but for random 128-bit inputs a
            // 64-bit collision in a proptest run would indicate brokenness.
            prop_assert_ne!(mix128(a), mix128(b));
        }
    }
}
