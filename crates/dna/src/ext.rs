//! Meraculous extension codes.
//!
//! During k-mer analysis every occurrence of a k-mer votes for the base that
//! *precedes* it (left extension) and the base that *follows* it (right
//! extension) in the read, provided those bases have sufficient quality.
//! After counting, each side collapses to one of three outcomes:
//!
//! * a unique high-quality base (`A`/`C`/`G`/`T`) — the k-mer can be walked
//!   through in that direction;
//! * a fork `F` — two or more high-quality candidates (repeat boundary or
//!   diploid bubble); contigs terminate here and the state feeds the bubble
//!   finder (§4.2 of the paper);
//! * no extension `X` — no candidate reached the vote threshold.
//!
//! A k-mer whose both sides are unique bases is a **UU k-mer**; only UU
//! k-mers become de Bruijn graph vertices (§2 of the paper).

use crate::base::decode_base;

/// Outcome of extension voting on one side of a k-mer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExtChoice {
    /// Unique high-quality extension with the given 2-bit base code.
    Unique(u8),
    /// Two or more high-quality candidate bases ("F" in Meraculous).
    Fork,
    /// No candidate reached the vote threshold ("X" in Meraculous).
    None,
}

impl ExtChoice {
    /// The Meraculous single-letter code for this outcome.
    pub fn code(self) -> u8 {
        match self {
            ExtChoice::Unique(c) => decode_base(c),
            ExtChoice::Fork => b'F',
            ExtChoice::None => b'X',
        }
    }

    /// Whether this side permits a unique walk.
    #[inline]
    pub fn is_unique(self) -> bool {
        matches!(self, ExtChoice::Unique(_))
    }

    /// The unique base code, if any.
    #[inline]
    pub fn unique_base(self) -> Option<u8> {
        match self {
            ExtChoice::Unique(c) => Some(c),
            _ => None,
        }
    }
}

/// The pair of per-side outcomes for a k-mer, in forward orientation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtensionPair {
    /// Extension to the left (preceding base).
    pub left: ExtChoice,
    /// Extension to the right (following base).
    pub right: ExtChoice,
}

impl ExtensionPair {
    /// Whether the k-mer is UU: unique high-quality extension on both sides.
    #[inline]
    pub fn is_uu(&self) -> bool {
        self.left.is_unique() && self.right.is_unique()
    }

    /// The two-letter Meraculous code, e.g. `AG`, `FX`.
    pub fn code(&self) -> [u8; 2] {
        [self.left.code(), self.right.code()]
    }

    /// The pair as seen from the reverse-complement orientation: sides swap
    /// and unique bases complement.
    pub fn flip(&self) -> ExtensionPair {
        let comp = |c: ExtChoice| match c {
            ExtChoice::Unique(b) => ExtChoice::Unique(3 - b),
            other => other,
        };
        ExtensionPair {
            left: comp(self.right),
            right: comp(self.left),
        }
    }
}

/// Per-side extension vote counters for one k-mer.
///
/// `left[c]` / `right[c]` count high-quality occurrences of base code `c`
/// immediately before / after the k-mer. Counts saturate instead of
/// wrapping: ultra-deep repeats (the paper's wheat k-mers occur >10⁷ times)
/// must not overflow the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtVotes {
    /// Votes for each left-extension base code.
    pub left: [u32; 4],
    /// Votes for each right-extension base code.
    pub right: [u32; 4],
    /// Total occurrences of the k-mer (its depth / count).
    pub count: u32,
}

impl ExtVotes {
    /// Packed wire bytes of one tally: nine `u32` counters, no padding —
    /// what a real sender serializes (the in-memory size of a *tuple*
    /// containing an `ExtVotes` can be larger once alignment padding to a
    /// neighboring field is counted).
    pub const WIRE_BYTES: u64 = 9 * 4;

    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one occurrence with optional high-quality left/right bases.
    #[inline]
    pub fn record(&mut self, left: Option<u8>, right: Option<u8>) {
        self.count = self.count.saturating_add(1);
        if let Some(c) = left {
            debug_assert!(c < 4);
            self.left[c as usize] = self.left[c as usize].saturating_add(1);
        }
        if let Some(c) = right {
            debug_assert!(c < 4);
            self.right[c as usize] = self.right[c as usize].saturating_add(1);
        }
    }

    /// Merge another tally into this one (used by the heavy-hitter global
    /// reduction and by partial-count combining).
    pub fn merge(&mut self, other: &ExtVotes) {
        for i in 0..4 {
            self.left[i] = self.left[i].saturating_add(other.left[i]);
            self.right[i] = self.right[i].saturating_add(other.right[i]);
        }
        self.count = self.count.saturating_add(other.count);
    }

    /// The tally as seen from the reverse-complement orientation.
    pub fn flip(&self) -> ExtVotes {
        let mut out = ExtVotes {
            count: self.count,
            ..ExtVotes::default()
        };
        for c in 0..4 {
            // A left-extension base b in forward orientation is a
            // right-extension of complement(b) in RC orientation.
            out.right[3 - c] = self.left[c];
            out.left[3 - c] = self.right[c];
        }
        out
    }

    /// Collapse one side's votes given the minimum vote count for a base to
    /// be considered a high-quality candidate.
    fn decide_side(votes: &[u32; 4], min_votes: u32) -> ExtChoice {
        let mut candidates = 0;
        let mut winner = 0u8;
        for (c, &v) in votes.iter().enumerate() {
            if v >= min_votes {
                candidates += 1;
                winner = c as u8;
            }
        }
        match candidates {
            0 => ExtChoice::None,
            1 => ExtChoice::Unique(winner),
            _ => ExtChoice::Fork,
        }
    }

    /// Collapse both sides into an [`ExtensionPair`].
    pub fn decide(&self, min_votes: u32) -> ExtensionPair {
        ExtensionPair {
            left: Self::decide_side(&self.left, min_votes),
            right: Self::decide_side(&self.right, min_votes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut v = ExtVotes::new();
        v.record(Some(0), Some(3));
        v.record(Some(0), None);
        v.record(None, Some(3));
        assert_eq!(v.count, 3);
        assert_eq!(v.left[0], 2);
        assert_eq!(v.right[3], 2);
    }

    #[test]
    fn decide_unique_both_sides() {
        let mut v = ExtVotes::new();
        for _ in 0..3 {
            v.record(Some(1), Some(2));
        }
        let pair = v.decide(2);
        assert_eq!(pair.left, ExtChoice::Unique(1));
        assert_eq!(pair.right, ExtChoice::Unique(2));
        assert!(pair.is_uu());
        assert_eq!(&pair.code(), b"CG");
    }

    #[test]
    fn decide_fork_when_two_candidates() {
        let mut v = ExtVotes::new();
        for _ in 0..2 {
            v.record(Some(0), Some(2));
            v.record(Some(3), Some(2));
        }
        let pair = v.decide(2);
        assert_eq!(pair.left, ExtChoice::Fork);
        assert_eq!(pair.right, ExtChoice::Unique(2));
        assert!(!pair.is_uu());
        assert_eq!(&pair.code(), b"FG");
    }

    #[test]
    fn decide_none_below_threshold() {
        let mut v = ExtVotes::new();
        v.record(Some(0), None);
        let pair = v.decide(2);
        assert_eq!(pair.left, ExtChoice::None);
        assert_eq!(pair.right, ExtChoice::None);
        assert_eq!(&pair.code(), b"XX");
    }

    #[test]
    fn merge_adds_votes() {
        let mut a = ExtVotes::new();
        a.record(Some(0), Some(1));
        let mut b = ExtVotes::new();
        b.record(Some(0), Some(2));
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.left[0], 2);
        assert_eq!(a.right[1], 1);
        assert_eq!(a.right[2], 1);
    }

    #[test]
    fn merge_saturates() {
        let mut a = ExtVotes {
            left: [u32::MAX, 0, 0, 0],
            right: [0; 4],
            count: u32::MAX,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.count, u32::MAX);
        assert_eq!(a.left[0], u32::MAX);
    }

    #[test]
    fn flip_votes_swaps_and_complements() {
        let mut v = ExtVotes::new();
        v.record(Some(0), Some(1)); // left A, right C
        let f = v.flip();
        assert_eq!(f.right[3], 1); // left A -> right T
        assert_eq!(f.left[2], 1); // right C -> left G
        assert_eq!(f.flip(), v, "flip is an involution");
    }

    #[test]
    fn flip_pair_swaps_and_complements() {
        let pair = ExtensionPair {
            left: ExtChoice::Unique(0),
            right: ExtChoice::Fork,
        };
        let f = pair.flip();
        assert_eq!(f.left, ExtChoice::Fork);
        assert_eq!(f.right, ExtChoice::Unique(3));
        assert_eq!(f.flip(), pair);
    }

    #[test]
    fn ext_choice_codes() {
        assert_eq!(ExtChoice::Unique(2).code(), b'G');
        assert_eq!(ExtChoice::Fork.code(), b'F');
        assert_eq!(ExtChoice::None.code(), b'X');
        assert_eq!(ExtChoice::Unique(1).unique_base(), Some(1));
        assert_eq!(ExtChoice::Fork.unique_base(), None);
    }
}
