//! Single-nucleotide encoding.
//!
//! Bases are encoded in two bits: `A = 0, C = 1, G = 2, T = 3`. The
//! complement of a 2-bit code is its bitwise negation (`3 - code`), a
//! property [`crate::kmer::KmerCodec::revcomp`] exploits to complement a
//! whole packed k-mer with one XOR.

/// The four nucleotides in 2-bit code order.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// 256-entry encode table: 0-3 for `ACGTacgt`, `INVALID_CODE` otherwise.
const ENCODE_LUT: [u8; 256] = {
    let mut t = [INVALID_CODE; 256];
    t[b'A' as usize] = 0;
    t[b'a' as usize] = 0;
    t[b'C' as usize] = 1;
    t[b'c' as usize] = 1;
    t[b'G' as usize] = 2;
    t[b'g' as usize] = 2;
    t[b'T' as usize] = 3;
    t[b't' as usize] = 3;
    t
};

const INVALID_CODE: u8 = u8::MAX;

/// Encode an ASCII nucleotide into its 2-bit code.
///
/// Accepts upper- and lower-case `ACGT`. Returns `None` for any other byte
/// (including `N`), which callers treat as a k-mer window breaker.
#[inline]
pub fn encode_base(b: u8) -> Option<u8> {
    let code = ENCODE_LUT[b as usize];
    if code == INVALID_CODE {
        None
    } else {
        Some(code)
    }
}

/// Decode a 2-bit code back to its upper-case ASCII nucleotide.
///
/// # Panics
/// Panics if `code > 3`.
#[inline]
pub fn decode_base(code: u8) -> u8 {
    BASES[code as usize]
}

/// Complement a 2-bit base code (`A↔T`, `C↔G`).
#[inline]
pub fn complement_code(code: u8) -> u8 {
    3 - code
}

/// Complement an ASCII nucleotide, preserving case for `ACGT` and mapping
/// everything else (ambiguity codes, `N`) to `N`.
#[inline]
pub fn complement_ascii(b: u8) -> u8 {
    match b {
        b'A' => b'T',
        b'C' => b'G',
        b'G' => b'C',
        b'T' => b'A',
        b'a' => b't',
        b'c' => b'g',
        b'g' => b'c',
        b't' => b'a',
        _ => b'N',
    }
}

/// Whether a byte is an unambiguous upper- or lower-case nucleotide.
#[inline]
pub fn is_acgt(b: u8) -> bool {
    encode_base(b).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_encode_decode() {
        for (code, &ascii) in BASES.iter().enumerate() {
            assert_eq!(encode_base(ascii), Some(code as u8));
            assert_eq!(decode_base(code as u8), ascii);
        }
    }

    #[test]
    fn lower_case_encodes() {
        assert_eq!(encode_base(b'a'), Some(0));
        assert_eq!(encode_base(b'c'), Some(1));
        assert_eq!(encode_base(b'g'), Some(2));
        assert_eq!(encode_base(b't'), Some(3));
    }

    #[test]
    fn n_and_garbage_reject() {
        for b in [b'N', b'n', b'X', b'-', b' ', 0u8, 255u8] {
            assert_eq!(encode_base(b), None);
            assert!(!is_acgt(b));
        }
    }

    #[test]
    fn complement_code_is_involution() {
        for code in 0..4u8 {
            assert_eq!(complement_code(complement_code(code)), code);
        }
    }

    #[test]
    fn complement_matches_ascii_complement() {
        for code in 0..4u8 {
            let ascii = decode_base(code);
            assert_eq!(complement_ascii(ascii), decode_base(complement_code(code)));
        }
    }

    #[test]
    fn complement_ascii_preserves_case_and_maps_unknown_to_n() {
        assert_eq!(complement_ascii(b'a'), b't');
        assert_eq!(complement_ascii(b'G'), b'C');
        assert_eq!(complement_ascii(b'N'), b'N');
        assert_eq!(complement_ascii(b'?'), b'N');
    }
}
