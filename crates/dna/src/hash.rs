//! Fast non-cryptographic hashing for k-mer keyed tables.
//!
//! The distributed hash tables at the heart of the pipeline perform billions
//! of lookups; SipHash (std's default) would dominate the profile. We use a
//! Murmur3-style 64-bit finalizer over the packed k-mer words, which is
//! cheap, well mixed in the low bits (they select both the owner rank and
//! the bucket), and — critically for the oracle partitioning experiments —
//! deterministic across runs and ranks.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Murmur3's 64-bit finalizer: full-avalanche mixing of a single word.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Mix a `u128` (packed k-mer) into a well-distributed `u64`.
#[inline]
pub fn mix128(x: u128) -> u64 {
    let lo = x as u64;
    let hi = (x >> 64) as u64;
    mix64(lo ^ mix64(hi ^ 0x9e37_79b9_7f4a_7c15))
}

/// A `Hasher` that applies [`mix64`]/[`mix128`] to integer writes.
///
/// Only the integer `write_*` methods used by `Kmer`, `u64`, `u32`, and
/// tuple keys are meaningfully mixed; arbitrary byte streams fall back to an
/// FNV-style fold (correct, just slower — not used on hot paths).
#[derive(Default, Clone)]
pub struct KmerHasher {
    state: u64,
}

impl Hasher for KmerHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fold for the generic path.
        let mut h = self.state ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.state = mix64(h);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.state = mix64(self.state ^ i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.state = mix64(self.state ^ i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state ^ i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.state = mix128(i ^ self.state as u128);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`KmerHasher`].
pub type KmerBuildHasher = BuildHasherDefault<KmerHasher>;

/// A `HashMap` keyed with the fast k-mer hasher.
pub type KmerHashMap<K, V> = HashMap<K, V, KmerBuildHasher>;

/// A `HashSet` keyed with the fast k-mer hasher.
pub type KmerHashSet<K> = HashSet<K, KmerBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::{Kmer, KmerCodec};

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(7), mix64(7));
        // Zero is the finalizer's only fixed point; everything else moves.
        assert_eq!(mix64(0), 0);
        assert_ne!(mix64(1), 1);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn mix128_differs_between_halves() {
        // Same low word, different high word must hash differently.
        assert_ne!(mix128(42), mix128(42 | (1u128 << 64)));
    }

    #[test]
    fn hashmap_with_kmer_keys() {
        let c = KmerCodec::new(21);
        let mut map: KmerHashMap<Kmer, u32> = KmerHashMap::default();
        let a = c.pack(&b"ACGTACGTACGTACGTACGTA"[..]).unwrap();
        let b = c.pack(&b"TTGTACGTACGTACGTACGTA"[..]).unwrap();
        map.insert(a, 1);
        map.insert(b, 2);
        assert_eq!(map[&a], 1);
        assert_eq!(map[&b], 2);
    }

    #[test]
    fn low_bits_are_well_distributed() {
        // Sequential k-mers must spread over buckets: count collisions of the
        // low 10 bits across 4096 consecutive values.
        let mut buckets = vec![0u32; 1024];
        for i in 0..4096u128 {
            buckets[(mix128(i) & 1023) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        // Uniform expectation is 4 per bucket; allow generous slack.
        assert!(max < 20, "low-bit clustering: max bucket {max}");
    }

    #[test]
    fn hashset_dedups() {
        let mut set: KmerHashSet<Kmer> = KmerHashSet::default();
        assert!(set.insert(Kmer(7)));
        assert!(!set.insert(Kmer(7)));
    }

    #[test]
    fn byte_stream_path_works() {
        let mut h1 = KmerHasher::default();
        h1.write(b"hello");
        let mut h2 = KmerHasher::default();
        h2.write(b"hellp");
        assert_ne!(h1.finish(), h2.finish());
    }
}
