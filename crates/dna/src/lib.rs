//! DNA primitives for the HipMer reproduction.
//!
//! This crate provides the base-level machinery every pipeline stage builds
//! on: 2-bit packed k-mers (k ≤ 64), canonicalization and reverse
//! complement, the Meraculous extension code (`[ACGT]`, fork `F`, terminal
//! `X`), a fast non-cryptographic hasher for k-mer keyed tables, and ASCII
//! DNA sequence utilities.
//!
//! K-mers are stored as a bare `u128` ([`Kmer`]); the k-mer length lives in a
//! [`KmerCodec`] shared by a whole table rather than being duplicated in
//! every key, which halves the memory footprint of the distributed hash
//! tables that dominate the assembler (the paper stores the human genome's
//! ~3·10⁹-vertex de Bruijn graph this way).

pub mod base;
pub mod ext;
pub mod hash;
pub mod kmer;
pub mod seq;

pub use base::{complement_ascii, complement_code, decode_base, encode_base, is_acgt, BASES};
pub use ext::{ExtChoice, ExtVotes, ExtensionPair};
pub use hash::{mix128, mix64, KmerBuildHasher, KmerHashMap, KmerHashSet};
pub use kmer::{
    CanonicalKmerIter, Kmer, KmerCodec, KmerIter, KmerLenError, MinimizerKmerIter, MAX_K,
};
pub use seq::{
    canonical_seq, gc_content, hamming, is_canonical_seq, revcomp, revcomp_in_place, validate_dna,
};
