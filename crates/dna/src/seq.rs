//! ASCII DNA sequence utilities.
//!
//! Contigs, scaffolds, and reads are plain `Vec<u8>`/`&[u8]` of upper-case
//! `ACGTN`. These helpers implement reverse complement and the canonical
//! orientation rule the traversal uses to make contig output
//! schedule-independent: every contig is emitted as the lexicographic
//! minimum of itself and its reverse complement.

use crate::base::complement_ascii;

/// Reverse-complement a sequence into a new vector.
pub fn revcomp(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&b| complement_ascii(b)).collect()
}

/// Reverse-complement a sequence in place.
pub fn revcomp_in_place(seq: &mut [u8]) {
    let n = seq.len();
    for i in 0..n / 2 {
        let (a, b) = (seq[i], seq[n - 1 - i]);
        seq[i] = complement_ascii(b);
        seq[n - 1 - i] = complement_ascii(a);
    }
    if n % 2 == 1 {
        let mid = n / 2;
        seq[mid] = complement_ascii(seq[mid]);
    }
}

/// Return the canonical orientation: the lexicographically smaller of the
/// sequence and its reverse complement. Returns the input unchanged when it
/// is already canonical (ties go to the forward orientation).
pub fn canonical_seq(seq: Vec<u8>) -> Vec<u8> {
    let rc = revcomp(&seq);
    if rc < seq {
        rc
    } else {
        seq
    }
}

/// Whether the sequence is already in canonical orientation.
pub fn is_canonical_seq(seq: &[u8]) -> bool {
    let n = seq.len();
    for i in 0..n {
        let rc_i = complement_ascii(seq[n - 1 - i]);
        match seq[i].cmp(&rc_i) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    true // palindrome
}

/// Validate that a sequence contains only `ACGTN` (upper- or lower-case).
/// Returns the index of the first offending byte, if any.
pub fn validate_dna(seq: &[u8]) -> Result<(), usize> {
    for (i, &b) in seq.iter().enumerate() {
        match b {
            b'A' | b'C' | b'G' | b'T' | b'N' | b'a' | b'c' | b'g' | b't' | b'n' => {}
            _ => return Err(i),
        }
    }
    Ok(())
}

/// Fraction of G/C bases among unambiguous bases; `None` if there are none.
pub fn gc_content(seq: &[u8]) -> Option<f64> {
    let mut gc = 0usize;
    let mut total = 0usize;
    for &b in seq {
        match b {
            b'G' | b'C' | b'g' | b'c' => {
                gc += 1;
                total += 1;
            }
            b'A' | b'T' | b'a' | b't' => total += 1,
            _ => {}
        }
    }
    if total == 0 {
        None
    } else {
        Some(gc as f64 / total as f64)
    }
}

/// Hamming distance between equal-length sequences.
///
/// # Panics
/// Panics if lengths differ.
pub fn hamming(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming requires equal lengths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revcomp_simple() {
        assert_eq!(revcomp(b"ACGT"), b"ACGT");
        assert_eq!(revcomp(b"AACG"), b"CGTT");
        assert_eq!(revcomp(b"A"), b"T");
        assert_eq!(revcomp(b""), b"");
    }

    #[test]
    fn revcomp_handles_n() {
        assert_eq!(revcomp(b"ANG"), b"CNT");
    }

    #[test]
    fn revcomp_in_place_matches_copy() {
        for s in [&b"ACGTT"[..], b"GG", b"T", b"", b"ACNNT"] {
            let mut v = s.to_vec();
            revcomp_in_place(&mut v);
            assert_eq!(v, revcomp(s), "input {:?}", std::str::from_utf8(s));
        }
    }

    #[test]
    fn canonical_picks_smaller() {
        assert_eq!(canonical_seq(b"TTT".to_vec()), b"AAA".to_vec());
        assert_eq!(canonical_seq(b"AAA".to_vec()), b"AAA".to_vec());
        // Palindrome maps to itself.
        assert_eq!(canonical_seq(b"ACGT".to_vec()), b"ACGT".to_vec());
    }

    #[test]
    fn is_canonical_agrees_with_canonical_seq() {
        for s in [&b"ACGTT"[..], b"TTTTT", b"GATC", b"ACGT", b"CCC"] {
            let canon = canonical_seq(s.to_vec());
            assert_eq!(
                is_canonical_seq(s),
                canon == s,
                "{:?}",
                std::str::from_utf8(s)
            );
        }
    }

    #[test]
    fn validate_accepts_acgtn() {
        assert_eq!(validate_dna(b"ACGTNacgtn"), Ok(()));
        assert_eq!(validate_dna(b"ACG-T"), Err(3));
        assert_eq!(validate_dna(b""), Ok(()));
    }

    #[test]
    fn gc_content_counts() {
        assert_eq!(gc_content(b"GGCC"), Some(1.0));
        assert_eq!(gc_content(b"AATT"), Some(0.0));
        assert_eq!(gc_content(b"ACGT"), Some(0.5));
        assert_eq!(gc_content(b"NNN"), None);
        // N excluded from denominator.
        assert_eq!(gc_content(b"GNA"), Some(0.5));
    }

    #[test]
    fn hamming_counts_mismatches() {
        assert_eq!(hamming(b"ACGT", b"ACGT"), 0);
        assert_eq!(hamming(b"ACGT", b"ACGA"), 1);
        assert_eq!(hamming(b"AAAA", b"TTTT"), 4);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_panics_on_length_mismatch() {
        hamming(b"AC", b"ACG");
    }
}
