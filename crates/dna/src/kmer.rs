//! 2-bit packed k-mers and the codec that operates on them.
//!
//! A [`Kmer`] is a bare `u128` holding up to 64 bases, two bits per base,
//! with the *first* (5'-most) base in the most significant occupied bits and
//! the *last* base in the two least significant bits. All length-dependent
//! operations live on [`KmerCodec`], which carries `k` once per table
//! instead of once per key.
//!
//! The de Bruijn graph in the paper is keyed by *canonical* k-mers: a k-mer
//! and its reverse complement denote the same node, and the lexicographically
//! (numerically, in 2-bit space) smaller of the two is the table key.

use crate::base::{decode_base, encode_base};

/// The largest supported k (two bits per base in a `u128`).
pub const MAX_K: usize = 64;

/// A k-mer length outside the supported `1..=MAX_K` range.
///
/// Returned by [`KmerCodec::try_new`] so front ends (the CLI's `-k` flag)
/// can report bad configuration instead of panicking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KmerLenError {
    /// The rejected length.
    pub k: usize,
}

impl std::fmt::Display for KmerLenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k must be in 1..={MAX_K}, got {}", self.k)
    }
}

impl std::error::Error for KmerLenError {}

/// A 2-bit packed k-mer of externally-known length.
///
/// Equality/ordering are bitwise, which coincides with lexicographic order
/// over the bases for k-mers of equal length.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Kmer(pub u128);

impl Kmer {
    /// The raw packed bits.
    #[inline]
    pub fn bits(self) -> u128 {
        self.0
    }
}

impl std::fmt::Debug for Kmer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kmer({:#034x})", self.0)
    }
}

/// Reverse the order of all 64 2-bit groups in a `u128`.
#[inline]
fn reverse_2bit_groups(mut x: u128) -> u128 {
    const M2: u128 = 0x3333_3333_3333_3333_3333_3333_3333_3333;
    const M4: u128 = 0x0f0f_0f0f_0f0f_0f0f_0f0f_0f0f_0f0f_0f0f;
    x = ((x & M2) << 2) | ((x >> 2) & M2);
    x = ((x & M4) << 4) | ((x >> 4) & M4);
    x.swap_bytes()
}

/// Length-aware operations over [`Kmer`]s.
///
/// One codec is shared by every k-mer of a given pipeline run; the assembler
/// constructs it once from the configured k.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KmerCodec {
    k: usize,
    /// Mask with the low `2k` bits set.
    mask: u128,
}

impl KmerCodec {
    /// Create a codec for k-mers of length `k`, rejecting out-of-range
    /// lengths with a typed error.
    ///
    /// `k == 0` would make every shift amount degenerate and `k > MAX_K`
    /// would overflow the `u128` (at `k == MAX_K` exactly, the mask and the
    /// `revcomp`/`extend_left` shift amounts are at their limits — covered
    /// by boundary tests at k = 63 and 64).
    pub fn try_new(k: usize) -> Result<Self, KmerLenError> {
        if !(1..=MAX_K).contains(&k) {
            return Err(KmerLenError { k });
        }
        // `1u128 << (2 * k)` overflows at k == MAX_K; special-case it.
        let mask = if k == MAX_K {
            u128::MAX
        } else {
            (1u128 << (2 * k)) - 1
        };
        Ok(KmerCodec { k, mask })
    }

    /// Create a codec for k-mers of length `k`.
    ///
    /// # Panics
    /// Panics unless `1 <= k <= MAX_K`; use [`KmerCodec::try_new`] where
    /// the length comes from user input.
    pub fn new(k: usize) -> Self {
        match Self::try_new(k) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// The k-mer length this codec operates on.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Packed wire bytes of one k-mer at this k: `ceil(2k / 8)` — what a
    /// real sender serializes, as opposed to `size_of::<Kmer>()` (a full
    /// 16-byte `u128` regardless of k). Used to price aggregated k-mer
    /// messages without billing the in-memory padding.
    #[inline]
    pub fn wire_bytes(&self) -> u64 {
        (2 * self.k as u64).div_ceil(8)
    }

    /// Pack an ASCII slice of exactly `k` unambiguous bases.
    ///
    /// Returns `None` if the slice has the wrong length or contains a
    /// non-ACGT byte.
    pub fn pack(&self, seq: &[u8]) -> Option<Kmer> {
        if seq.len() != self.k {
            return None;
        }
        let mut bits = 0u128;
        for &b in seq {
            bits = (bits << 2) | encode_base(b)? as u128;
        }
        Some(Kmer(bits))
    }

    /// Unpack into an ASCII `ACGT` string.
    pub fn unpack(&self, kmer: Kmer) -> Vec<u8> {
        let mut out = vec![0u8; self.k];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = decode_base(self.base_at(kmer, i));
        }
        out
    }

    /// Unpack into an owned `String` (convenience for diagnostics).
    pub fn to_string(&self, kmer: Kmer) -> String {
        String::from_utf8(self.unpack(kmer)).expect("decoded bases are ASCII")
    }

    /// The 2-bit code of the base at position `i` (0 = 5'-most).
    #[inline]
    pub fn base_at(&self, kmer: Kmer, i: usize) -> u8 {
        debug_assert!(i < self.k);
        ((kmer.0 >> (2 * (self.k - 1 - i))) & 0b11) as u8
    }

    /// The 2-bit code of the first (5'-most) base.
    #[inline]
    pub fn first_base(&self, kmer: Kmer) -> u8 {
        self.base_at(kmer, 0)
    }

    /// The 2-bit code of the last (3'-most) base.
    #[inline]
    pub fn last_base(&self, kmer: Kmer) -> u8 {
        (kmer.0 & 0b11) as u8
    }

    /// Reverse complement.
    #[inline]
    pub fn revcomp(&self, kmer: Kmer) -> Kmer {
        // Complement every base (XOR with all-ones over 2k bits), reverse
        // the 64 2-bit groups, then shift the occupied groups down.
        let comp = kmer.0 ^ self.mask;
        Kmer(reverse_2bit_groups(comp) >> (128 - 2 * self.k))
    }

    /// The canonical representative: `min(kmer, revcomp(kmer))`.
    #[inline]
    pub fn canonical(&self, kmer: Kmer) -> Kmer {
        let rc = self.revcomp(kmer);
        if rc.0 < kmer.0 {
            rc
        } else {
            kmer
        }
    }

    /// Whether `kmer` is its own canonical representative.
    #[inline]
    pub fn is_canonical(&self, kmer: Kmer) -> bool {
        kmer.0 <= self.revcomp(kmer).0
    }

    /// Whether `kmer` is its own reverse complement (only possible for even k).
    #[inline]
    pub fn is_palindrome(&self, kmer: Kmer) -> bool {
        self.revcomp(kmer) == kmer
    }

    /// Slide one base to the right: drop the first base, append `code`.
    #[inline]
    pub fn extend_right(&self, kmer: Kmer, code: u8) -> Kmer {
        debug_assert!(code < 4);
        Kmer(((kmer.0 << 2) | code as u128) & self.mask)
    }

    /// Slide one base to the left: drop the last base, prepend `code`.
    #[inline]
    pub fn extend_left(&self, kmer: Kmer, code: u8) -> Kmer {
        debug_assert!(code < 4);
        Kmer((kmer.0 >> 2) | ((code as u128) << (2 * (self.k - 1))))
    }

    /// The largest minimizer length supported by [`minimizer_hash`]
    /// (an m-mer's 2-bit code must fit the 64-bit mixer input).
    ///
    /// [`minimizer_hash`]: KmerCodec::minimizer_hash
    pub const MAX_MINIMIZER_LEN: usize = 32;

    /// The **minimizer hash** of a k-mer: the minimum, over its `k - m + 1`
    /// length-`m` windows, of `mix64` applied to the *canonical* m-mer's
    /// 2-bit code. This is the bucketing key of minimizer-based k-mer
    /// placement: two k-mers that overlap in `m` or more bases share
    /// windows, so adjacent k-mers of one read usually share a minimizer —
    /// and therefore an owner rank — collapsing the cross-rank traffic of
    /// sliding-window table access patterns.
    ///
    /// Because each window is canonicalized before hashing, the result is
    /// **strand-invariant**: `minimizer_hash(km) ==
    /// minimizer_hash(revcomp(km))` (a k-mer and its reverse complement see
    /// the same multiset of canonical m-mers, in reverse window order).
    /// With `m == k` (a single window) this degenerates to
    /// `mix64(canonical(km))`.
    ///
    /// # Panics
    /// Panics unless `1 <= m <= min(k, MAX_MINIMIZER_LEN)` — ownership
    /// decisions ride on this value, so the range is enforced in release
    /// builds too.
    pub fn minimizer_hash(&self, kmer: Kmer, m: usize) -> u64 {
        assert!(
            m >= 1 && m <= self.k && m <= Self::MAX_MINIMIZER_LEN,
            "minimizer length m={m} outside 1..=min(k={}, {})",
            self.k,
            Self::MAX_MINIMIZER_LEN
        );
        let mcodec = KmerCodec::new(m);
        let mut best = u64::MAX;
        for i in 0..=(self.k - m) {
            let bits = (kmer.0 >> (2 * (self.k - m - i))) & mcodec.mask;
            let canon = mcodec.canonical(Kmer(bits));
            best = best.min(crate::hash::mix64(canon.0 as u64));
        }
        best
    }

    /// Iterate over all k-mers of `seq` (ASCII), skipping windows that
    /// contain a non-ACGT byte. Yields `(offset, kmer)` pairs.
    pub fn kmers<'a>(&self, seq: &'a [u8]) -> KmerIter<'a> {
        KmerIter {
            codec: *self,
            seq,
            pos: 0,
            valid: 0,
            bits: 0,
        }
    }

    /// Iterate over all k-mers of `seq` with their canonical forms, each
    /// position in O(1): both the forward window and its reverse complement
    /// roll incrementally (one shift-in at the high end of the RC window per
    /// base), so no per-position `revcomp` bit-reversal is paid. Yields
    /// `(offset, kmer, canonical)` triples identical to
    /// `kmers(seq).map(|(o, km)| (o, km, codec.canonical(km)))`.
    pub fn canonical_kmers<'a>(&self, seq: &'a [u8]) -> CanonicalKmerIter<'a> {
        CanonicalKmerIter {
            codec: *self,
            seq,
            pos: 0,
            valid: 0,
            bits: 0,
            rc_bits: 0,
        }
    }

    /// Iterate over all k-mers of `seq` together with their canonical forms
    /// **and** their [`minimizer_hash`](Self::minimizer_hash), each position
    /// amortized O(1): the m-mer window rolls like the k-mer window, and a
    /// monotone deque maintains the sliding-window minimum over the m-mer
    /// hashes, so no per-position rescan of the `k - m + 1` windows is paid.
    /// Yields `(offset, kmer, canonical, minimizer_hash)` quadruples
    /// identical to `canonical_kmers(seq)` zipped with per-k-mer
    /// `minimizer_hash` calls.
    ///
    /// # Panics
    /// Panics unless `1 <= m <= min(k, MAX_MINIMIZER_LEN)`.
    pub fn minimizer_kmers<'a>(&self, seq: &'a [u8], m: usize) -> MinimizerKmerIter<'a> {
        assert!(
            m >= 1 && m <= self.k && m <= Self::MAX_MINIMIZER_LEN,
            "minimizer length m={m} outside 1..=min(k={}, {})",
            self.k,
            Self::MAX_MINIMIZER_LEN
        );
        MinimizerKmerIter {
            codec: *self,
            mcodec: KmerCodec::new(m),
            seq,
            pos: 0,
            valid: 0,
            bits: 0,
            rc_bits: 0,
            mbits: 0,
            m_rc_bits: 0,
            window: std::collections::VecDeque::new(),
        }
    }
}

/// Rolling iterator over the k-mers of an ASCII sequence.
///
/// Maintains a 2-bit window and a count of consecutive valid bases, so a
/// single `N` only invalidates the windows that overlap it.
pub struct KmerIter<'a> {
    codec: KmerCodec,
    seq: &'a [u8],
    pos: usize,
    /// How many consecutive valid bases end at `pos` (capped at k).
    valid: usize,
    bits: u128,
}

impl<'a> Iterator for KmerIter<'a> {
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<(usize, Kmer)> {
        let k = self.codec.k;
        while self.pos < self.seq.len() {
            let b = self.seq[self.pos];
            self.pos += 1;
            match encode_base(b) {
                Some(code) => {
                    self.bits = ((self.bits << 2) | code as u128) & self.codec.mask;
                    self.valid = (self.valid + 1).min(k);
                    if self.valid == k {
                        return Some((self.pos - k, Kmer(self.bits)));
                    }
                }
                None => {
                    self.valid = 0;
                    self.bits = 0;
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.seq.len().saturating_sub(self.pos)))
    }
}

/// Rolling iterator over the k-mers of an ASCII sequence together with
/// their canonical representatives.
///
/// Like [`KmerIter`], but additionally maintains the reverse-complement
/// window incrementally: appending base `c` to the forward window
/// corresponds to shifting `complement(c)` into the *high* end of the RC
/// window, so canonicalization costs a comparison instead of a full
/// bit-reversal per position.
pub struct CanonicalKmerIter<'a> {
    codec: KmerCodec,
    seq: &'a [u8],
    pos: usize,
    /// How many consecutive valid bases end at `pos` (capped at k).
    valid: usize,
    /// Forward 2-bit window (low `2k` bits).
    bits: u128,
    /// Reverse-complement 2-bit window (low `2k` bits).
    rc_bits: u128,
}

impl<'a> Iterator for CanonicalKmerIter<'a> {
    type Item = (usize, Kmer, Kmer);

    fn next(&mut self) -> Option<(usize, Kmer, Kmer)> {
        let k = self.codec.k;
        let rc_shift = 2 * (k - 1) as u32;
        while self.pos < self.seq.len() {
            let b = self.seq[self.pos];
            self.pos += 1;
            match encode_base(b) {
                Some(code) => {
                    self.bits = ((self.bits << 2) | code as u128) & self.codec.mask;
                    // The dropped base's complement falls off the low end;
                    // the new base's complement (3 - code) enters at the top.
                    self.rc_bits = (self.rc_bits >> 2) | (((3 - code) as u128) << rc_shift);
                    self.valid = (self.valid + 1).min(k);
                    if self.valid == k {
                        let fwd = Kmer(self.bits);
                        let canon = if self.rc_bits < self.bits {
                            Kmer(self.rc_bits)
                        } else {
                            fwd
                        };
                        return Some((self.pos - k, fwd, canon));
                    }
                }
                None => {
                    self.valid = 0;
                    self.bits = 0;
                    self.rc_bits = 0;
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.seq.len().saturating_sub(self.pos)))
    }
}

/// Rolling iterator over the k-mers of an ASCII sequence together with
/// their canonical representatives and minimizer hashes.
///
/// Like [`CanonicalKmerIter`], plus a rolling canonical m-mer window and a
/// monotone deque over the m-mer hashes: the deque's front is always the
/// minimum hash among the m-mers inside the current k-mer window, so each
/// base is pushed and popped at most once regardless of `k - m + 1`.
pub struct MinimizerKmerIter<'a> {
    codec: KmerCodec,
    mcodec: KmerCodec,
    seq: &'a [u8],
    pos: usize,
    /// How many consecutive valid bases end at `pos` (capped at k).
    valid: usize,
    /// Forward / reverse-complement k-mer windows (low `2k` bits).
    bits: u128,
    rc_bits: u128,
    /// Forward / reverse-complement m-mer windows (low `2m` bits).
    mbits: u128,
    m_rc_bits: u128,
    /// `(m-mer offset, mix64(canonical m-mer))` with nondecreasing hashes
    /// front to back; the front is the current window minimum.
    window: std::collections::VecDeque<(usize, u64)>,
}

impl<'a> Iterator for MinimizerKmerIter<'a> {
    type Item = (usize, Kmer, Kmer, u64);

    fn next(&mut self) -> Option<(usize, Kmer, Kmer, u64)> {
        let k = self.codec.k;
        let m = self.mcodec.k;
        let rc_shift = 2 * (k - 1) as u32;
        let m_rc_shift = 2 * (m - 1) as u32;
        while self.pos < self.seq.len() {
            let b = self.seq[self.pos];
            self.pos += 1;
            match encode_base(b) {
                Some(code) => {
                    self.bits = ((self.bits << 2) | code as u128) & self.codec.mask;
                    self.rc_bits = (self.rc_bits >> 2) | (((3 - code) as u128) << rc_shift);
                    self.mbits = ((self.mbits << 2) | code as u128) & self.mcodec.mask;
                    self.m_rc_bits = (self.m_rc_bits >> 2) | (((3 - code) as u128) << m_rc_shift);
                    self.valid = (self.valid + 1).min(k);
                    if self.valid >= m {
                        let canon_m = self.mbits.min(self.m_rc_bits);
                        let h = crate::hash::mix64(canon_m as u64);
                        while self.window.back().is_some_and(|&(_, bh)| bh >= h) {
                            self.window.pop_back();
                        }
                        self.window.push_back((self.pos - m, h));
                    }
                    if self.valid == k {
                        let start = self.pos - k;
                        while self.window.front().is_some_and(|&(off, _)| off < start) {
                            self.window.pop_front();
                        }
                        let fwd = Kmer(self.bits);
                        let canon = if self.rc_bits < self.bits {
                            Kmer(self.rc_bits)
                        } else {
                            fwd
                        };
                        let min_hash = self.window.front().expect("window nonempty at k").1;
                        return Some((start, fwd, canon, min_hash));
                    }
                }
                None => {
                    self.valid = 0;
                    self.bits = 0;
                    self.rc_bits = 0;
                    self.mbits = 0;
                    self.m_rc_bits = 0;
                    self.window.clear();
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.seq.len().saturating_sub(self.pos)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let c = KmerCodec::new(5);
        let kmer = c.pack(b"ACGTA").unwrap();
        assert_eq!(c.unpack(kmer), b"ACGTA");
        assert_eq!(c.to_string(kmer), "ACGTA");
    }

    #[test]
    fn pack_rejects_bad_input() {
        let c = KmerCodec::new(4);
        assert!(c.pack(b"ACG").is_none(), "too short");
        assert!(c.pack(b"ACGTA").is_none(), "too long");
        assert!(c.pack(b"ACNT").is_none(), "ambiguous base");
    }

    #[test]
    fn base_accessors() {
        let c = KmerCodec::new(4);
        let kmer = c.pack(b"GATC").unwrap();
        assert_eq!(c.first_base(kmer), 2); // G
        assert_eq!(c.last_base(kmer), 1); // C
        assert_eq!(c.base_at(kmer, 1), 0); // A
        assert_eq!(c.base_at(kmer, 2), 3); // T
    }

    #[test]
    fn revcomp_small() {
        let c = KmerCodec::new(3);
        let kmer = c.pack(b"ATC").unwrap();
        assert_eq!(c.to_string(c.revcomp(kmer)), "GAT");
    }

    #[test]
    fn revcomp_involution_various_k() {
        for k in [1, 2, 3, 15, 16, 31, 32, 33, 63, 64] {
            let c = KmerCodec::new(k);
            // Deterministic pseudo-random bases.
            let seq: Vec<u8> = (0..k)
                .map(|i| crate::base::BASES[(i * 7 + 3) % 4])
                .collect();
            let kmer = c.pack(&seq).unwrap();
            assert_eq!(c.revcomp(c.revcomp(kmer)), kmer, "k={k}");
        }
    }

    #[test]
    fn revcomp_matches_string_revcomp() {
        let c = KmerCodec::new(7);
        let kmer = c.pack(b"AACGTGG").unwrap();
        let rc = c.revcomp(kmer);
        assert_eq!(c.to_string(rc), "CCACGTT");
    }

    #[test]
    fn canonical_is_min_and_idempotent() {
        let c = KmerCodec::new(4);
        let kmer = c.pack(b"TTTT").unwrap();
        let canon = c.canonical(kmer);
        assert_eq!(c.to_string(canon), "AAAA");
        assert_eq!(c.canonical(canon), canon);
        assert!(c.is_canonical(canon));
        assert!(!c.is_canonical(kmer));
    }

    #[test]
    fn palindrome_detection() {
        let c = KmerCodec::new(4);
        assert!(c.is_palindrome(c.pack(b"ACGT").unwrap()));
        assert!(!c.is_palindrome(c.pack(b"ACGG").unwrap()));
    }

    #[test]
    fn extend_right_slides_window() {
        let c = KmerCodec::new(3);
        let kmer = c.pack(b"ACG").unwrap();
        let next = c.extend_right(kmer, encode_base(b'T').unwrap());
        assert_eq!(c.to_string(next), "CGT");
    }

    #[test]
    fn extend_left_slides_window() {
        let c = KmerCodec::new(3);
        let kmer = c.pack(b"ACG").unwrap();
        let prev = c.extend_left(kmer, encode_base(b'T').unwrap());
        assert_eq!(c.to_string(prev), "TAC");
    }

    #[test]
    fn extensions_are_inverses() {
        let c = KmerCodec::new(9);
        let kmer = c.pack(b"ACGTACGTA").unwrap();
        let first = c.first_base(kmer);
        let last = c.last_base(kmer);
        assert_eq!(c.extend_left(c.extend_right(kmer, 2), first), kmer);
        assert_eq!(c.extend_right(c.extend_left(kmer, 1), last), kmer);
    }

    #[test]
    fn kmer_iter_simple() {
        let c = KmerCodec::new(3);
        let got: Vec<(usize, String)> = c
            .kmers(b"ACGTA")
            .map(|(off, km)| (off, c.to_string(km)))
            .collect();
        assert_eq!(
            got,
            vec![
                (0, "ACG".to_string()),
                (1, "CGT".to_string()),
                (2, "GTA".to_string())
            ]
        );
    }

    #[test]
    fn kmer_iter_skips_n_windows() {
        let c = KmerCodec::new(3);
        let got: Vec<usize> = c.kmers(b"ACNGTAC").map(|(off, _)| off).collect();
        // Windows overlapping the N at index 2 are dropped.
        assert_eq!(got, vec![3, 4]);
    }

    #[test]
    fn kmer_iter_short_sequence_yields_nothing() {
        let c = KmerCodec::new(5);
        assert_eq!(c.kmers(b"ACGT").count(), 0);
        assert_eq!(c.kmers(b"").count(), 0);
    }

    #[test]
    fn kmer_iter_matches_pack() {
        let c = KmerCodec::new(4);
        let seq = b"GGATCCA";
        for (off, km) in c.kmers(seq) {
            assert_eq!(km, c.pack(&seq[off..off + 4]).unwrap());
        }
    }

    #[test]
    fn max_k_roundtrip() {
        let c = KmerCodec::new(64);
        let seq: Vec<u8> = (0..64).map(|i| crate::base::BASES[i % 4]).collect();
        let kmer = c.pack(&seq).unwrap();
        assert_eq!(c.unpack(kmer), seq);
        assert_eq!(c.revcomp(c.revcomp(kmer)), kmer);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        KmerCodec::new(0);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn oversize_k_panics() {
        KmerCodec::new(65);
    }

    #[test]
    fn try_new_rejects_out_of_range_with_typed_error() {
        assert_eq!(KmerCodec::try_new(0), Err(KmerLenError { k: 0 }));
        assert_eq!(KmerCodec::try_new(65), Err(KmerLenError { k: 65 }));
        assert_eq!(
            KmerLenError { k: 65 }.to_string(),
            "k must be in 1..=64, got 65"
        );
        assert!(KmerCodec::try_new(1).is_ok());
        assert!(KmerCodec::try_new(64).is_ok());
    }

    #[test]
    fn boundary_k_shift_paths_are_exact() {
        // k = 63 and k = 64 exercise the extreme shift amounts: the mask
        // construction (1 << 128 would overflow), revcomp's `>> (128 - 2k)`
        // (zero at k = 64), and extend_left's `<< 126`.
        for k in [63usize, 64] {
            let c = KmerCodec::new(k);
            let seq: Vec<u8> = (0..k)
                .map(|i| crate::base::BASES[(i * 11 + 1) % 4])
                .collect();
            let kmer = c.pack(&seq).unwrap();
            assert_eq!(c.unpack(kmer), seq, "k={k} pack/unpack");
            assert_eq!(
                c.unpack(c.revcomp(kmer)),
                crate::seq::revcomp(&seq),
                "k={k} revcomp"
            );
            assert_eq!(c.revcomp(c.revcomp(kmer)), kmer, "k={k} involution");
            // extend_right then extend_left with the dropped/original bases
            // restores the window at the widest shift amounts.
            let first = c.first_base(kmer);
            let last = c.last_base(kmer);
            assert_eq!(c.extend_left(c.extend_right(kmer, 2), first), kmer);
            assert_eq!(c.extend_right(c.extend_left(kmer, 1), last), kmer);
            // The canonical pick agrees with an explicit min.
            let rc = c.revcomp(kmer);
            assert_eq!(c.canonical(kmer).0, kmer.0.min(rc.0), "k={k} canonical");
        }
    }

    /// Deterministic pseudo-random DNA with occasional ambiguous bases.
    fn noisy_seq(len: usize, n_every: usize, salt: usize) -> Vec<u8> {
        (0..len)
            .map(|i| {
                if n_every != 0 && i % n_every == n_every - 1 {
                    b'N'
                } else {
                    crate::base::BASES[(i * 7 + salt) % 4]
                }
            })
            .collect()
    }

    #[test]
    fn minimizer_hash_is_strand_invariant() {
        for (k, m) in [
            (5usize, 3usize),
            (21, 7),
            (31, 7),
            (31, 15),
            (33, 11),
            (63, 7),
        ] {
            let c = KmerCodec::new(k);
            for salt in 0..8 {
                let seq = noisy_seq(k, 0, salt);
                let km = c.pack(&seq).unwrap();
                assert_eq!(
                    c.minimizer_hash(km, m),
                    c.minimizer_hash(c.revcomp(km), m),
                    "k={k} m={m} salt={salt}"
                );
            }
        }
    }

    #[test]
    fn minimizer_hash_k_equals_m_degenerates_to_canonical_hash() {
        // With a single window, the minimizer IS the canonical k-mer's hash.
        for k in [1usize, 3, 15, 31, 32] {
            let c = KmerCodec::new(k);
            let seq = noisy_seq(k, 0, 1);
            let km = c.pack(&seq).unwrap();
            let expect = crate::hash::mix64(c.canonical(km).0 as u64);
            assert_eq!(c.minimizer_hash(km, k), expect, "k={k}");
        }
    }

    #[test]
    fn minimizer_hash_matches_naive_window_scan() {
        let k = 11;
        let m = 4;
        let c = KmerCodec::new(k);
        let mc = KmerCodec::new(m);
        let seq = noisy_seq(k, 0, 2);
        let km = c.pack(&seq).unwrap();
        let naive = (0..=k - m)
            .map(|i| {
                let mm = mc.pack(&seq[i..i + m]).unwrap();
                crate::hash::mix64(mc.canonical(mm).0 as u64)
            })
            .min()
            .unwrap();
        assert_eq!(c.minimizer_hash(km, m), naive);
    }

    #[test]
    #[should_panic(expected = "minimizer length")]
    fn minimizer_hash_rejects_m_longer_than_k() {
        let c = KmerCodec::new(5);
        c.minimizer_hash(Kmer(0), 6);
    }

    #[test]
    #[should_panic(expected = "minimizer length")]
    fn minimizer_hash_rejects_m_beyond_mixer_width() {
        let c = KmerCodec::new(40);
        c.minimizer_hash(Kmer(0), 33);
    }

    #[test]
    fn minimizer_iter_matches_per_kmer_hash() {
        // Window edges are exercised by the N resets (the deque must clear)
        // and by sequence start/end; k=m covers the single-window case.
        for (k, m) in [(3usize, 3usize), (7, 3), (21, 7), (31, 15), (32, 32)] {
            let c = KmerCodec::new(k);
            let seq = noisy_seq(240, 53, 5);
            let rolled: Vec<(usize, Kmer, Kmer, u64)> = c.minimizer_kmers(&seq, m).collect();
            let naive: Vec<(usize, Kmer, Kmer, u64)> = c
                .canonical_kmers(&seq)
                .map(|(off, km, canon)| (off, km, canon, c.minimizer_hash(km, m)))
                .collect();
            assert_eq!(rolled, naive, "k={k} m={m}");
            assert!(!rolled.is_empty(), "fixture must produce k-mers");
        }
    }

    #[test]
    fn adjacent_kmers_mostly_share_minimizers() {
        // The locality property placement rides on: along a read, the
        // minimizer changes far less often than once per position.
        let k = 31;
        let m = 7;
        let c = KmerCodec::new(k);
        let seq = noisy_seq(4000, 0, 3);
        let hashes: Vec<u64> = c.minimizer_kmers(&seq, m).map(|(_, _, _, h)| h).collect();
        let changes = hashes.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            changes * 4 < hashes.len(),
            "minimizer changed {changes} times over {} adjacent pairs",
            hashes.len() - 1
        );
    }

    #[test]
    fn canonical_iter_matches_per_position_canonicalization() {
        for k in [3usize, 21, 31, 63, 64] {
            let c = KmerCodec::new(k);
            let seq: Vec<u8> = (0..200)
                .map(|i| {
                    if i % 97 == 0 {
                        b'N'
                    } else {
                        crate::base::BASES[(i * 7 + 5) % 4]
                    }
                })
                .collect();
            let rolled: Vec<(usize, Kmer, Kmer)> = c.canonical_kmers(&seq).collect();
            let naive: Vec<(usize, Kmer, Kmer)> = c
                .kmers(&seq)
                .map(|(off, km)| (off, km, c.canonical(km)))
                .collect();
            assert_eq!(rolled, naive, "k={k}");
        }
    }
}
