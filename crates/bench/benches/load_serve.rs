//! Service-level load benchmark for `hipmer serve` (DESIGN.md §13): boot
//! an in-process job server backed by the real assembly pipeline, drive
//! it with the HTTP load generator at several submission rates, and
//! measure submission→completion latency split by how the result cache
//! served each job.
//!
//! Each rate point runs three phases:
//!
//! * **cold** — every spec distinct, empty cache: all misses. This is
//!   the baseline cost of actually assembling each input.
//! * **warm** — the same specs resubmitted against the now-populated
//!   cache: all hits. The p50 here versus the cold p50 is the headline
//!   `hit_speedup`, which the bench **hard-asserts ≥ 5×** (the result
//!   cache must make identical resubmissions at least 5× faster).
//! * **mixed** — a fresh server and cache, submissions interleaving
//!   distinct and duplicate specs (duplicate fraction 0.5), the
//!   realistic multi-tenant arrival pattern. The recorded
//!   `cache_hit_ratio` is machine-independent (it counts dispositions,
//!   not seconds) and is what CI gates against the checked-in baseline.
//!
//! Latencies come from the server's own `submitted_s`/`finished_s`
//! stamps, so client polling cadence does not distort them. The rate
//! sweep is identical in fast and full mode (CI compares points by
//! rate); `HIPMER_BENCH_FAST=1` only shrinks the genomes and job counts.

use std::path::PathBuf;
use std::time::Duration;

use hipmer::AssemblyExecutor;
use hipmer_bench::banner;
use hipmer_pgas::json::Value;
use hipmer_serve::loadgen::{self, LoadReport, LoadgenConfig};
use hipmer_serve::{JobSpec, ServeConfig, Server};

/// Submission rates (jobs/second). Same sweep in fast and full mode so
/// the CI gate can match points against the checked-in baseline by rate.
const RATES: [f64; 3] = [2.0, 6.0, 18.0];
/// Shared rank pool: two concurrent 4-rank jobs.
const POOL_RANKS: usize = 8;
const RANKS_PER_NODE: usize = 4;
const JOB_RANKS: usize = 4;
const TENANTS: [&str; 3] = ["alice", "bob", "carol"];

/// Distinct read sets, one FASTQ file per seed, shared by every point.
fn write_inputs(dir: &std::path::Path, n: usize, genome_bases: usize) -> Vec<PathBuf> {
    (0..n)
        .map(|i| {
            let dataset =
                hipmer_readsim::human_like_dataset(genome_bases, 10.0, false, 40_001 + i as u64);
            let mut buf = Vec::new();
            hipmer_seqio::write_fastq(&mut buf, &dataset.all_reads()).unwrap();
            let path = dir.join(format!("reads_{i}.fastq"));
            std::fs::write(&path, &buf).unwrap();
            path
        })
        .collect()
}

fn spec_for(input: &std::path::Path, i: usize) -> JobSpec {
    JobSpec {
        input: input.to_string_lossy().into_owned(),
        k: 21,
        ranks: JOB_RANKS,
        ranks_per_node: 2,
        rounds: 1,
        metagenome: false,
        tenant: TENANTS[i % TENANTS.len()].to_string(),
        priority: 0,
    }
}

fn boot(state_dir: PathBuf) -> Server {
    let cfg = ServeConfig {
        state_dir,
        queue_capacity: 256,
        tenant_quota: 256,
        pool_ranks: POOL_RANKS,
        ranks_per_node: RANKS_PER_NODE,
        ..ServeConfig::default()
    };
    Server::start(cfg, AssemblyExecutor::shared()).expect("server boots")
}

fn load(addr: &str, specs: Vec<JobSpec>, jobs: usize, rate: f64, dup: f64) -> LoadReport {
    loadgen::run(&LoadgenConfig {
        addr: addr.to_string(),
        jobs,
        rate_per_s: rate,
        duplicate_fraction: dup,
        specs,
        poll_interval: Duration::from_millis(10),
        timeout: Duration::from_secs(300),
    })
    .expect("load run completes")
}

fn main() {
    banner(
        "Service load",
        "hipmer serve latency/throughput under fresh, duplicate, and mixed submissions",
    );
    let fast = hipmer_bench::fast();
    let genome_bases = if fast { 5_000 } else { 10_000 };
    let n_cold = if fast { 3 } else { 4 };
    let mixed_jobs = if fast { 6 } else { 10 };
    // The mixed phase must never re-draw a cold spec (a re-draw is a
    // cache hit that would muddy the disposition counts), so hand it as
    // many distinct specs as it has submissions.
    let n_inputs = n_cold.max(mixed_jobs);

    let root = std::env::temp_dir().join(format!("hipmer-load-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let inputs = write_inputs(&root, n_inputs, genome_bases);
    println!(
        "{} distinct inputs of ~{} bp genome each; pool {} ranks ({} per node), {} ranks/job",
        n_inputs, genome_bases, POOL_RANKS, RANKS_PER_NODE, JOB_RANKS
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "rate/s", "cold p50", "hit p50", "mixed p99", "speedup", "hit ratio"
    );

    let mut points: Vec<Value> = Vec::new();
    for (pi, &rate) in RATES.iter().enumerate() {
        let cold_specs: Vec<JobSpec> = inputs[..n_cold]
            .iter()
            .enumerate()
            .map(|(i, p)| spec_for(p, i))
            .collect();

        // Cold + warm share one server: the cold phase populates the
        // cache the warm phase then hits.
        let server = boot(root.join(format!("state_{pi}_coldwarm")));
        let addr = server.addr().to_string();
        let cold = load(&addr, cold_specs.clone(), n_cold, rate, 0.0);
        let warm = load(&addr, cold_specs, n_cold, rate, 0.0);
        server.begin_drain();
        server.join();

        // Mixed runs against a fresh cache so its misses are real.
        let mixed_specs: Vec<JobSpec> = inputs
            .iter()
            .enumerate()
            .map(|(i, p)| spec_for(p, i))
            .collect();
        let server = boot(root.join(format!("state_{pi}_mixed")));
        let addr = server.addr().to_string();
        let mixed = load(&addr, mixed_specs, mixed_jobs, rate, 0.5);
        server.begin_drain();
        server.join();

        // Disposition sanity: the phases must exercise what they claim.
        assert_eq!(cold.completed, n_cold, "cold phase must complete all jobs");
        assert_eq!(cold.cache_hits, 0, "cold phase must not hit the cache");
        assert_eq!(warm.completed, n_cold, "warm phase must complete all jobs");
        assert_eq!(
            warm.cache_hits, n_cold,
            "warm phase resubmits identical specs: every job must hit"
        );
        assert_eq!(mixed.completed, mixed_jobs);
        assert!(
            mixed.cache_hits > 0,
            "mixed phase interleaves duplicates: some must hit"
        );

        let hit_speedup = cold.p50_ms / warm.p50_ms.max(1e-9);
        let cache_hit_ratio = mixed.cache_hits as f64 / mixed.completed as f64;
        println!(
            "{:>8.1} {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>9.1}x {:>10.2}",
            rate, cold.p50_ms, warm.p50_ms, mixed.p99_ms, hit_speedup, cache_hit_ratio
        );

        // The acceptance bar: identical resubmission must be at least
        // 5× faster than assembling from scratch, at every rate.
        assert!(
            hit_speedup >= 5.0,
            "rate {rate}: cache hits only {hit_speedup:.1}x faster than cold \
             (cold p50 {:.1}ms, hit p50 {:.1}ms)",
            cold.p50_ms,
            warm.p50_ms
        );

        let mut e = Value::obj();
        e.set("rate_per_s", rate)
            .set("hit_speedup", hit_speedup)
            .set("cache_hit_ratio", cache_hit_ratio)
            .set("cold", cold.to_value())
            .set("warm", warm.to_value())
            .set("mixed", mixed.to_value());
        points.push(e);
    }

    let mut doc = Value::obj();
    doc.set("schema_version", 1u64);
    doc.set("bench", "load_serve");
    doc.set("fast_mode", fast);
    doc.set(
        "host_parallelism",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1) as u64,
    );
    doc.set("pool_ranks", POOL_RANKS as u64);
    doc.set("ranks_per_node", RANKS_PER_NODE as u64);
    doc.set("job_ranks", JOB_RANKS as u64);
    doc.set("genome_bases", genome_bases as u64);
    doc.set("cold_jobs_per_point", n_cold as u64);
    doc.set("mixed_jobs_per_point", mixed_jobs as u64);
    doc.set("points", points);
    std::fs::write("BENCH_serve.json", doc.to_json()).unwrap();
    println!(
        "wrote BENCH_serve.json ({} rate points); cache-hit speedup ≥ 5x at every rate ✓",
        RATES.len()
    );
    std::fs::remove_dir_all(&root).ok();
}
