//! Tables 1 & 2: the communication-avoiding de Bruijn graph traversal
//! (§5.2).
//!
//! Scenario exactly as in the paper: assemble one individual, build the
//! oracle partitioning function from its contigs, then assemble a
//! *different individual of the same species* (0.2% SNPs) using (a) no
//! oracle, (b) a small oracle vector ("oracle-1"), (c) a 4× larger vector
//! ("oracle-4"). Report traversal time (Table 1) and the off-node lookup
//! fractions (Table 2).

use hipmer_bench::{banner, fast, model, scaled};
use hipmer_contig::{build_graph, build_oracle, traverse_graph, ContigConfig};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::{Partitioner, Placement, Team, Topology};
use hipmer_readsim::{
    apply_snps, repeat_fragmented, simulate_library, ErrorModel, Genome, Library,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    banner(
        "Tables 1 & 2",
        "communication-avoiding traversal: no-oracle vs oracle-1 vs oracle-4",
    );
    let genome_len = scaled(600_000);
    let k = 31;

    // Individual A: source of the draft assembly and the oracle. The
    // genome is engineered to fragment into thousands of contigs — the
    // paper's human assembly has millions, and the oracle's balance
    // depends on contigs outnumbering ranks (see readsim docs).
    let genome_a = repeat_fragmented(genome_len, 200, 777);
    let reads_a_lib = simulate_library(
        &genome_a,
        &Library::short_insert(14.0),
        &ErrorModel::perfect(),
        776,
    );
    // Individual B: same species, ~0.2% divergence from A's reference.
    let mut rng = StdRng::seed_from_u64(778);
    let (h1, n_snps) = apply_snps(genome_a.reference(), 0.002, &mut rng);
    let genome_b = Genome {
        name: "individual-B".into(),
        haplotypes: vec![h1],
    };
    let reads_b = simulate_library(
        &genome_b,
        &Library::short_insert(14.0),
        &ErrorModel::perfect(),
        779,
    );
    println!(
        "genome: {} bp; individual B differs by {} SNPs ({:.2}%)",
        genome_len,
        n_snps,
        100.0 * n_snps as f64 / genome_len as f64
    );

    // Paper: 480 and 1,920 cores; same 4x contrast at matched data volume.
    let concurrencies = if fast() { vec![120] } else { vec![120, 480] };
    let m = model();

    println!(
        "\n{:>7} {:>12} {:>12} {:>12} {:>10} {:>10}   (Table 1)",
        "cores", "no-oracle", "oracle-1", "oracle-4", "speedup1", "speedup4"
    );
    let mut table2: Vec<(usize, [f64; 3])> = Vec::new();
    for &ranks in &concurrencies {
        let topo = Topology::edison(ranks);
        let team = Team::new(topo);

        // Draft assembly of individual A at this concurrency.
        let (spectrum_a, _) = analyze_kmers(&team, &reads_a_lib, &KmerAnalysisConfig::new(k));
        let cfg = ContigConfig::new(k);
        let (graph_a, _) = build_graph(&team, &spectrum_a, Placement::Cyclic, Partitioner::Uniform);
        let (contigs_a, _) = traverse_graph(&team, &graph_a, &cfg);

        // Oracle vectors from A's contigs. "oracle-4" has 4x the slots
        // (memory <-> collision trade-off). oracle-1 is sized at ~load
        // factor 1 so a substantial fraction of k-mers is displaced, like
        // the paper's 115 MB/thread oracle-1 against 3G k-mers.
        let slots1 = (genome_len / 2).next_power_of_two();
        let oracle1 = Arc::new(build_oracle(&contigs_a, &topo, slots1));
        let oracle4 = Arc::new(build_oracle(&contigs_a, &topo, slots1 * 4));
        println!(
            "# cores={ranks}: oracle-1 {} KB/rank ({} collisions), oracle-4 {} KB/rank ({} collisions)",
            oracle1.memory_bytes() / 1024,
            oracle1.collisions(),
            oracle4.memory_bytes() / 1024,
            oracle4.collisions()
        );

        // K-mer analysis of individual B (shared by all three variants).
        let (spectrum_b, _) = analyze_kmers(&team, &reads_b, &KmerAnalysisConfig::new(k));

        let mut times = [0.0f64; 3];
        let mut offnode = [0.0f64; 3];
        let mut contig_counts = [0usize; 3];
        for (i, placement) in [
            Placement::Cyclic,
            oracle1.clone().placement(),
            oracle4.clone().placement(),
        ]
        .into_iter()
        .enumerate()
        {
            let (graph, _) = build_graph(&team, &spectrum_b, placement, Partitioner::Uniform);
            let (contigs, traversal) = traverse_graph(&team, &graph, &cfg);
            times[i] = traversal.modeled(&m).total();
            offnode[i] = traversal.offnode_fraction();
            contig_counts[i] = contigs.len();
        }
        assert_eq!(contig_counts[0], contig_counts[1]);
        assert_eq!(contig_counts[0], contig_counts[2]);
        println!(
            "{:>7} {:>12.4} {:>12.4} {:>12.4} {:>9.1}x {:>9.1}x",
            ranks,
            times[0],
            times[1],
            times[2],
            times[0] / times[1],
            times[0] / times[2]
        );
        table2.push((ranks, offnode));
    }

    println!(
        "\n{:>7} {:>12} {:>12} {:>12} {:>10} {:>10}   (Table 2)",
        "cores", "no-oracle", "oracle-1", "oracle-4", "reduc-1", "reduc-4"
    );
    for (ranks, f) in table2 {
        println!(
            "{:>7} {:>11.1}% {:>11.1}% {:>11.1}% {:>9.1}% {:>9.1}%",
            ranks,
            100.0 * f[0],
            100.0 * f[1],
            100.0 * f[2],
            100.0 * (1.0 - f[1] / f[0]),
            100.0 * (1.0 - f[2] / f[0])
        );
    }
    println!("\npaper Table 1: speedups 1.4x/2.8x @480, 1.3x/1.9x @1920.");
    println!(
        "paper Table 2: off-node 92.8/54.6/22.8% @480, 97.2/54.5/23.0% @1920; reductions 41-76%."
    );
}
