//! §5.6: HipMer vs competing parallel de novo assemblers at 960 cores.
//!
//! Paper's numbers: Ray needed 10h46m end-to-end on human at 960 cores
//! (≈13× slower than HipMer); ABySS took 13h26m just to finish contig
//! generation (≥16× slower), with scaffolding not distributed at all; the
//! original Meraculous needed 23.8 hours (≈170× slower than HipMer at
//! 15,360 cores). The baselines here run the same real assembly under
//! each competitor's execution model (see `hipmer-baselines`).

use hipmer::PipelineConfig;
use hipmer_baselines::{abyss_like, hipmer_reference, ray_like, serial_meraculous};
use hipmer_bench::{banner, lib_ranges, scaled};
use hipmer_readsim::human_like_dataset;

fn main() {
    banner(
        "Section 5.6",
        "competing assemblers on the human-like dataset (paper: 960 cores)",
    );
    let dataset = human_like_dataset(scaled(300_000), 14.0, true, 90_001);
    let reads = dataset.all_reads();
    let ranges = lib_ranges(&dataset);
    let cfg = PipelineConfig::new(31);
    // Paper compares at 960 cores; concurrency matched to our data volume.
    let ranks = 240;

    let rows = vec![
        hipmer_reference(ranks, &reads, &ranges, &cfg),
        ray_like(ranks, &reads, &ranges, &cfg),
        abyss_like(ranks, &reads, &ranges, &cfg),
        serial_meraculous(&reads, &ranges, &cfg),
    ];
    let hipmer_total = rows[0].total();

    println!(
        "\n{:<42} {:>12} {:>10} {:>14} {:>9}",
        "assembler", "total (s)", "vs HipMer", "scaffold (s)", "N50"
    );
    for r in &rows {
        println!(
            "{:<42} {:>12.3} {:>9.1}x {:>14.3} {:>9}",
            r.name,
            r.total(),
            r.total() / hipmer_total,
            r.times.scaffolding(),
            r.scaffold_n50
        );
    }
    println!("\npaper: Ray ~13x slower, ABySS >=16x slower (contig gen only; serial");
    println!("scaffolding), original Meraculous ~170x slower than HipMer@15K.");
}
