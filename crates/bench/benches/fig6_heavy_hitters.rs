//! Figure 6: strong scaling of k-mer analysis on the wheat dataset, with
//! and without the heavy-hitter optimization (§5.1).
//!
//! Paper's observations to reproduce in shape:
//! * the heavy-hitters run beats the default at every concurrency, and
//!   the gap grows with scale (2.4× at 15,360 cores);
//! * the default's communication share explodes (23% → 68%) while the
//!   optimized version stays modest (16% → 22%);
//! * I/O is flat across the sweep (Lustre saturated by 960 cores), which
//!   limits scaling at the top end.

#[allow(unused_imports)]
use hipmer_bench::lib_ranges as _lib_ranges;
use hipmer_bench::{banner, efficiency, fast, model, scaled};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::{CommStats, PhaseReport, Team, Topology};
use hipmer_readsim::wheat_like_dataset;

fn kmer_analysis_seconds(reports: &[PhaseReport], io_bytes: u64, ranks: usize) -> (f64, f64) {
    let m = model();
    let mut compute_comm = 0.0;
    for r in reports {
        compute_comm += r.modeled(&m).total();
    }
    // The FASTQ read the paper folds into these runs: flat beyond
    // saturation.
    let topo = Topology::edison(ranks);
    let per = io_bytes / ranks as u64;
    let io_stats: Vec<CommStats> = (0..ranks)
        .map(|_| CommStats {
            io_read_bytes: per,
            ..CommStats::default()
        })
        .collect();
    let io = m.io_seconds(&topo, &io_stats);
    (compute_comm, io)
}

fn main() {
    banner(
        "Figure 6",
        "k-mer analysis strong scaling on wheat-like data: Default vs Heavy Hitters",
    );
    let genome_len = scaled(1_000_000);
    let dataset = wheat_like_dataset(genome_len, 12.0, true, 4242);
    let reads = dataset.all_reads();
    let read_bytes: u64 = 2 * dataset.total_read_bases() as u64; // seq + qual
    println!(
        "wheat-like genome: {} bp, reads: {} ({} Mbase)",
        genome_len,
        reads.len(),
        dataset.total_read_bases() / 1_000_000
    );
    println!(
        "\n{:>7} {:>14} {:>14} {:>9} {:>12} {:>12} {:>8}",
        "cores", "default (s)", "heavy-hit (s)", "speedup", "comm% dflt", "comm% hh", "io (s)"
    );

    // Concurrency sweep scaled to keep items-per-rank in the paper's
    // regime (the paper runs ~0.5 Gbase/core on wheat; at our genome size
    // the same ratio lands at tens-to-hundreds of ranks). EXPERIMENTS.md
    // documents the mapping.
    let sweep: Vec<usize> = if fast() {
        vec![48, 192]
    } else {
        vec![48, 96, 192, 384, 768]
    };
    let mut base: Option<((usize, f64), (usize, f64))> = None;
    for ranks in sweep {
        let team = Team::new(Topology::edison(ranks));
        let mut results = Vec::new();
        let mut comm_fracs = Vec::new();
        for use_hh in [false, true] {
            let mut cfg = KmerAnalysisConfig::new(31);
            cfg.use_heavy_hitters = use_hh;
            // Paper uses theta = 32,000 against 330G 51-mers; scaled to our
            // k-mer volume (and well inside the paper's 1K-64K
            // insensitivity sweep, reproduced in the ablations bench).
            cfg.theta = 4096;
            let (spectrum, reports) = analyze_kmers(&team, &reads, &cfg);
            let (secs, io) = kmer_analysis_seconds(&reports, read_bytes, ranks);
            // Communication share: priced comm seconds / total.
            let m = model();
            let comm: f64 = reports
                .iter()
                .map(|r| {
                    let t = r.modeled(&m);
                    let mut no_comm = r.clone();
                    for s in no_comm.stats.iter_mut() {
                        s.onnode_msgs = 0;
                        s.offnode_msgs = 0;
                        s.onnode_bytes = 0;
                        s.offnode_bytes = 0;
                        s.service_ops = 0;
                    }
                    t.total() - no_comm.modeled(&m).total()
                })
                .sum();
            comm_fracs.push(comm / (secs + io));
            results.push((secs + io, spectrum.distinct()));
            let _ = io;
        }
        let (t_default, d1) = results[0];
        let (t_hh, d2) = results[1];
        assert_eq!(d1, d2, "optimization must not change the spectrum");
        let (_, io) = kmer_analysis_seconds(&[], read_bytes, ranks);
        if base.is_none() {
            base = Some(((ranks, t_default), (ranks, t_hh)));
        }
        println!(
            "{:>7} {:>14.3} {:>14.3} {:>8.2}x {:>11.1}% {:>11.1}% {:>8.3}",
            ranks,
            t_default,
            t_hh,
            t_default / t_hh,
            100.0 * comm_fracs[0],
            100.0 * comm_fracs[1],
            io
        );
    }
    let _ = base.map(|(bd, _)| efficiency(bd, bd));
    println!(
        "\npaper: heavy hitters 2.4x at 15,360 cores; default comm 23%->68%, optimized 16%->22%."
    );
}
