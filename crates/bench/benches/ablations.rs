//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. Aggregating stores on/off — message counts in k-mer counting (§4.1's
//!    "aggregating stores" optimization).
//! 2. Bloom filter on/off — k-mer table entries created (the §3.1 memory
//!    claim: up to 85% fewer entries for single genomes, much less for
//!    metagenome-like flat spectra).
//! 3. Misra–Gries θ sweep 1K–64K — runtime sensitivity (<10% in §5.1).
//! 4. Oracle vector size sweep — collision rate vs memory (§3.2), plus
//!    the node-level coarsening refinement.
//! 5. Round-robin vs blocked gap distribution — gap-closing load balance
//!    (§4.8).
//! 6. Traversal mode cross-check — cooperative / endpoint / speculative
//!    produce identical contigs at different cost profiles.
//! 7. Parallel FASTQ reader vs a SeqDB-like binary store (§3.3's claim:
//!    FASTQ reading reaches SeqDB's bandwidth up to the compression
//!    factor).
//! 8. Read-side communication avoidance — seed-lookup batching and
//!    software caching in the aligner (§4.4), with results recorded to
//!    `BENCH_lookup_avoidance.json`.
//! 9. Fault-tolerance overhead — checkpoint-interval × retry-budget sweep
//!    under seeded transient faults and a hard rank failure, with results
//!    recorded to `BENCH_fault_overhead.json`. All variants must produce
//!    byte-identical assemblies.

use hipmer_bench::{banner, model, scaled};
use hipmer_contig::{
    build_graph, build_oracle, generate_contigs, traverse_graph, ContigConfig, TraversalMode,
};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::{Partitioner, Team, Topology};
use hipmer_readsim::{human_like_dataset, metagenome_dataset, wheat_like_dataset};
use hipmer_scaffold::{close_gaps, GapCloseConfig};
use std::sync::Arc;

fn main() {
    let k = 31;
    let ranks = 480;
    let team = Team::new(Topology::edison(ranks));
    let m = model();

    // ------------------------------------------------------------------
    banner(
        "Ablation 1",
        "aggregating stores: remote messages in k-mer counting",
    );
    let human = human_like_dataset(scaled(150_000), 12.0, true, 1001);
    let reads = human.all_reads();
    println!(
        "{:>10} {:>16} {:>14}",
        "batch", "remote msgs", "modeled (s)"
    );
    for batch in [1usize, 16, 256, 1024] {
        let mut cfg = KmerAnalysisConfig::new(k);
        cfg.agg_batch = batch;
        let (_, reports) = analyze_kmers(&team, &reads, &cfg);
        let msgs: u64 = reports.iter().map(|r| r.totals().remote_msgs()).sum();
        let secs: f64 = reports.iter().map(|r| r.modeled(&m).total()).sum();
        println!("{:>10} {:>16} {:>14.4}", batch, msgs, secs);
    }
    println!("(batch=1 is the no-aggregation baseline; messages drop ~linearly in batch)");

    // ------------------------------------------------------------------
    banner(
        "Ablation 2",
        "Bloom filter: k-mer table construction traffic",
    );
    for (label, dataset) in [
        (
            "human-like",
            human_like_dataset(scaled(150_000), 12.0, true, 1002),
        ),
        (
            "metagenome",
            metagenome_dataset(scaled(150_000), 40, 8.0, true, 1003),
        ),
    ] {
        let reads = dataset.all_reads();
        let mut survived = [0usize; 2];
        let mut service = [0u64; 2];
        for (i, use_bloom) in [true, false].into_iter().enumerate() {
            let mut cfg = KmerAnalysisConfig::new(k);
            cfg.use_bloom = use_bloom;
            let (spectrum, reports) = analyze_kmers(&team, &reads, &cfg);
            survived[i] = spectrum.distinct();
            service[i] = reports.iter().map(|r| r.totals().service_ops).sum();
        }
        assert_eq!(survived[0], survived[1], "spectra must agree");
        println!(
            "{label:<12} final k-mers {:>9}; table service ops with bloom {:>10}, without {:>10} ({:.2}x)",
            survived[0],
            service[0],
            service[1],
            service[1] as f64 / service[0].max(1) as f64
        );
    }
    println!("(the paper reports up to 85% table-memory savings on single genomes,");
    println!(" and weaker savings on metagenomes whose spectra are flat)");

    // ------------------------------------------------------------------
    banner(
        "Ablation 3",
        "Misra-Gries theta sweep on wheat-like data (\u{03b8} = 1K..64K)",
    );
    // Runtime must dwarf the per-rank summary send for the paper's
    // insensitivity claim to be visible (their runs take minutes; a 64K
    // summary is 1.5 MB ~ 1.5 ms on Edison).
    let wheat = wheat_like_dataset(scaled(600_000), 12.0, true, 1004);
    let wreads = wheat.all_reads();
    let theta_team = Team::new(Topology::edison(48));
    let mut times = Vec::new();
    for theta in [1_000usize, 8_000, 32_000, 64_000] {
        let mut cfg = KmerAnalysisConfig::new(k);
        cfg.theta = theta;
        let (_, reports) = analyze_kmers(&theta_team, &wreads, &cfg);
        let secs: f64 = reports.iter().map(|r| r.modeled(&m).total()).sum();
        times.push((theta, secs));
        println!("theta {:>7}: {:.4} s", theta, secs);
    }
    let min = times.iter().map(|t| t.1).fold(f64::MAX, f64::min);
    let max = times.iter().map(|t| t.1).fold(0.0, f64::max);
    println!(
        "spread: {:.1}% (paper: <10% over the same range)",
        100.0 * (max - min) / min
    );

    // ------------------------------------------------------------------
    banner(
        "Ablation 4",
        "oracle vector size: memory vs collisions vs off-node lookups",
    );
    let base_reads = human.all_reads();
    let (spectrum, _) = analyze_kmers(&team, &base_reads, &KmerAnalysisConfig::new(k));
    let ccfg = ContigConfig::new(k);
    let (contigs, _) = generate_contigs(&team, &spectrum, &ccfg);
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>10}",
        "slots", "KB/rank", "collisions", "off-node %", "imbalance"
    );
    let topo = Topology::edison(ranks);
    for shift in [14u32, 16, 18, 20] {
        let slots = 1usize << shift;
        let oracle = Arc::new(build_oracle(&contigs, &topo, slots));
        let collisions = oracle.collisions();
        let kb = oracle.memory_bytes() / 1024;
        let (graph, _) = build_graph(&team, &spectrum, oracle.placement(), Partitioner::Uniform);
        let (_, traversal) = traverse_graph(&team, &graph, &ccfg);
        // A vector far smaller than the k-mer set funnels most k-mers onto
        // the first-written ranks: lookups turn local but the load
        // imbalance explodes — off-node % alone under-tells the story.
        println!(
            "{:>12} {:>12} {:>12} {:>11.1}% {:>9.1}x",
            slots,
            kb,
            collisions,
            100.0 * traversal.offnode_fraction(),
            traversal.imbalance(&m)
        );
    }
    // Node-level refinement.
    let slots = 1usize << 16;
    let mut oracle = build_oracle(&contigs, &topo, slots);
    oracle.coarsen_to_nodes(&topo);
    let (graph, _) = build_graph(
        &team,
        &spectrum,
        Arc::new(oracle).placement(),
        Partitioner::Uniform,
    );
    let (_, traversal) = traverse_graph(&team, &graph, &ccfg);
    let t = traversal.totals();
    println!(
        "node-level oracle (2^16 slots): off-node {:.1}%, on-node msgs {} (SMP refinement, \u{00a7}3.2)",
        100.0 * traversal.offnode_fraction(),
        t.onnode_msgs
    );

    // ------------------------------------------------------------------
    banner("Ablation 5", "gap distribution: round-robin vs blocked");
    // The paper's rationale: closure costs vary by orders of magnitude and
    // the gaps of one scaffold tend to cost alike. Build exactly that
    // workload: one scaffold whose every gap needs an expensive k-mer
    // walk, many scaffolds whose gaps are trivial overlap joins; blocked
    // distribution hands the expensive scaffold to a couple of ranks.
    {
        use hipmer_contig::ContigSet;
        use hipmer_dna::KmerCodec;
        use hipmer_scaffold::{Scaffold, ScaffoldMember};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(5005);
        let mut seqs: Vec<Vec<u8>> = Vec::new();
        let mut gap_regions: Vec<Vec<u8>> = Vec::new();
        let n_hard = 24usize; // contigs of the expensive scaffold
        let n_easy = 72usize;
        // Hard scaffold: 400bp contigs separated by 250bp gaps.
        for _ in 0..n_hard {
            seqs.push(hipmer_readsim::random_genome(400, 0.45, &mut rng));
            gap_regions.push(hipmer_readsim::random_genome(250, 0.45, &mut rng));
        }
        // Easy scaffolds: contig pairs overlapping by 30bp.
        for _ in 0..n_easy {
            let a = hipmer_readsim::random_genome(400, 0.45, &mut rng);
            let mut b = a[370..].to_vec();
            b.extend(hipmer_readsim::random_genome(370, 0.45, &mut rng));
            seqs.push(a);
            seqs.push(b);
        }
        let contig_set = ContigSet::from_sequences(KmerCodec::new(k), seqs.clone());
        let id_of = |seq: &Vec<u8>| -> u32 {
            contig_set
                .contigs
                .iter()
                .find(|c| &c.seq == seq || c.seq == hipmer_dna::revcomp(seq))
                .unwrap()
                .id as u32
        };
        // Reads tiling each hard gap (so the walks succeed but must work).
        let mut reads: Vec<hipmer_seqio::SeqRecord> = Vec::new();
        let mut alignments: Vec<hipmer_align::Alignment> = Vec::new();
        let mut scaffolds: Vec<Scaffold> = Vec::new();
        let mut hard_members = Vec::new();
        for (i, gap) in gap_regions.iter().enumerate() {
            let prev = &seqs[i];
            let next = &seqs[(i + 1) % n_hard];
            hard_members.push(ScaffoldMember {
                contig: id_of(prev),
                reversed: false,
                gap_before: if i == 0 { 0 } else { 250 },
            });
            // Junction sequence: prev tail + gap + next head, tiled by
            // 90bp reads; each read aligned to whichever contig it clips.
            let mut junction = prev[prev.len() - 120..].to_vec();
            junction.extend_from_slice(gap);
            junction.extend_from_slice(&next[..120]);
            // Paired reads 160bp apart: gap-interior reads are nominated
            // through their contig-aligned mates, as in the real pipeline.
            let pair_off = 160usize;
            let emit = |pos: usize,
                        reads: &mut Vec<hipmer_seqio::SeqRecord>,
                        alignments: &mut Vec<hipmer_align::Alignment>| {
                let ridx = reads.len() as u32;
                reads.push(hipmer_seqio::SeqRecord::with_uniform_quality(
                    format!("g{i}_{pos}_{ridx}"),
                    junction[pos..pos + 90].to_vec(),
                    35,
                ));
                if pos < 120 {
                    let span = (120 - pos).min(90);
                    alignments.push(hipmer_align::Alignment {
                        read: ridx,
                        contig: id_of(prev),
                        read_start: 0,
                        read_end: span as u32,
                        contig_start: (prev.len() - 120 + pos) as u32,
                        contig_end: (prev.len() - 120 + pos + span) as u32,
                        rc: false,
                        matches: span as u32,
                        read_len: 90,
                    });
                }
                let next_start = 120 + 250; // where `next` begins in junction
                if pos + 90 > next_start {
                    let rs = next_start.saturating_sub(pos);
                    alignments.push(hipmer_align::Alignment {
                        read: ridx,
                        contig: id_of(next),
                        read_start: rs as u32,
                        read_end: 90,
                        contig_start: (pos + rs - next_start) as u32,
                        contig_end: (pos + 90 - next_start) as u32,
                        rc: false,
                        matches: (90 - rs) as u32,
                        read_len: 90,
                    });
                }
            };
            let mut pos = 0usize;
            while pos + pair_off + 90 <= junction.len() {
                emit(pos, &mut reads, &mut alignments);
                emit(pos + pair_off, &mut reads, &mut alignments);
                pos += 11;
            }
        }
        // Fix the wrap-around member list into a simple chain.
        let hard_scaffold = Scaffold {
            members: hard_members,
        };
        scaffolds.push(hard_scaffold);
        for e in 0..n_easy {
            let a = id_of(&seqs[n_hard + 2 * e]);
            let b = id_of(&seqs[n_hard + 2 * e + 1]);
            scaffolds.push(Scaffold {
                members: vec![
                    ScaffoldMember {
                        contig: a,
                        reversed: false,
                        gap_before: 0,
                    },
                    ScaffoldMember {
                        contig: b,
                        reversed: false,
                        gap_before: -30,
                    },
                ],
            });
        }
        alignments.sort_by_key(|a| (a.read, a.contig, a.contig_start));
        let gap_team = Team::new(Topology::edison(24));
        for round_robin in [true, false] {
            let gcfg = GapCloseConfig {
                round_robin,
                ..GapCloseConfig::default()
            };
            let (_, stats, report) = close_gaps(
                &gap_team,
                &contig_set,
                &scaffolds,
                &alignments,
                &reads,
                &gcfg,
            );
            println!(
                "{}: modeled {:.4} s, imbalance {:.2} (closed {} of {} gaps)",
                if round_robin {
                    "round-robin"
                } else {
                    "blocked    "
                },
                report.modeled(&m).total(),
                report.imbalance(&m),
                stats.closed(),
                stats.total()
            );
        }
        println!("(one 24-gap scaffold needs k-mer walks; 72 scaffolds close by overlap —");
        println!(" blocked distribution serializes the expensive scaffold onto few ranks)");
    }

    // ------------------------------------------------------------------
    banner(
        "Ablation 6",
        "traversal modes: identical contigs, different cost profiles",
    );
    for mode in [
        TraversalMode::Cooperative,
        TraversalMode::EndpointWalk,
        TraversalMode::Speculative,
    ] {
        let mut cfg = ContigConfig::new(k);
        cfg.mode = mode;
        let (set, reports) = generate_contigs(&team, &spectrum, &cfg);
        let secs: f64 = reports.iter().map(|r| r.modeled(&m).total()).sum();
        let lookups: u64 = reports.iter().map(|r| r.totals().total_accesses()).sum();
        println!(
            "{:?}: {} contigs (N50 {}), {:.4} s, {} table accesses",
            mode,
            set.len(),
            set.n50(),
            secs,
            lookups
        );
    }

    // ------------------------------------------------------------------
    banner(
        "Ablation 7",
        "parallel FASTQ reader vs SeqDB-like binary store (\u{00a7}3.3)",
    );
    {
        let dataset = human_like_dataset(scaled(100_000), 10.0, true, 1007);
        let reads = dataset.all_reads();
        let dir = std::env::temp_dir().join(format!("hipmer-ablation7-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fastq_path = dir.join("reads.fastq");
        let seqdb_path = dir.join("reads.seqdb");
        let mut buf = Vec::new();
        hipmer_seqio::write_fastq(&mut buf, &reads).unwrap();
        std::fs::write(&fastq_path, &buf).unwrap();
        hipmer_seqio::write_seqdb(&seqdb_path, &reads).unwrap();
        let fastq_bytes = std::fs::metadata(&fastq_path).unwrap().len();
        let seqdb_bytes = std::fs::metadata(&seqdb_path).unwrap().len();

        let io_team = Team::new(Topology::edison(96));
        let (fq, fq_stats) = hipmer_seqio::read_fastq_parallel(&io_team, &fastq_path).unwrap();
        let (sq, sq_stats) = hipmer_seqio::read_seqdb_parallel(&io_team, &seqdb_path).unwrap();
        let a: Vec<_> = fq.into_iter().flatten().collect();
        let b: Vec<_> = sq.into_iter().flatten().collect();
        assert_eq!(a, b, "both readers must produce identical records");
        let t_fq = m.io_seconds(&Topology::edison(96), &fq_stats);
        let t_sq = m.io_seconds(&Topology::edison(96), &sq_stats);
        println!(
            "FASTQ : {:>9} bytes on disk, modeled parallel read {:.4} s",
            fastq_bytes, t_fq
        );
        println!(
            "SeqDB : {:>9} bytes on disk ({:.2}x smaller), modeled parallel read {:.4} s",
            seqdb_bytes,
            fastq_bytes as f64 / seqdb_bytes as f64,
            t_sq
        );
        println!("(same records either way; the gap is the compression factor, as the paper says)");
        std::fs::remove_dir_all(&dir).ok();
    }

    // ------------------------------------------------------------------
    banner(
        "Ablation 8",
        "read-side communication avoidance: seed-lookup batching + caching",
    );
    {
        use hipmer_align::{align_reads, AlignConfig};
        use hipmer_pgas::json::Value;

        let reads = human.all_reads();
        let variants = [
            ("no-batching", 1usize, 0usize),
            ("batch-only", 256, 0),
            ("batch+cache", 256, 4096),
        ];
        println!(
            "{:<12} {:>14} {:>12} {:>10} {:>12} {:>12}",
            "variant", "remote msgs", "off-node %", "batches", "cache hit %", "modeled (s)"
        );
        let mut rows: Vec<Value> = Vec::new();
        let mut baseline_alns: Option<Vec<hipmer_align::Alignment>> = None;
        for (label, lookup_batch, cache_entries) in variants {
            let mut acfg = AlignConfig::new(15);
            acfg.lookup_batch = lookup_batch;
            acfg.cache_entries = cache_entries;
            let (alns, reports) = align_reads(&team, &contigs, &reads, &acfg);
            // The optimizations must be result-transparent.
            match &baseline_alns {
                None => baseline_alns = Some(alns.clone()),
                Some(base) => assert_eq!(base, &alns, "alignments must not change"),
            }
            let align_phase = reports
                .iter()
                .find(|r| r.name == "scaffold/meraligner-align")
                .unwrap();
            let t = align_phase.totals();
            let secs: f64 = reports.iter().map(|r| r.modeled(&m).total()).sum();
            let probes = t.cache_hits + t.cache_misses;
            let hit_pct = if probes > 0 {
                100.0 * t.cache_hits as f64 / probes as f64
            } else {
                0.0
            };
            println!(
                "{:<12} {:>14} {:>11.1}% {:>10} {:>11.1}% {:>12.4}",
                label,
                t.remote_msgs(),
                100.0 * align_phase.offnode_fraction(),
                t.lookup_batches,
                hit_pct,
                secs
            );
            let mut row = Value::obj();
            row.set("variant", label)
                .set("lookup_batch", lookup_batch)
                .set("cache_entries", cache_entries)
                .set("alignments", alns.len())
                .set("remote_msgs", t.remote_msgs())
                .set("offnode_fraction", align_phase.offnode_fraction())
                .set("lookup_batches", t.lookup_batches)
                .set("cache_hits", t.cache_hits)
                .set("cache_misses", t.cache_misses)
                .set("modeled_seconds", secs);
            rows.push(row);
        }
        let mut doc = Value::obj();
        doc.set("bench", "lookup_avoidance")
            .set("ranks", ranks)
            .set("seed_len", 15usize)
            .set("rows", Value::Arr(rows));
        std::fs::write("BENCH_lookup_avoidance.json", doc.to_json()).unwrap();
        println!("(identical alignments in all three variants; wrote BENCH_lookup_avoidance.json)");
    }

    // ------------------------------------------------------------------
    banner(
        "Ablation 9",
        "fault tolerance: checkpoint + retry overhead vs a fault-free run",
    );
    {
        use hipmer::{run_assembly, PipelineConfig, RunOptions};
        use hipmer_pgas::json::Value;
        use hipmer_pgas::FaultPlan;

        let dataset = human_like_dataset(scaled(60_000), 14.0, true, 1009);
        let reads = dataset.all_reads();
        let mut lib_ranges = Vec::new();
        let mut start = 0usize;
        for lib in &dataset.reads_per_library {
            lib_ranges.push(start..start + lib.len());
            start += lib.len();
        }
        let cfg = PipelineConfig::new(k);
        let ft_topo = Topology::edison(96);
        let dir = std::env::temp_dir().join(format!("hipmer-ablation9-{}", std::process::id()));

        // variant label, checkpoint interval (0 = none), transient prob,
        // per-message retry budget, one-shot hard kill (rank, event).
        type FaultVariant = (&'static str, usize, f64, u32, Option<(usize, u64)>);
        let variants: [FaultVariant; 5] = [
            ("fault-free", 0, 0.0, 4, None),
            ("ckpt-every-stage", 1, 0.0, 4, None),
            ("ckpt-every-2nd", 2, 0.0, 4, None),
            ("transient-2e-3", 1, 2e-3, 4, None),
            ("kill+restart", 1, 2e-3, 4, Some((7, 500))),
        ];
        println!(
            "{:<16} {:>12} {:>10} {:>10} {:>12} {:>12}",
            "variant", "modeled (s)", "faults", "retries", "ckpt bytes", "re-execs"
        );
        let mut rows: Vec<Value> = Vec::new();
        let mut baseline_seqs: Option<Vec<Vec<u8>>> = None;
        let mut baseline_secs = 0.0f64;
        for (label, interval, transient, budget, kill) in variants {
            let team = if transient > 0.0 || kill.is_some() {
                let mut plan = FaultPlan::new(4242, ft_topo.ranks())
                    .with_transient(transient)
                    .with_max_retries(budget);
                if let Some((rank, event)) = kill {
                    plan = plan.with_rank_failure(rank, event);
                }
                Team::new(ft_topo).with_fault_plan(Arc::new(plan))
            } else {
                Team::new(ft_topo)
            };
            std::fs::remove_dir_all(&dir).ok();
            let opts = RunOptions {
                checkpoint_dir: (interval > 0).then(|| dir.clone()),
                checkpoint_interval: interval.max(1),
                stage_retries: 2,
                ..RunOptions::default()
            };
            let assembly = run_assembly(&team, &reads, &lib_ranges, &cfg, &opts)
                .expect("every variant must recover");
            // Fault tolerance must be result-transparent.
            match &baseline_seqs {
                None => baseline_seqs = Some(assembly.scaffolds.sequences.clone()),
                Some(base) => assert_eq!(
                    base, &assembly.scaffolds.sequences,
                    "assembly must be byte-identical under faults"
                ),
            }
            let secs = assembly.report.total_modeled(&m).total();
            if label == "fault-free" {
                baseline_secs = secs;
            }
            let totals: Vec<_> = assembly.report.phases.iter().map(|p| p.totals()).collect();
            let faults: u64 = totals.iter().map(|t| t.transient_faults).sum();
            let retries: u64 = totals.iter().map(|t| t.retries).sum();
            let ckpt_bytes: u64 = assembly
                .report
                .checkpoints
                .iter()
                .filter(|c| c.action == "save")
                .map(|c| c.bytes)
                .sum();
            let reexecs: u64 = assembly
                .report
                .stage_attempts
                .iter()
                .map(|a| a.executions.saturating_sub(1))
                .sum();
            println!(
                "{:<16} {:>12.4} {:>10} {:>10} {:>12} {:>12}",
                label, secs, faults, retries, ckpt_bytes, reexecs
            );
            let mut row = Value::obj();
            row.set("variant", label)
                .set("checkpoint_interval", interval)
                .set("transient_probability", transient)
                .set("retry_budget", budget as u64)
                .set("hard_kill", kill.is_some())
                .set("modeled_seconds", secs)
                .set("overhead_fraction", secs / baseline_secs - 1.0)
                .set("transient_faults", faults)
                .set("retries", retries)
                .set("checkpoint_bytes", ckpt_bytes)
                .set("stage_reexecutions", reexecs);
            rows.push(row);
        }
        std::fs::remove_dir_all(&dir).ok();
        let mut doc = Value::obj();
        doc.set("bench", "fault_overhead")
            .set("ranks", ft_topo.ranks())
            .set("k", k)
            .set("fault_seed", 4242u64)
            .set("rows", Value::Arr(rows));
        std::fs::write("BENCH_fault_overhead.json", doc.to_json()).unwrap();
        println!("(identical scaffolds in all five variants; wrote BENCH_fault_overhead.json)");
    }
}
