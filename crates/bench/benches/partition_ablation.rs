//! Partition ablation: uniform vs minimizer-bucketed k-mer ownership
//! (the tentpole experiment for communication-avoiding placement).
//!
//! The same read set is assembled at P ∈ {16, 64, 256} (8 ranks/node, so
//! every concurrency spans multiple nodes and off-node traffic is real)
//! under both `PartitionScheme`s, and three stages' off-node fractions are
//! recorded to `BENCH_partition.json`:
//!
//! 1. **K-mer analysis (count pass)**: expected to be placement-*neutral*
//!    in message counts — aggregating stores flush one message per full
//!    batch regardless of where keys live, so this row documents that the
//!    minimizer win is not an artifact of batch accounting.
//!
//! 2. **Contig traversal**: the headline. Minimizer bucketing co-locates
//!    each minimizer run of adjacent k-mers on one rank, and the
//!    cooperative traversal stops walks at ownership boundaries (the
//!    owning rank claims its own run locally; chain merging stitches the
//!    per-run subcontigs). Per-vertex remote claims collapse into
//!    rank-local ones, leaving ~two boundary probes per run.
//!
//! 3. **merAligner (seed index + align)**: adjacent stride seeds of a read
//!    share minimizer buckets, shrinking the distinct-owner set each
//!    read's lookup batch touches.
//!
//! Output must be **byte-identical** under the two schemes — asserted at
//! every concurrency for both the contig FASTA and the alignments. The
//! regression gate (CI runs it in fast mode): at every P the minimizer
//! traversal off-node fraction must undercut uniform by >= 25%.

use hipmer_align::{align_reads, AlignConfig};
use hipmer_bench::{banner, fast, scaled};
use hipmer_contig::{generate_contigs, ContigConfig};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::json::Value;
use hipmer_pgas::{PartitionScheme, PhaseReport, Team, Topology};
use hipmer_seqio::SeqRecord;

const RANKS_PER_NODE: usize = 8;
const K: usize = 31;
/// The gate: minimizer off-node fraction < uniform * (1 - REDUCTION).
const REDUCTION: f64 = 0.25;

fn lcg_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(x >> 60) as usize % 4]
        })
        .collect()
}

/// Perfect reads tiling the genome at ~4x depth.
fn tile_reads(genome: &[u8], read_len: usize) -> Vec<SeqRecord> {
    let mut out = Vec::new();
    for off in [0usize, read_len / 2] {
        let mut pos = off;
        while pos + read_len <= genome.len() {
            out.push(SeqRecord::with_uniform_quality(
                format!("r{pos}"),
                genome[pos..pos + read_len].to_vec(),
                35,
            ));
            pos += read_len / 2;
        }
    }
    out
}

struct Row {
    stage: &'static str,
    ranks: usize,
    partition: PartitionScheme,
    placement: String,
    offnode_fraction: f64,
    local_ops: u64,
    onnode_msgs: u64,
    offnode_msgs: u64,
}

fn row_json(r: &Row) -> Value {
    let mut v = Value::obj();
    v.set("stage", r.stage)
        .set("ranks", r.ranks)
        .set("partition", r.partition.to_string())
        .set("placement", r.placement.as_str())
        .set("offnode_fraction", r.offnode_fraction)
        .set("local_ops", r.local_ops)
        .set("onnode_msgs", r.onnode_msgs)
        .set("offnode_msgs", r.offnode_msgs);
    v
}

fn record(
    rows: &mut Vec<Row>,
    stage: &'static str,
    ranks: usize,
    scheme: PartitionScheme,
    report: &PhaseReport,
) -> f64 {
    let t = report.totals();
    let frac = report.offnode_fraction();
    rows.push(Row {
        stage,
        ranks,
        partition: scheme,
        placement: report.placement.clone().unwrap_or_default(),
        offnode_fraction: frac,
        local_ops: t.local_ops,
        onnode_msgs: t.onnode_msgs,
        offnode_msgs: t.offnode_msgs,
    });
    frac
}

fn find<'a>(reports: &'a [PhaseReport], name: &str) -> &'a PhaseReport {
    reports
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no phase named {name}"))
}

fn main() {
    banner(
        "Partition ablation",
        "uniform vs minimizer k-mer ownership: off-node traffic at identical output",
    );
    let concurrencies: Vec<usize> = if fast() { vec![16] } else { vec![16, 64, 256] };

    let genome = lcg_seq(scaled(60_000), 77);
    let reads = tile_reads(&genome, 100);
    println!(
        "workload: {} bp genome, {} perfect 100 bp reads (~4x), k = {K}",
        genome.len(),
        reads.len()
    );
    println!(
        "\n{:>7} {:>10} {:>24} {:>10} {:>10} {:>10}",
        "cores", "scheme", "stage", "off-node", "uniform", "cut"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut gates: Vec<Value> = Vec::new();
    for &ranks in &concurrencies {
        let topo = Topology::new(ranks, RANKS_PER_NODE);
        let team = Team::new(topo);

        let mut fasta: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut alignments = Vec::new();
        let mut traversal_frac = [0.0f64; 2];
        for (i, scheme) in [PartitionScheme::Uniform, PartitionScheme::Minimizer]
            .into_iter()
            .enumerate()
        {
            let mut kcfg = KmerAnalysisConfig::new(K);
            kcfg.partition = scheme;
            let (spectrum, kreports) = analyze_kmers(&team, &reads, &kcfg);
            record(
                &mut rows,
                "kmer-analysis/count",
                ranks,
                scheme,
                find(&kreports, "kmer-analysis/count"),
            );

            let mut ccfg = ContigConfig::new(K);
            ccfg.partition = scheme;
            let (contigs, creports) = generate_contigs(&team, &spectrum, &ccfg);
            traversal_frac[i] = record(
                &mut rows,
                "contig/traversal",
                ranks,
                scheme,
                find(&creports, "contig/traversal"),
            );

            let mut acfg = AlignConfig::new(15);
            acfg.partition = scheme;
            let (alns, areports) = align_reads(&team, &contigs, &reads, &acfg);
            for stage in ["scaffold/meraligner-index", "scaffold/meraligner-align"] {
                record(&mut rows, stage, ranks, scheme, find(&areports, stage));
            }

            fasta.push(contigs.contigs.iter().map(|c| c.seq.clone()).collect());
            alignments.push(alns);
        }

        // Hard correctness gate: the placement must be invisible in the
        // output, bytes included.
        assert_eq!(
            fasta[0], fasta[1],
            "partition schemes must emit byte-identical contigs at P={ranks}"
        );
        assert_eq!(
            alignments[0], alignments[1],
            "partition schemes must emit identical alignments at P={ranks}"
        );

        // Hard traffic gate: >= 25% off-node reduction on the traversal.
        let (uni, min) = (traversal_frac[0], traversal_frac[1]);
        println!(
            "{:>7} {:>10} {:>24} {:>10.3} {:>10.3} {:>9.0}%",
            ranks,
            "minimizer",
            "contig/traversal",
            min,
            uni,
            100.0 * (1.0 - min / uni.max(f64::MIN_POSITIVE))
        );
        assert!(
            min < uni * (1.0 - REDUCTION),
            "minimizer must cut traversal off-node fraction by >= {:.0}% at P={ranks}: {min:.3} vs uniform {uni:.3}",
            100.0 * REDUCTION
        );
        let mut g = Value::obj();
        g.set("ranks", ranks)
            .set("stage", "contig/traversal")
            .set("uniform_offnode_fraction", uni)
            .set("minimizer_offnode_fraction", min)
            .set("reduction", 1.0 - min / uni.max(f64::MIN_POSITIVE))
            .set("required_reduction", REDUCTION)
            .set("byte_identical_fasta", true)
            .set("identical_alignments", true);
        gates.push(g);
    }

    let mut doc = Value::obj();
    doc.set("schema_version", 1u64)
        .set("bench", "partition_ablation")
        .set("fast_mode", fast())
        .set("k", K as u64)
        .set("minimizer_len", hipmer_pgas::DEFAULT_MINIMIZER_LEN as u64)
        .set("ranks_per_node", RANKS_PER_NODE as u64)
        .set("gates", Value::Arr(gates))
        .set(
            "rows",
            Value::Arr(rows.iter().map(row_json).collect::<Vec<_>>()),
        );
    std::fs::write("BENCH_partition.json", doc.to_json()).unwrap();
    println!(
        "\n(byte-identical output under both partitions at every concurrency; wrote BENCH_partition.json)"
    );
}
