//! Scheduling ablation: static vs dynamic work dealing on deliberately
//! skewed workloads (the tentpole experiment for the dynamic scheduler).
//!
//! Two skew-prone stages are driven at P ∈ {4, 16, 64} under both
//! schedules, and the per-stage modeled **imbalance** (max over ranks of
//! priced seconds / mean) is recorded to `BENCH_scaling.json`:
//!
//! 1. **Cooperative traversal** under oracle placement of a long-tail
//!    contig population: one contig covers ~60% of the genome, so the
//!    oracle co-locates most of the graph on one rank. Static local-bucket
//!    seeding makes that rank walk its whole region alone; the dynamic
//!    schedule pools all seeds and deals them as guided chunks, so every
//!    rank walks a fair share (at the price of remote claims — the
//!    locality/balance trade-off is visible in the modeled seconds, which
//!    this bench records but does not gate on).
//!
//! 2. **Gap closing** on a gap population whose closure costs are
//!    long-tailed (a few junctions attract two orders of magnitude more
//!    candidate reads) *and* periodic: a heavy gap recurs every 16th
//!    junction, so static round-robin dealing resonates with the rank
//!    count and piles the heavy gaps onto few ranks. The dynamic schedule
//!    deals gaps as guided chunks weighted by flanking contig length (the
//!    locally computable cost proxy) and is immune to the resonance.
//!
//! Both stages must produce **byte-identical** output under the two
//! schedules — asserted here, at every concurrency. At P = 16 the dynamic
//! schedule must cut the modeled imbalance of both stages (asserted with
//! margin; these are the regression gates CI runs in fast mode).

use hipmer_bench::{banner, fast, model, scaled};
use hipmer_contig::{build_graph, build_oracle, traverse_graph, ContigConfig, ContigSet};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::json::Value;
use hipmer_pgas::{Partitioner, Placement, Schedule, Team, Topology};
use hipmer_scaffold::{close_gaps, GapCloseConfig, Scaffold, ScaffoldMember};
use hipmer_seqio::SeqRecord;
use std::sync::Arc;

fn lcg_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(x >> 60) as usize % 4]
        })
        .collect()
}

/// Tile a fragment with perfect reads (two offset passes ~ depth 4).
fn tile_reads(fragment: &[u8], read_len: usize, tag: &str, out: &mut Vec<SeqRecord>) {
    for off in [0usize, read_len / 2] {
        let mut pos = off;
        while pos + read_len <= fragment.len() {
            out.push(SeqRecord::with_uniform_quality(
                format!("{tag}_{pos}"),
                fragment[pos..pos + read_len].to_vec(),
                35,
            ));
            pos += read_len / 2;
        }
    }
}

struct Row {
    stage: &'static str,
    ranks: usize,
    schedule: Schedule,
    imbalance: f64,
    steal_ops: u64,
    modeled_seconds: f64,
}

fn row_json(r: &Row) -> Value {
    let mut v = Value::obj();
    v.set("stage", r.stage)
        .set("ranks", r.ranks)
        .set("schedule", r.schedule.to_string())
        .set("imbalance", r.imbalance)
        .set("steal_ops", r.steal_ops)
        .set("modeled_seconds", r.modeled_seconds);
    v
}

/// Traversal section: long-tail contigs + oracle placement.
fn traversal_rows(concurrencies: &[usize], rows: &mut Vec<Row>) {
    let m = model();
    let total = scaled(80_000);
    let giant_len = total * 60 / 100;
    let n_small = 32;
    let small_len = (total - giant_len) / n_small;

    // Long-tail fragment population: one giant + many small. Fragments
    // are unrelated random sequences, so each assembles into its own
    // contig and the oracle places each contig wholly on one rank.
    let mut fragments: Vec<Vec<u8>> = vec![lcg_seq(giant_len, 4242)];
    for i in 0..n_small {
        fragments.push(lcg_seq(small_len, 9000 + i as u64));
    }
    let mut reads = Vec::new();
    for (i, f) in fragments.iter().enumerate() {
        tile_reads(f, 100, &format!("f{i}"), &mut reads);
    }
    let k = 31;
    println!(
        "traversal workload: {} bp in {} fragments (giant = {} bp, {:.0}%), {} reads",
        total,
        fragments.len(),
        giant_len,
        100.0 * giant_len as f64 / total as f64,
        reads.len()
    );
    println!(
        "\n{:>7} {:>14} {:>14} {:>12} {:>14} {:>14}",
        "cores", "static imb", "dynamic imb", "steals", "static (s)", "dynamic (s)"
    );

    for &ranks in concurrencies {
        let topo = Topology::edison(ranks);
        let team = Team::new(topo);
        let (spectrum, _) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(k));

        // Draft assembly (cyclic) feeds the oracle, exactly as the oracle
        // benches do; the oracle then co-locates whole contigs.
        let cfg = ContigConfig::new(k);
        let (draft_graph, _) =
            build_graph(&team, &spectrum, Placement::Cyclic, Partitioner::Uniform);
        let (draft, _) = traverse_graph(&team, &draft_graph, &cfg);
        let oracle = Arc::new(build_oracle(&draft, &topo, (total / 2).next_power_of_two()));

        let mut sets: Vec<ContigSet> = Vec::new();
        let mut imb = [0.0f64; 2];
        let mut secs = [0.0f64; 2];
        let mut steals = 0u64;
        for (i, schedule) in [Schedule::Static, Schedule::Dynamic]
            .into_iter()
            .enumerate()
        {
            let mut ocfg = ContigConfig::new(k);
            ocfg.placement = oracle.clone().placement();
            ocfg.schedule = schedule;
            let (graph, _) = build_graph(
                &team,
                &spectrum,
                ocfg.placement.clone(),
                Partitioner::Uniform,
            );
            let (set, report) = traverse_graph(&team, &graph, &ocfg);
            imb[i] = report.imbalance(&m);
            secs[i] = report.modeled(&m).total();
            if schedule == Schedule::Dynamic {
                steals = report.totals().steal_ops;
            }
            rows.push(Row {
                stage: "contig/traversal",
                ranks,
                schedule,
                imbalance: imb[i],
                steal_ops: report.totals().steal_ops,
                modeled_seconds: secs[i],
            });
            sets.push(set);
        }
        let seqs =
            |s: &ContigSet| -> Vec<Vec<u8>> { s.contigs.iter().map(|c| c.seq.clone()).collect() };
        assert_eq!(
            seqs(&sets[0]),
            seqs(&sets[1]),
            "schedules must emit identical contigs at P={ranks}"
        );
        println!(
            "{:>7} {:>14.2} {:>14.2} {:>12} {:>14.4} {:>14.4}",
            ranks, imb[0], imb[1], steals, secs[0], secs[1]
        );
        if ranks == 16 {
            assert!(
                imb[1] < imb[0] * 0.6,
                "dynamic must cut traversal imbalance at P=16: {:.2} vs {:.2}",
                imb[1],
                imb[0]
            );
        }
    }
}

/// One junction of the gap-closing workload: two flanking contigs with a
/// 300 bp gap, tiled with reads whose density sets the closure cost.
#[allow(clippy::too_many_arguments)]
fn make_junction(
    a_len: usize,
    b_len: usize,
    read_step: usize,
    seed: u64,
    contig_seqs: &mut Vec<Vec<u8>>,
    members: &mut Vec<(usize, usize, i64)>,
    reads: &mut Vec<SeqRecord>,
    alignments: &mut Vec<(usize, u32, u32, u32, u32, u32)>,
) {
    const GAP: usize = 300;
    const READ_LEN: usize = 90;
    let a = lcg_seq(a_len, seed);
    let b = lcg_seq(b_len, seed.wrapping_mul(31) + 7);
    let mut genome = a.clone();
    genome.extend_from_slice(&lcg_seq(GAP, seed.wrapping_mul(17) + 3));
    genome.extend_from_slice(&b);

    let a_id = contig_seqs.len();
    contig_seqs.push(a);
    let b_id = contig_seqs.len();
    contig_seqs.push(b);
    members.push((a_id, b_id, GAP as i64));

    // Reads tile the junction region; denser tiling means more candidate
    // reads per gap and therefore a costlier closure.
    let lo = a_len.saturating_sub(200);
    let hi = a_len + GAP + 200.min(b_len) - READ_LEN;
    let mut pos = lo;
    while pos + READ_LEN <= hi + READ_LEN && pos + READ_LEN <= genome.len() {
        let idx = reads.len() as u32;
        reads.push(SeqRecord::with_uniform_quality(
            format!("j{seed}_{pos}"),
            genome[pos..pos + READ_LEN].to_vec(),
            35,
        ));
        // Alignment wherever the read overlaps a flanking contig.
        if pos < a_len {
            let ce = a_len.min(pos + READ_LEN);
            alignments.push((a_id, idx, 0, (ce - pos) as u32, pos as u32, ce as u32));
        }
        let b_start = a_len + GAP;
        if pos + READ_LEN > b_start {
            let rs = b_start.saturating_sub(pos);
            alignments.push((
                b_id,
                idx,
                rs as u32,
                READ_LEN as u32,
                (pos + rs - b_start) as u32,
                (pos + READ_LEN - b_start) as u32,
            ));
        }
        pos += read_step;
    }
}

/// Gap-closing section: long-tail closure costs with a heavy gap every
/// 16th junction (round-robin resonance).
fn gapclose_rows(concurrencies: &[usize], rows: &mut Vec<Row>) {
    use hipmer_align::Alignment;
    use hipmer_dna::KmerCodec;

    let m = model();
    const N_GAPS: usize = 80;
    const HEAVY_PERIOD: usize = 16;

    let mut contig_seqs: Vec<Vec<u8>> = Vec::new();
    let mut members: Vec<(usize, usize, i64)> = Vec::new();
    let mut reads: Vec<SeqRecord> = Vec::new();
    let mut raw_alns: Vec<(usize, u32, u32, u32, u32, u32)> = Vec::new();
    let mut n_heavy = 0usize;
    for j in 0..N_GAPS {
        let heavy = j % HEAVY_PERIOD == 0;
        n_heavy += heavy as usize;
        // Heavy junctions: 20 kb flanks, read every 2 bp (hundreds of
        // candidates). Light junctions: 1 kb flanks, read every 150 bp.
        let (len, step) = if heavy { (20_000, 2) } else { (1_000, 150) };
        make_junction(
            len,
            len,
            step,
            1000 + j as u64,
            &mut contig_seqs,
            &mut members,
            &mut reads,
            &mut raw_alns,
        );
    }
    println!(
        "\ngap-closing workload: {} gaps ({} heavy, one every {}th), {} reads",
        N_GAPS,
        n_heavy,
        HEAVY_PERIOD,
        reads.len()
    );

    // Assemble the pieces into the scaffolder's data model. `ContigSet`
    // keeps sequences as given, so ids can be resolved by equality.
    let contigs = ContigSet::from_sequences(KmerCodec::new(21), contig_seqs.clone());
    let id_of = |seq: &Vec<u8>| -> u32 {
        contigs.contigs.iter().position(|c| &c.seq == seq).unwrap() as u32
    };
    let scaffolds: Vec<Scaffold> = members
        .iter()
        .map(|&(a, b, gap)| Scaffold {
            members: vec![
                ScaffoldMember {
                    contig: id_of(&contig_seqs[a]),
                    reversed: false,
                    gap_before: 0,
                },
                ScaffoldMember {
                    contig: id_of(&contig_seqs[b]),
                    reversed: false,
                    gap_before: gap,
                },
            ],
        })
        .collect();
    let mut alignments: Vec<Alignment> = raw_alns
        .iter()
        .map(|&(cid, read, rs, re, cs, ce)| Alignment {
            read,
            contig: id_of(&contig_seqs[cid]),
            read_start: rs,
            read_end: re,
            contig_start: cs,
            contig_end: ce,
            rc: false,
            matches: re - rs,
            read_len: 90,
        })
        .collect();
    alignments.sort_by_key(|a| (a.read, a.contig, a.contig_start));

    println!(
        "{:>7} {:>14} {:>14} {:>12} {:>14} {:>14}",
        "cores", "static imb", "dynamic imb", "steals", "static (s)", "dynamic (s)"
    );
    for &ranks in concurrencies {
        let team = Team::new(Topology::edison(ranks));
        let mut outputs: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut imb = [0.0f64; 2];
        let mut secs = [0.0f64; 2];
        let mut steals = 0u64;
        for (i, schedule) in [Schedule::Static, Schedule::Dynamic]
            .into_iter()
            .enumerate()
        {
            let cfg = GapCloseConfig {
                schedule,
                ..Default::default()
            };
            let (set, _, report) =
                close_gaps(&team, &contigs, &scaffolds, &alignments, &reads, &cfg);
            imb[i] = report.imbalance(&m);
            secs[i] = report.modeled(&m).total();
            if schedule == Schedule::Dynamic {
                steals = report.totals().steal_ops;
            }
            rows.push(Row {
                stage: "scaffold/gap-closing",
                ranks,
                schedule,
                imbalance: imb[i],
                steal_ops: report.totals().steal_ops,
                modeled_seconds: secs[i],
            });
            outputs.push(set.sequences);
        }
        assert_eq!(
            outputs[0], outputs[1],
            "schedules must emit identical scaffolds at P={ranks}"
        );
        println!(
            "{:>7} {:>14.2} {:>14.2} {:>12} {:>14.4} {:>14.4}",
            ranks, imb[0], imb[1], steals, secs[0], secs[1]
        );
        if ranks == 16 {
            assert!(
                imb[1] < imb[0] * 0.8,
                "dynamic must cut gap-closing imbalance at P=16: {:.2} vs {:.2}",
                imb[1],
                imb[0]
            );
        }
    }
}

fn main() {
    banner(
        "Scheduling ablation",
        "static vs dynamic work dealing on skewed traversal + gap closing",
    );
    let concurrencies: Vec<usize> = if fast() { vec![16] } else { vec![4, 16, 64] };

    let mut rows: Vec<Row> = Vec::new();
    traversal_rows(&concurrencies, &mut rows);
    gapclose_rows(&concurrencies, &mut rows);

    let mut doc = Value::obj();
    doc.set("schema_version", 1u64)
        .set("bench", "scaling_schedule")
        .set("fast_mode", fast())
        .set(
            "rows",
            Value::Arr(rows.iter().map(row_json).collect::<Vec<_>>()),
        );
    std::fs::write("BENCH_scaling.json", doc.to_json()).unwrap();
    println!(
        "\n(identical outputs under both schedules at every concurrency; wrote BENCH_scaling.json)"
    );
}
