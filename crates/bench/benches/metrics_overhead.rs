//! Measures the disabled-path cost of the metrics registry — the contract
//! is one relaxed atomic load per call site, so instrumented hot loops
//! must run at effectively the uninstrumented speed when metrics are off
//! (the <5% bench-regression acceptance bar for the instrumentation PR).
//! Also reports the enabled-path cost for context (registry lock + map
//! probe; never on a hot path unless the user asked for metrics).
//!
//! `HIPMER_BENCH_FAST=1` shortens sampling; this bench prints a table and
//! asserts nothing timing-based (CI machines are too noisy to gate ns/op).

use hipmer_pgas::metrics;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Best-of-samples ns per call of `f` (min is robust to scheduler noise).
fn measure_ns(f: &mut dyn FnMut() -> u64) -> f64 {
    let (samples, iters) = if hipmer_bench::fast() {
        (3usize, 200_000u64)
    } else {
        (7usize, 2_000_000u64)
    };
    // Warm up.
    let warm = Instant::now();
    while warm.elapsed() < Duration::from_millis(20) {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best * 1e9
}

fn main() {
    metrics::disable();
    metrics::reset();

    // Baseline: the work a tight instrumented loop does around the hook.
    let mut x = 0u64;
    let base = measure_ns(&mut || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(9);
        x
    });

    // Disabled paths: one relaxed load + branch on top of the baseline.
    let mut x1 = 0u64;
    let counter_off = measure_ns(&mut || {
        x1 = x1.wrapping_mul(6364136223846793005).wrapping_add(9);
        metrics::counter_add("bench/counter", 1);
        x1
    });
    let mut x2 = 0u64;
    let observe_off = measure_ns(&mut || {
        x2 = x2.wrapping_mul(6364136223846793005).wrapping_add(9);
        metrics::observe("bench/hist", x2 & 0xffff);
        x2
    });

    // Enabled paths, for scale (registry mutex + BTreeMap probe).
    metrics::enable();
    let mut x3 = 0u64;
    let counter_on = measure_ns(&mut || {
        x3 = x3.wrapping_mul(6364136223846793005).wrapping_add(9);
        metrics::counter_add("bench/counter", 1);
        x3
    });
    let mut x4 = 0u64;
    let observe_on = measure_ns(&mut || {
        x4 = x4.wrapping_mul(6364136223846793005).wrapping_add(9);
        metrics::observe("bench/hist", x4 & 0xffff);
        x4
    });
    metrics::disable();
    metrics::reset();

    println!("metrics overhead (ns/op, best of samples):");
    println!("  baseline loop        {base:>8.2}");
    println!(
        "  counter_add disabled {counter_off:>8.2}  (+{:.2})",
        counter_off - base
    );
    println!(
        "  observe     disabled {observe_off:>8.2}  (+{:.2})",
        observe_off - base
    );
    println!("  counter_add enabled  {counter_on:>8.2}");
    println!("  observe     enabled  {observe_on:>8.2}");
}
