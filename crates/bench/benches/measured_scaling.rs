//! Measured strong scaling of the execution engine itself: real
//! wall-clock seconds of the full assembly pipeline at 1, 2, 4, and 8 OS
//! threads over a fixed 16-virtual-rank topology (DESIGN.md §12).
//!
//! Unlike every other harness in this crate — which prices paper-scale
//! topologies with the cost model — this bench's headline number is the
//! **measured** host wall-clock. The modeled time appears only as a
//! per-point `model_error` cross-check: the cost model is calibrated on
//! the single-thread run and each point then records the worst
//! compute-dominated relative error under that fitted model (report
//! schema v5 semantics, see `PipelineReport::model_errors`).
//!
//! Two invariants are hard-asserted, not just recorded:
//! * the output FASTA is byte-identical across every thread count
//!   (determinism under measured parallelism);
//! * every run uses identical inputs, so the wall-clock points are
//!   directly comparable.
//!
//! The checked-in `BENCH_measured.json` carries `host_parallelism`
//! (`std::thread::available_parallelism`) precisely because measured
//! speedup is a property of the host: a 1-core container cannot show a
//! 2× speedup no matter how good the engine is, and a reader (or a CI
//! gate) must interpret the speedup column against that field. CI
//! regenerates the artifact on its own runners and gates on the
//! speedup-*ratio* against this baseline, which is machine-independent
//! in the way raw seconds are not. `HIPMER_BENCH_FAST=1` shrinks the
//! genome and repeat count for CI smoke runs.

use hipmer::{assemble, PipelineConfig};
use hipmer_bench::{banner, lib_ranges, scaled};
use hipmer_pgas::{calib, json::Value, CostModel, PipelineReport, Team, Topology};
use hipmer_readsim::human_like_dataset;
use std::time::Instant;

/// Virtual ranks of every run: fixed so the algorithmic work (hashing,
/// routing, per-rank chunks) is identical and only OS-thread multiplexing
/// varies between points.
const RANKS: usize = 16;
const RANKS_PER_NODE: usize = 8;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// FNV-1a over the output bytes: cheap, dependency-free fingerprint for
/// the byte-identity assertion and the JSON artifact.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Render scaffolds exactly like the CLI does (`hipmer assemble -o`).
fn fasta_bytes(scaffolds: &[Vec<u8>]) -> Vec<u8> {
    let records: Vec<hipmer_seqio::SeqRecord> = scaffolds
        .iter()
        .enumerate()
        .map(|(i, s)| hipmer_seqio::SeqRecord::new(format!("scaffold_{i}"), s.clone()))
        .collect();
    let mut buf = Vec::new();
    hipmer_seqio::write_fasta(&mut buf, &records, 80).unwrap();
    buf
}

struct Point {
    threads: usize,
    wall_seconds: f64,
    fasta_fnv: u64,
    report: PipelineReport,
}

fn main() {
    banner(
        "Measured scaling",
        "real wall-clock of the pipeline at 1/2/4/8 OS threads, fixed 16-rank topology",
    );
    let fast = hipmer_bench::fast();
    let genome_bases = scaled(if fast { 40_000 } else { 120_000 });
    let repeats = if fast { 1 } else { 3 };
    let dataset = human_like_dataset(genome_bases, 10.0, true, 90_007);
    let reads = dataset.all_reads();
    let ranges = lib_ranges(&dataset);
    let cfg = PipelineConfig::new(31);
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "dataset: {} bp genome, {} reads; host parallelism {}; {} repeat(s)/point",
        dataset.total_genome_bases(),
        reads.len(),
        host_parallelism,
        repeats
    );
    println!(
        "{:>8} {:>12} {:>9} {:>18}",
        "threads", "wall (s)", "speedup", "fasta fnv64"
    );

    let mut points: Vec<Point> = Vec::new();
    for &threads in &THREADS {
        let mut best: Option<Point> = None;
        for _ in 0..repeats {
            let team = Team::new(Topology::new(RANKS, RANKS_PER_NODE)).with_os_threads(threads);
            let start = Instant::now();
            let assembly = assemble(&team, &reads, &ranges, &cfg);
            let wall = start.elapsed().as_secs_f64();
            let fnv = fnv64(&fasta_bytes(&assembly.scaffolds.sequences));
            if best.as_ref().map(|b| wall < b.wall_seconds).unwrap_or(true) {
                best = Some(Point {
                    threads,
                    wall_seconds: wall,
                    fasta_fnv: fnv,
                    report: assembly.report,
                });
            } else if let Some(b) = &best {
                assert_eq!(b.fasta_fnv, fnv, "output differs between repeats");
            }
        }
        let p = best.unwrap();
        let speedup = points
            .first()
            .map(|base| base.wall_seconds / p.wall_seconds)
            .unwrap_or(1.0);
        println!(
            "{:>8} {:>12.3} {:>8.2}x {:>18}",
            p.threads,
            p.wall_seconds,
            speedup,
            format!("{:016x}", p.fasta_fnv)
        );
        points.push(p);
    }

    // Determinism under measured parallelism: the assembled FASTA must be
    // byte-identical at every thread count.
    for p in &points[1..] {
        assert_eq!(
            p.fasta_fnv, points[0].fasta_fnv,
            "FASTA at {} threads differs from the 1-thread output",
            p.threads
        );
    }
    println!("FASTA byte-identical across all thread counts ✓");

    // Calibrate the cost model on the single-thread point (host wall time
    // is closest to per-rank stamped time there), then score every point
    // under the same fitted constants.
    let fitted = match calib::fit(&points[0].report, &CostModel::edison()) {
        Ok(c) => {
            println!(
                "calibrated on 1-thread run: {} observations, rms residual {:.3}",
                c.observations, c.rms_rel_residual
            );
            c.model
        }
        Err(e) => {
            println!("calibration failed ({e}); scoring with Edison constants");
            CostModel::edison()
        }
    };

    let mut doc = Value::obj();
    doc.set("schema_version", 1u64);
    doc.set("bench", "measured_scaling");
    doc.set("report_schema_version", 7u64);
    doc.set("fast_mode", fast);
    doc.set("host_parallelism", host_parallelism as u64);
    doc.set("ranks", RANKS as u64);
    doc.set("ranks_per_node", RANKS_PER_NODE as u64);
    doc.set("genome_bases", genome_bases as u64);
    doc.set("reads", reads.len() as u64);
    let base_wall = points[0].wall_seconds;
    let entries: Vec<Value> = points
        .iter()
        .map(|p| {
            let mut e = Value::obj();
            e.set("threads", p.threads as u64);
            e.set("wall_seconds", p.wall_seconds);
            e.set("speedup_vs_1t", base_wall / p.wall_seconds);
            e.set("fasta_fnv64", format!("{:016x}", p.fasta_fnv));
            // Worst compute-dominated phase error under the fitted model
            // (schema-v5 `model_errors` semantics).
            if let Some(err) = p.report.worst_model_error(&fitted, 0.5) {
                let mut m = Value::obj();
                m.set("phase", err.name.as_str());
                m.set("measured_seconds", err.measured_seconds);
                m.set("modeled_seconds", err.modeled_seconds);
                m.set("rel_error", err.rel_error);
                m.set("compute_fraction", err.compute_fraction);
                e.set("model_error", m);
            }
            e
        })
        .collect();
    doc.set("points", entries);
    std::fs::write("BENCH_measured.json", doc.to_json()).unwrap();
    println!(
        "wrote BENCH_measured.json ({} points, host parallelism {})",
        points.len(),
        host_parallelism
    );
    if host_parallelism < *THREADS.last().unwrap() {
        println!(
            "note: host exposes only {host_parallelism} CPU(s); speedups above that \
             thread count measure multiplexing overhead, not parallel capacity"
        );
    }
}
