//! Figure 7: strong scaling of scaffolding on human-like (left) and
//! wheat-like (right) data (§5.3).
//!
//! Decomposition per concurrency: merAligner / gap closing / remaining
//! scaffolding modules / overall. Shapes to reproduce:
//! * merAligner is the most expensive module and scales best;
//! * gap closing is I/O-and-latency bound and scales worst;
//! * wheat's "rest scaffolding" share is larger than human's (more
//!   fragmented contigs, and four scaffolding rounds with a relatively
//!   larger serial ordering/orientation component).

use hipmer::StageTimes;
use hipmer_bench::{banner, concurrencies, efficiency, lib_ranges, model, scaled};
use hipmer_contig::{generate_contigs, ContigConfig};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::{Team, Topology};
use hipmer_readsim::{human_like_dataset, wheat_scaffolding_dataset, Dataset};
use hipmer_scaffold::{scaffold_pipeline, ScaffoldConfig};

fn run(dataset: &Dataset, rounds: usize, label: &str) {
    let k = 31;
    let reads = dataset.all_reads();
    let ranges = lib_ranges(dataset);
    println!(
        "\n--- {label}: {} bp genome, {} reads, {} libraries, {} scaffolding round(s) ---",
        dataset.total_genome_bases(),
        reads.len(),
        dataset.libraries.len(),
        rounds
    );
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "cores", "merAligner", "gap-close", "rest", "overall", "eff"
    );
    let mut base: Option<(usize, f64)> = None;
    for ranks in concurrencies() {
        let team = Team::new(Topology::edison(ranks));
        let (spectrum, _) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(k));
        let (contigs, _) = generate_contigs(&team, &spectrum, &ContigConfig::new(k));
        let mut cfg = ScaffoldConfig::new(15);
        cfg.rounds = rounds;
        let out = scaffold_pipeline(&team, &spectrum, &contigs, &reads, &ranges, &cfg);
        let mut report = hipmer_pgas::PipelineReport::new();
        for p in out.reports {
            report.push(p);
        }
        let t = StageTimes::from_report(&report, &model());
        let overall = t.scaffolding();
        let eff = match base {
            None => {
                base = Some((ranks, overall));
                1.0
            }
            Some(b) => efficiency(b, (ranks, overall)),
        };
        println!(
            "{:>7} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>8.2}",
            ranks, t.meraligner, t.gap_closing, t.rest_scaffolding, overall, eff
        );
    }
}

fn main() {
    banner(
        "Figure 7",
        "scaffolding strong scaling: human-like (left) and wheat-like (right)",
    );
    let human = human_like_dataset(scaled(200_000), 14.0, true, 70_001);
    run(&human, 1, "human-like");
    let wheat = wheat_scaffolding_dataset(scaled(150_000), 12.0, true, 70_002);
    run(&wheat, 4, "wheat-like");
    println!("\npaper: human efficiencies 0.48 @7680 / 0.33 @15360 (vs 480);");
    println!("       wheat 0.61 / 0.37 (vs 960); merAligner scales best (0.64 @15360),");
    println!("       gap closing worst (0.19 @15360); wheat rest-share larger than human's.");
}
