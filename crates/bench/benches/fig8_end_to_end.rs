//! Figure 8: end-to-end strong scaling on human-like (left) and
//! wheat-like (right) data (§5.5).
//!
//! Decomposition: k-mer analysis / contig generation / scaffolding /
//! overall. Shapes to reproduce:
//! * overall speedup grows with concurrency (paper: 11.9× at 15,360 vs
//!   480 for human; 5.9× vs 960 for wheat);
//! * scaffolding dominates (68% at 960 cores for human), k-mer analysis
//!   second (28%), contig generation least (4%).

use hipmer::{assemble, PipelineConfig, StageTimes};
use hipmer_bench::{banner, concurrencies, lib_ranges, model, scaled};
use hipmer_pgas::{Team, Topology};
use hipmer_readsim::{human_like_dataset, wheat_scaffolding_dataset, Dataset};

fn run(dataset: &Dataset, cfg: &PipelineConfig, label: &str) {
    let reads = dataset.all_reads();
    let ranges = lib_ranges(dataset);
    println!(
        "\n--- {label}: {} bp genome, {} reads ---",
        dataset.total_genome_bases(),
        reads.len()
    );
    println!(
        "{:>7} {:>10} {:>10} {:>12} {:>10} {:>9} {:>9}",
        "cores", "kmer", "contig", "scaffold", "overall", "speedup", "N50"
    );
    let mut base: Option<f64> = None;
    for ranks in concurrencies() {
        let team = Team::new(Topology::edison(ranks));
        let assembly = assemble(&team, &reads, &ranges, cfg);
        let t = StageTimes::from_report(&assembly.report, &model());
        let overall = t.total();
        let speedup = match base {
            None => {
                base = Some(overall);
                1.0
            }
            Some(b) => b / overall,
        };
        println!(
            "{:>7} {:>10.3} {:>10.3} {:>12.3} {:>10.3} {:>8.1}x {:>9}",
            ranks,
            t.kmer_analysis,
            t.contig_generation,
            t.scaffolding(),
            overall,
            speedup,
            assembly.stats.scaffold_n50
        );
    }
}

fn main() {
    banner(
        "Figure 8",
        "end-to-end strong scaling: human-like (left) and wheat-like (right)",
    );
    let human = human_like_dataset(scaled(200_000), 14.0, true, 80_001);
    run(&human, &PipelineConfig::new(31), "human-like");
    let wheat = wheat_scaffolding_dataset(scaled(150_000), 12.0, true, 80_002);
    run(&wheat, &PipelineConfig::wheat_preset(31), "wheat-like");
    println!("\npaper: human 11.9x @15360 vs 480 (8.4 minutes end-to-end);");
    println!("       wheat 5.9x @15360 vs 960 (39 minutes); at 960 cores human spends");
    println!("       68% in scaffolding, 28% in k-mer analysis, 4% in contig generation.");
}
