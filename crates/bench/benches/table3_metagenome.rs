//! Table 3: k-mer analysis and contig generation on the wetlands
//! metagenome at 10K and 20K cores (§5.4).
//!
//! Shapes to reproduce:
//! * k-mer analysis and contig generation both scale from 10K to 20K;
//! * file I/O is flat (saturated at both concurrencies);
//! * the k-mer spectrum is much flatter than a single genome's — the
//!   paper reports only 36% singleton k-mers (vs 95% for human), which
//!   weakens the Bloom filter's memory savings;
//! * scaffolding is skipped (single-genome logic would mis-scaffold a
//!   metagenome).
//!
//! Second half: MetaHipMer-style **multi-k rounds** on a repeat-bearing
//! community — per-species genome fraction (QUAST-style, contigs >= 500 bp)
//! after each round, gated so the weakest-abundance quartile improves
//! strictly from round 1 to the final round. Results land in
//! `BENCH_metagenome.json`.

use hipmer::{evaluate, PipelineConfig};
use hipmer_bench::{banner, fast, model, phase_seconds, scaled};
use hipmer_contig::{generate_contigs, ContigConfig};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::json::Value;
use hipmer_pgas::{CommStats, RankCtx, Team, Topology};
use hipmer_readsim::{
    human_like_dataset, metagenome_dataset, metagenome_repeats, metagenome_repeats_dataset,
};
use hipmer_seqio::SeqRecord;

fn main() {
    banner(
        "Table 3",
        "metagenome k-mer analysis + contig generation at 10K/20K cores",
    );
    let total_len = scaled(if fast() { 200_000 } else { 600_000 });
    let species = if fast() { 24 } else { 60 };
    let dataset = metagenome_dataset(total_len, species, 10.0, true, 31_337);
    let reads = dataset.all_reads();
    let read_bytes = 2 * dataset.total_read_bases() as u64;
    println!(
        "community: {} species, {} bp total, {} reads",
        species,
        dataset.total_genome_bases(),
        reads.len()
    );

    let k = 31;
    let m = model();
    // Paper: 10K and 20K cores on 1.25 Tbase. Same one-doubling contrast
    // at a concurrency matched to our data volume.
    let concurrencies: Vec<usize> = if fast() { vec![64] } else { vec![128, 256] };

    println!(
        "\n{:>7} {:>16} {:>18} {:>10}",
        "cores", "k-mer analysis", "contig generation", "file I/O"
    );
    let mut spectra_singleton = None;
    for &ranks in &concurrencies {
        let team = Team::new(Topology::edison(ranks));
        let (spectrum, kreports) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(k));
        let (_contigs, creports) = generate_contigs(&team, &spectrum, &ContigConfig::new(k));
        let kmer_s = phase_seconds(&kreports, "kmer-analysis");
        let contig_s = phase_seconds(&creports, "contig");
        let topo = Topology::edison(ranks);
        let per = read_bytes / ranks as u64;
        let io_stats: Vec<CommStats> = (0..ranks)
            .map(|_| CommStats {
                io_read_bytes: per,
                ..CommStats::default()
            })
            .collect();
        let io_s = m.io_seconds(&topo, &io_stats);
        println!(
            "{:>7} {:>16.3} {:>18.3} {:>10.3}",
            ranks, kmer_s, contig_s, io_s
        );

        if spectra_singleton.is_none() {
            let mut ctx0 = RankCtx::new(0, topo);
            let mut hist = spectrum.count_histogram(&mut ctx0, 1000);
            for r in 1..ranks.min(64) {
                let mut ctx = RankCtx::new(r, topo);
                hist.merge(&spectrum.count_histogram(&mut ctx, 1000));
            }
            spectra_singleton = Some(hist);
        }
    }

    // Spectrum-shape commentary: metagenome vs a single genome at the same
    // coverage. (Counts below min_count were already dropped, so compare
    // the low-count mass: metagenome has far more barely-covered k-mers.)
    if let Some(meta_hist) = spectra_singleton {
        let human = human_like_dataset(total_len / 2, 10.0, true, 31_338);
        let team = Team::new(Topology::single_node(8));
        let (spectrum_h, _) = analyze_kmers(&team, &human.all_reads(), &KmerAnalysisConfig::new(k));
        let mut hist_h = spectrum_h.count_histogram(&mut RankCtx::new(0, *team.topo()), 1000);
        for r in 1..8 {
            hist_h.merge(&spectrum_h.count_histogram(&mut RankCtx::new(r, *team.topo()), 1000));
        }
        let low_mass = |h: &hipmer_sketch::CountHistogram| -> f64 {
            let low: u64 = (0..=3u64).map(|v| h.bin(v).unwrap_or(0)).sum();
            low as f64 / h.count().max(1) as f64
        };
        println!(
            "\nspectrum shape: metagenome low-count (<=3) k-mer fraction {:.1}% vs human-like {:.1}%",
            100.0 * low_mass(&meta_hist),
            100.0 * low_mass(&hist_h)
        );
        println!("(paper: 36% of metagenome k-mers are singletons vs 95% for human,");
        println!(" so Bloom filters save much less memory on metagenomes)");
    }
    println!("\npaper Table 3: 776/525s k-mer analysis, 47.8/31.0s contigs, ~93/95s flat I/O at 10K/20K.");

    multi_k_rounds();
}

/// MetaHipMer multi-k rounds: assemble a repeat-bearing community at
/// increasing k, feeding each round's contigs forward as pseudo-reads, and
/// measure per-species genome fraction (contigs >= MIN_CONTIG, evaluated at
/// a fixed small k) after every round.
///
/// Why the weakest quartile improves: at k=21 every genome fragments at its
/// 30 bp repeat copies into ~block-sized contigs below the 500 bp reporting
/// floor. Later rounds at k > 30 walk straight through each copy — but a
/// low-abundance species' raw 33/55-mers mostly fall below min_count, so
/// only the pseudo-read backbone (injected at count 2) keeps its small-k
/// content alive while real reads supply the junction k-mers. That is the
/// MetaHipMer iteration in miniature.
fn multi_k_rounds() {
    const REPEAT_LEN: usize = 30;
    const UNIQUE_BLOCK: usize = 300;
    const MIN_CONTIG: usize = 500; // QUAST-style reporting floor
    const EVAL_K: usize = 21; // fixed eval k so rounds are comparable

    let ks: Vec<usize> = if fast() {
        vec![21, 33]
    } else {
        vec![21, 33, 55]
    };
    let total_len = scaled(240_000);
    let species = 24;
    // Higher than the timing sweep's 10x: the weakest-abundance quartile
    // must land at ~3-7x, where only the pseudo-read backbone makes the
    // larger-k rounds assemble anything at all.
    let mean_cov = 30.0;
    let seed = 4242;

    println!("\n== MetaHipMer multi-k rounds (k schedule {ks:?}) ==");
    let community = metagenome_repeats(total_len, species, REPEAT_LEN, UNIQUE_BLOCK, seed);
    let dataset = metagenome_repeats_dataset(
        total_len,
        species,
        REPEAT_LEN,
        UNIQUE_BLOCK,
        mean_cov,
        true,
        seed,
    );
    let reads = dataset.all_reads();
    let read_len = dataset.libraries[0].read_len as f64;
    println!(
        "community: {species} species, {} bp, {} reads ({} bp repeats / ~{} bp unique blocks)",
        dataset.total_genome_bases(),
        reads.len(),
        REPEAT_LEN,
        UNIQUE_BLOCK
    );

    let team = Team::new(Topology::edison(64));
    let cfg = PipelineConfig::metagenome_preset(*ks.last().unwrap())
        .try_multi_k(&ks)
        .expect("valid multi-k schedule");

    // Mirror run_assembly's round loop: non-final rounds prune low-depth
    // hairs; the final round uses the verbatim stage configs; contigs feed
    // forward as duplicated pseudo-reads at uniform Q40.
    let mut per_round: Vec<Vec<f64>> = Vec::new();
    let mut contig_counts: Vec<usize> = Vec::new();
    let mut round_reads: Vec<SeqRecord> = Vec::new();
    for (ri, &k) in ks.iter().enumerate() {
        let round = ri + 1;
        let is_final = round == ks.len();
        let (ka_cfg, contig_cfg) = if is_final {
            (cfg.kanalysis.clone(), cfg.contig.clone())
        } else {
            cfg.round_stage_configs(k)
        };
        let input: &[SeqRecord] = if round == 1 { &reads } else { &round_reads };
        let (spectrum, _) = analyze_kmers(&team, input, &ka_cfg);
        let (contigs, _) = generate_contigs(&team, &spectrum, &contig_cfg);
        let big: Vec<Vec<u8>> = contigs
            .contigs
            .iter()
            .filter(|c| c.seq.len() >= MIN_CONTIG)
            .map(|c| c.seq.clone())
            .collect();
        let fractions: Vec<f64> = community
            .iter()
            .map(|(g, _)| evaluate(&[g.reference()], &big, EVAL_K).genome_fraction)
            .collect();
        println!(
            "round {round} (k={k}): {} contigs ({} >= {MIN_CONTIG} bp)",
            contigs.contigs.len(),
            big.len()
        );
        per_round.push(fractions);
        contig_counts.push(contigs.contigs.len());
        if !is_final {
            round_reads = reads.clone();
            for c in &contigs.contigs {
                let rec = SeqRecord::with_uniform_quality(
                    format!("pseudo{round}:{}", c.id),
                    c.seq.clone(),
                    40,
                );
                round_reads.push(rec.clone());
                round_reads.push(rec);
            }
        }
    }

    // Per-species coverage mirrors metagenome_repeats_dataset; the weakest
    // quartile is taken over species that actually received reads.
    let coverages: Vec<f64> = community
        .iter()
        .map(|(_, ab)| mean_cov * ab * species as f64)
        .collect();
    let mut covered: Vec<usize> = (0..species)
        .filter(|&i| coverages[i] * community[i].0.reference_len() as f64 >= 2.0 * read_len)
        .collect();
    covered.sort_by(|&a, &b| community[a].1.total_cmp(&community[b].1));
    let q_len = (covered.len() / 4).max(1);
    let weak_q = &covered[..q_len];
    let quartile_mean =
        |fr: &[f64]| -> f64 { weak_q.iter().map(|&i| fr[i]).sum::<f64>() / q_len as f64 };
    let covered_mean =
        |fr: &[f64]| -> f64 { covered.iter().map(|&i| fr[i]).sum::<f64>() / covered.len() as f64 };

    println!(
        "\n{:>6} {:>3} {:>9} {:>22} {:>18}",
        "round", "k", "contigs", "weak-quartile fraction", "community fraction"
    );
    for (ri, fr) in per_round.iter().enumerate() {
        println!(
            "{:>6} {:>3} {:>9} {:>22.4} {:>18.4}",
            ri + 1,
            ks[ri],
            contig_counts[ri],
            quartile_mean(fr),
            covered_mean(fr)
        );
    }

    // Gates: per-round monotone non-decreasing for the weakest-abundance
    // quartile, strictly improving from round 1 to the final round.
    let weak: Vec<f64> = per_round.iter().map(|fr| quartile_mean(fr)).collect();
    for w in weak.windows(2) {
        assert!(
            w[1] >= w[0] - 1e-3,
            "weak-quartile genome fraction regressed between rounds: {weak:?}"
        );
    }
    let improvement = weak[weak.len() - 1] - weak[0];
    assert!(
        improvement > 0.05,
        "multi-k rounds must strictly improve the weakest quartile \
         (round 1 {:.4} -> final {:.4})",
        weak[0],
        weak[weak.len() - 1]
    );
    println!(
        "\nweak-quartile genome fraction: round 1 {:.4} -> final {:.4} (+{:.4})",
        weak[0],
        weak[weak.len() - 1],
        improvement
    );

    // BENCH_metagenome.json, in the BENCH_partition.json idiom: a gates
    // array CI compares against the checked-in baseline, plus per-round and
    // per-species rows for inspection.
    let mut gate = Value::obj();
    gate.set("name", "weak_quartile_improvement")
        .set("rounds", ks.len() as f64)
        .set("round1_fraction", weak[0])
        .set("final_fraction", weak[weak.len() - 1])
        .set("improvement", improvement);
    let rounds: Vec<Value> = per_round
        .iter()
        .enumerate()
        .map(|(ri, fr)| {
            let mut v = Value::obj();
            v.set("round", (ri + 1) as f64)
                .set("k", ks[ri] as f64)
                .set("contigs", contig_counts[ri] as f64)
                .set("weak_quartile_fraction", quartile_mean(fr))
                .set("community_fraction", covered_mean(fr));
            v
        })
        .collect();
    let species_rows: Vec<Value> = covered
        .iter()
        .map(|&i| {
            let mut v = Value::obj();
            v.set("species", i as f64)
                .set("abundance", community[i].1)
                .set("coverage", coverages[i])
                .set("genome_len", community[i].0.reference_len() as f64)
                .set(
                    "fractions",
                    Value::Arr(per_round.iter().map(|fr| fr[i].into()).collect()),
                );
            v
        })
        .collect();
    let mut doc = Value::obj();
    doc.set("schema_version", 1.0)
        .set("bench", "table3_metagenome")
        .set("fast_mode", fast())
        .set(
            "k_schedule",
            Value::Arr(ks.iter().map(|&k| (k as f64).into()).collect()),
        )
        .set("species", species as f64)
        .set("total_len", total_len as f64)
        .set("min_contig", MIN_CONTIG as f64)
        .set("eval_k", EVAL_K as f64)
        .set("gates", Value::Arr(vec![gate]))
        .set("rounds", Value::Arr(rounds))
        .set("species_rows", Value::Arr(species_rows));
    std::fs::write("BENCH_metagenome.json", doc.to_json()).unwrap();
    println!("wrote BENCH_metagenome.json");
}
