//! Table 3: k-mer analysis and contig generation on the wetlands
//! metagenome at 10K and 20K cores (§5.4).
//!
//! Shapes to reproduce:
//! * k-mer analysis and contig generation both scale from 10K to 20K;
//! * file I/O is flat (saturated at both concurrencies);
//! * the k-mer spectrum is much flatter than a single genome's — the
//!   paper reports only 36% singleton k-mers (vs 95% for human), which
//!   weakens the Bloom filter's memory savings;
//! * scaffolding is skipped (single-genome logic would mis-scaffold a
//!   metagenome).

use hipmer_bench::{banner, model, phase_seconds, scaled};
use hipmer_contig::{generate_contigs, ContigConfig};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::{CommStats, RankCtx, Team, Topology};
use hipmer_readsim::{human_like_dataset, metagenome_dataset};

fn main() {
    banner(
        "Table 3",
        "metagenome k-mer analysis + contig generation at 10K/20K cores",
    );
    let total_len = scaled(600_000);
    let species = 60;
    let dataset = metagenome_dataset(total_len, species, 10.0, true, 31_337);
    let reads = dataset.all_reads();
    let read_bytes = 2 * dataset.total_read_bases() as u64;
    println!(
        "community: {} species, {} bp total, {} reads",
        species,
        dataset.total_genome_bases(),
        reads.len()
    );

    let k = 31;
    let m = model();
    // Paper: 10K and 20K cores on 1.25 Tbase. Same one-doubling contrast
    // at a concurrency matched to our data volume.
    let concurrencies: Vec<usize> = vec![128, 256];

    println!(
        "\n{:>7} {:>16} {:>18} {:>10}",
        "cores", "k-mer analysis", "contig generation", "file I/O"
    );
    let mut spectra_singleton = None;
    for &ranks in &concurrencies {
        let team = Team::new(Topology::edison(ranks));
        let (spectrum, kreports) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(k));
        let (_contigs, creports) = generate_contigs(&team, &spectrum, &ContigConfig::new(k));
        let kmer_s = phase_seconds(&kreports, "kmer-analysis");
        let contig_s = phase_seconds(&creports, "contig");
        let topo = Topology::edison(ranks);
        let per = read_bytes / ranks as u64;
        let io_stats: Vec<CommStats> = (0..ranks)
            .map(|_| CommStats {
                io_read_bytes: per,
                ..CommStats::default()
            })
            .collect();
        let io_s = m.io_seconds(&topo, &io_stats);
        println!(
            "{:>7} {:>16.3} {:>18.3} {:>10.3}",
            ranks, kmer_s, contig_s, io_s
        );

        if spectra_singleton.is_none() {
            let mut ctx0 = RankCtx::new(0, topo);
            let mut hist = spectrum.count_histogram(&mut ctx0, 1000);
            for r in 1..ranks.min(64) {
                let mut ctx = RankCtx::new(r, topo);
                hist.merge(&spectrum.count_histogram(&mut ctx, 1000));
            }
            spectra_singleton = Some(hist);
        }
    }

    // Spectrum-shape commentary: metagenome vs a single genome at the same
    // coverage. (Counts below min_count were already dropped, so compare
    // the low-count mass: metagenome has far more barely-covered k-mers.)
    if let Some(meta_hist) = spectra_singleton {
        let human = human_like_dataset(total_len / 2, 10.0, true, 31_338);
        let team = Team::new(Topology::single_node(8));
        let (spectrum_h, _) = analyze_kmers(&team, &human.all_reads(), &KmerAnalysisConfig::new(k));
        let mut hist_h = spectrum_h.count_histogram(&mut RankCtx::new(0, *team.topo()), 1000);
        for r in 1..8 {
            hist_h.merge(&spectrum_h.count_histogram(&mut RankCtx::new(r, *team.topo()), 1000));
        }
        let low_mass = |h: &hipmer_sketch::CountHistogram| -> f64 {
            let low: u64 = (0..=3u64).map(|v| h.bin(v).unwrap_or(0)).sum();
            low as f64 / h.count().max(1) as f64
        };
        println!(
            "\nspectrum shape: metagenome low-count (<=3) k-mer fraction {:.1}% vs human-like {:.1}%",
            100.0 * low_mass(&meta_hist),
            100.0 * low_mass(&hist_h)
        );
        println!("(paper: 36% of metagenome k-mers are singletons vs 95% for human,");
        println!(" so Bloom filters save much less memory on metagenomes)");
    }
    println!("\npaper Table 3: 776/525s k-mer analysis, 47.8/31.0s contigs, ~93/95s flat I/O at 10K/20K.");
}
