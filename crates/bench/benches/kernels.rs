//! Criterion microbenchmarks of the single-node kernels: real wall-clock
//! numbers for the primitives the cost model abstracts (packed k-mer ops,
//! hashing, Bloom/Misra–Gries streaming, the Smith–Waterman extension,
//! and distributed-hash-table operations).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hipmer_align::{banded_sw, SwParams};
use hipmer_dna::{mix128, Kmer, KmerCodec};
use hipmer_pgas::{DistHashMap, RankCtx, Team, Topology};
use hipmer_sketch::{BloomFilter, HyperLogLog, MisraGries};

fn lcg_seq(len: usize, mut x: u64) -> Vec<u8> {
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(9);
            b"ACGT"[(x >> 60) as usize % 4]
        })
        .collect()
}

fn bench_kmers(c: &mut Criterion) {
    let codec = KmerCodec::new(31);
    let seq = lcg_seq(100_000, 1);
    let mut g = c.benchmark_group("kmer");
    g.throughput(Throughput::Elements((seq.len() - 30) as u64));
    g.bench_function("pack_iterate_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (_, km) in codec.kmers(&seq) {
                acc ^= km.bits() as u64;
            }
            black_box(acc)
        })
    });
    g.bench_function("canonicalize_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (_, km) in codec.kmers(&seq) {
                acc ^= codec.canonical(km).bits() as u64;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_hash_and_sketches(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketch");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("mix128_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100_000u128 {
                acc ^= mix128(black_box(i));
            }
            black_box(acc)
        })
    });
    g.bench_function("bloom_insert_100k", |b| {
        b.iter(|| {
            let mut f = BloomFilter::with_rate(100_000, 0.05);
            for i in 0..100_000u64 {
                f.insert(hipmer_dna::mix64(i));
            }
            black_box(f.inserted())
        })
    });
    g.bench_function("hll_observe_100k", |b| {
        b.iter(|| {
            let mut h = HyperLogLog::new(14);
            for i in 0..100_000u64 {
                h.observe(hipmer_dna::mix64(i));
            }
            black_box(h.estimate())
        })
    });
    g.bench_function("misra_gries_100k_theta1k", |b| {
        b.iter(|| {
            let mut mg: MisraGries<u64> = MisraGries::new(1_000);
            for i in 0..100_000u64 {
                mg.observe(i % 7_919);
            }
            black_box(mg.stream_len())
        })
    });
    g.finish();
}

fn bench_sw(c: &mut Criterion) {
    let a = lcg_seq(200, 3);
    let mut b2 = a.clone();
    b2[50] = b'A';
    b2[150] = b'C';
    let mut g = c.benchmark_group("align");
    g.bench_function("banded_sw_200bp", |b| {
        b.iter(|| black_box(banded_sw(&a, &b2, &SwParams::default())))
    });
    g.finish();
}

fn bench_dht(c: &mut Criterion) {
    let topo = Topology::new(16, 8);
    let _team = Team::new(topo);
    let mut g = c.benchmark_group("dht");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("update_10k", |b| {
        b.iter(|| {
            let dht: DistHashMap<Kmer, u32> = DistHashMap::new(topo);
            let mut ctx = RankCtx::new(0, topo);
            for i in 0..10_000u128 {
                dht.update(&mut ctx, Kmer(i), || 0, |v| *v += 1);
            }
            black_box(dht.len())
        })
    });
    g.bench_function("get_10k", |b| {
        let dht: DistHashMap<Kmer, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        for i in 0..10_000u128 {
            dht.insert(&mut ctx, Kmer(i), i as u32);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u128 {
                acc += dht.get(&mut ctx, &Kmer(i)).unwrap_or(0) as u64;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kmers, bench_hash_and_sketches, bench_sw, bench_dht
}
criterion_main!(benches);
