//! Criterion microbenchmarks of the single-node kernels: real wall-clock
//! numbers for the primitives the cost model abstracts (packed k-mer ops,
//! hashing, Bloom/Misra–Gries streaming, the Smith–Waterman extension,
//! and distributed-hash-table operations).
//!
//! Besides the plain criterion benches, the `before_after` target measures
//! every optimized kernel of the hot-kernel performance pass against the
//! in-tree reference implementation it replaced (which the differential
//! property tests pin it result-identical to) and writes the ns/op pairs
//! to `BENCH_kernels.json` — the perf baseline every future PR is compared
//! against (CI fails on >25% regression). `HIPMER_BENCH_FAST=1` shortens
//! the sampling for CI.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hipmer_align::{
    banded_sw_reference, banded_sw_with, ungapped_matches, ungapped_matches_reference, SwParams,
    SwWorkspace,
};
use hipmer_dna::{mix128, Kmer, KmerCodec};
use hipmer_pgas::{json::Value, DistHashMap, RankCtx, Team, Topology};
use hipmer_seqio::fastq::parse_fastq_reference;
use hipmer_seqio::{parse_fastq, write_fastq, SeqRecord};
use hipmer_sketch::{BloomFilter, HyperLogLog, MisraGries};
use std::time::{Duration, Instant};

fn lcg_seq(len: usize, mut x: u64) -> Vec<u8> {
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(9);
            b"ACGT"[(x >> 60) as usize % 4]
        })
        .collect()
}

// ---------------------------------------------------------------------
// Before/after measurement of the optimized kernels vs their references.
// ---------------------------------------------------------------------

/// Best-of-samples ns per call of `f` (min is robust against scheduler
/// noise, which is what a regression gate wants).
fn measure_ns<T>(f: &mut dyn FnMut() -> T) -> f64 {
    let (warm, samples, budget) = if hipmer_bench::fast() {
        (Duration::from_millis(30), 3usize, Duration::from_millis(90))
    } else {
        (
            Duration::from_millis(300),
            10usize,
            Duration::from_millis(1500),
        )
    };
    let warm_start = Instant::now();
    let mut batch = 1u64;
    let mut per = loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let t = start.elapsed();
        if warm_start.elapsed() >= warm {
            break t.as_secs_f64() / batch as f64;
        }
        if t < Duration::from_millis(1) {
            batch = batch.saturating_mul(2);
        }
    };
    if per <= 0.0 {
        per = 1e-9;
    }
    let iters = ((budget.as_secs_f64() / samples as f64 / per).ceil() as u64).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best * 1e9
}

struct Pair {
    name: &'static str,
    unit: &'static str,
    before_ns: f64,
    after_ns: f64,
}

fn run_pair<T: PartialEq + std::fmt::Debug>(
    name: &'static str,
    unit: &'static str,
    mut before: impl FnMut() -> T,
    mut after: impl FnMut() -> T,
) -> Pair {
    assert_eq!(
        before(),
        after(),
        "{name}: optimized kernel diverged from reference"
    );
    let before_ns = measure_ns(&mut before);
    let after_ns = measure_ns(&mut after);
    println!(
        "kernel {name:<28} before {before_ns:>12.1} ns/{unit}, after {after_ns:>12.1} ns/{unit}, speedup {:>5.2}x",
        before_ns / after_ns
    );
    Pair {
        name,
        unit,
        before_ns,
        after_ns,
    }
}

fn fastq_corpus(records: usize) -> Vec<u8> {
    let recs: Vec<SeqRecord> = (0..records)
        .map(|i| {
            let len = 80 + (i * 17) % 70;
            SeqRecord::with_uniform_quality(
                format!("read{i}/1 lib=A pos={}", i * 31),
                lcg_seq(len, i as u64 + 7),
                35,
            )
        })
        .collect();
    let mut buf = Vec::new();
    write_fastq(&mut buf, &recs).unwrap();
    buf
}

fn bench_before_after(_c: &mut Criterion) {
    // Fast mode shrinks only the sampling windows (see `measure_ns`), not
    // the inputs: CI compares quick-mode speedups against the checked-in
    // full-mode baseline, so the per-iteration work must be identical.
    let fast = hipmer_bench::fast();
    let mut pairs = Vec::new();

    // Banded Smith–Waterman, 200 bp read-vs-contig with two substitutions
    // and one indel: the general banded path (dense matrix vs two rolling
    // rows + banded traceback).
    {
        let a = lcg_seq(200, 3);
        let mut b = a.clone();
        b[50] = match b[50] {
            b'A' => b'C',
            _ => b'A',
        };
        b[150] = match b[150] {
            b'G' => b'T',
            _ => b'G',
        };
        b.remove(100);
        let p = SwParams::default();
        let mut ws = SwWorkspace::new();
        pairs.push(run_pair(
            "banded_sw_200bp",
            "call",
            || banded_sw_reference(&a, &b, &p),
            || banded_sw_with(&mut ws, &a, &b, &p),
        ));

        // Perfect overlap: the bit-parallel diagonal fast path.
        let mut ws = SwWorkspace::new();
        pairs.push(run_pair(
            "banded_sw_200bp_perfect",
            "call",
            || banded_sw_reference(&a, &a, &p),
            || banded_sw_with(&mut ws, &a, &a, &p),
        ));
    }

    // Canonical k-mer iteration over 100 kb: full reverse complement per
    // window vs the rolling canonical orientation.
    {
        let seq = lcg_seq(100_000, 1);
        let codec = KmerCodec::new(31);
        pairs.push(run_pair(
            "kmer_canonical_iter",
            "seq",
            || {
                let mut acc = 0u64;
                for (_, km) in codec.kmers(&seq) {
                    acc ^= codec.canonical(km).bits() as u64;
                }
                acc
            },
            || {
                let mut acc = 0u64;
                for (_, _, canon) in codec.canonical_kmers(&seq) {
                    acc ^= canon.bits() as u64;
                }
                acc
            },
        ));
    }

    // FASTQ parse of an in-memory corpus: byte-loop line scan vs the SWAR
    // scanner.
    {
        let buf = fastq_corpus(2_000);
        pairs.push(run_pair(
            "fastq_parse",
            "buffer",
            || parse_fastq_reference(&buf).unwrap().1,
            || parse_fastq(&buf).unwrap().1,
        ));
    }

    // Ungapped extension over 200 bp: byte loop vs SWAR mismatch count.
    {
        let a = lcg_seq(200, 11);
        let mut b = a.clone();
        b[33] = match b[33] {
            b'A' => b'G',
            _ => b'A',
        };
        pairs.push(run_pair(
            "ungapped_matches_200bp",
            "call",
            || ungapped_matches_reference(&a, &b),
            || ungapped_matches(&a, &b),
        ));
    }

    // BENCH_kernels.json: machine-readable before/after baseline. CWD of a
    // cargo bench target is the package root, so this lands at
    // crates/bench/BENCH_kernels.json (checked in).
    let mut doc = Value::obj();
    doc.set("schema_version", 1u64);
    doc.set("bench", "kernels");
    doc.set("fast_mode", fast);
    let entries: Vec<Value> = pairs
        .iter()
        .map(|p| {
            let mut e = Value::obj();
            e.set("name", p.name);
            e.set("unit", p.unit);
            e.set("before_ns_per_op", p.before_ns);
            e.set("after_ns_per_op", p.after_ns);
            e.set("speedup", p.before_ns / p.after_ns);
            e
        })
        .collect();
    doc.set("kernels", entries);
    std::fs::write("BENCH_kernels.json", doc.to_json()).unwrap();
    println!("wrote BENCH_kernels.json ({} kernels)", pairs.len());
}

// ---------------------------------------------------------------------
// Plain criterion benches of the production kernels.
// ---------------------------------------------------------------------

fn bench_kmers(c: &mut Criterion) {
    let codec = KmerCodec::new(31);
    let seq = lcg_seq(100_000, 1);
    let mut g = c.benchmark_group("kmer");
    g.throughput(Throughput::Elements((seq.len() - 30) as u64));
    g.bench_function("pack_iterate_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (_, km) in codec.kmers(&seq) {
                acc ^= km.bits() as u64;
            }
            black_box(acc)
        })
    });
    g.bench_function("canonicalize_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (_, _, canon) in codec.canonical_kmers(&seq) {
                acc ^= canon.bits() as u64;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_hash_and_sketches(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketch");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("mix128_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100_000u128 {
                acc ^= mix128(black_box(i));
            }
            black_box(acc)
        })
    });
    g.bench_function("bloom_insert_100k", |b| {
        b.iter(|| {
            let mut f = BloomFilter::with_rate(100_000, 0.05);
            for i in 0..100_000u64 {
                f.insert(hipmer_dna::mix64(i));
            }
            black_box(f.inserted())
        })
    });
    g.bench_function("hll_observe_100k", |b| {
        b.iter(|| {
            let mut h = HyperLogLog::new(14);
            for i in 0..100_000u64 {
                h.observe(hipmer_dna::mix64(i));
            }
            black_box(h.estimate())
        })
    });
    g.bench_function("misra_gries_100k_theta1k", |b| {
        b.iter(|| {
            let mut mg: MisraGries<u64> = MisraGries::new(1_000);
            for i in 0..100_000u64 {
                mg.observe(i % 7_919);
            }
            black_box(mg.stream_len())
        })
    });
    g.finish();
}

fn bench_sw(c: &mut Criterion) {
    let a = lcg_seq(200, 3);
    let mut b2 = a.clone();
    b2[50] = b'A';
    b2[150] = b'C';
    let mut ws = SwWorkspace::new();
    let mut g = c.benchmark_group("align");
    g.bench_function("banded_sw_200bp", |b| {
        b.iter(|| black_box(banded_sw_with(&mut ws, &a, &b2, &SwParams::default())))
    });
    g.finish();
}

fn bench_dht(c: &mut Criterion) {
    let topo = Topology::new(16, 8);
    let _team = Team::new(topo);
    let mut g = c.benchmark_group("dht");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("update_10k", |b| {
        b.iter(|| {
            let dht: DistHashMap<Kmer, u32> = DistHashMap::new(topo);
            let mut ctx = RankCtx::new(0, topo);
            for i in 0..10_000u128 {
                dht.update(&mut ctx, Kmer(i), || 0, |v| *v += 1);
            }
            black_box(dht.len())
        })
    });
    g.bench_function("get_10k", |b| {
        let dht: DistHashMap<Kmer, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        for i in 0..10_000u128 {
            dht.insert(&mut ctx, Kmer(i), i as u32);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u128 {
                acc += dht.get(&mut ctx, &Kmer(i)).unwrap_or(0) as u64;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn config() -> Criterion {
    let (samples, time, warmup) = if hipmer_bench::fast() {
        (3, Duration::from_millis(200), Duration::from_millis(50))
    } else {
        (10, Duration::from_secs(2), Duration::from_millis(500))
    };
    Criterion::default()
        .sample_size(samples)
        .measurement_time(time)
        .warm_up_time(warmup)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_before_after, bench_kmers, bench_hash_and_sketches, bench_sw, bench_dht
}
criterion_main!(benches);
