//! Shared machinery for the benchmark harnesses that regenerate every
//! table and figure of the paper's evaluation (§5).
//!
//! Each `[[bench]]` target is a plain `harness = false` main that runs the
//! relevant pipeline slice over the paper's concurrency sweep (480 …
//! 20,480 virtual ranks) on a scaled-down synthetic analogue of the
//! paper's dataset and prints the same rows/series the paper reports.
//! Absolute seconds come from the PGAS cost model (see `hipmer-pgas`);
//! the *shapes* — who wins, by what factor, where the curves flatten —
//! are the reproduction targets recorded in `EXPERIMENTS.md`.
//!
//! Set `HIPMER_BENCH_SCALE` (float, default 1.0) to grow the synthetic
//! genomes, and `HIPMER_BENCH_FAST=1` to run a reduced sweep (used in CI
//! smoke checks).

use hipmer_pgas::{CostModel, PhaseReport};
use hipmer_readsim::Dataset;
use std::ops::Range;

/// Scale factor for genome sizes (`HIPMER_BENCH_SCALE`).
pub fn scale() -> f64 {
    std::env::var("HIPMER_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Whether to run the reduced sweep (`HIPMER_BENCH_FAST`).
pub fn fast() -> bool {
    std::env::var("HIPMER_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// A genome size scaled by [`scale`].
pub fn scaled(base: usize) -> usize {
    (base as f64 * scale()) as usize
}

/// The strong-scaling sweep. The paper sweeps 480..15,360 Edison cores on
/// gigabase data; our megabase-scale workloads keep the *data-per-core
/// ratio* in a comparable regime by sweeping the same number of doublings
/// at proportionally lower concurrency (see EXPERIMENTS.md).
pub fn concurrencies() -> Vec<usize> {
    if fast() {
        vec![48, 192]
    } else {
        vec![48, 96, 192, 384, 768]
    }
}

/// Library index ranges of a dataset's reads (for the scaffolder).
pub fn lib_ranges(dataset: &Dataset) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for lib in &dataset.reads_per_library {
        out.push(start..start + lib.len());
        start += lib.len();
    }
    out
}

/// The cost model every harness prices with.
pub fn model() -> CostModel {
    CostModel::edison()
}

/// Print a banner for a table/figure.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("==================================================================");
    println!("{id}: {caption}");
    println!("==================================================================");
}

/// Sum the modeled seconds of the phases whose name contains `needle`.
pub fn phase_seconds(reports: &[PhaseReport], needle: &str) -> f64 {
    let m = model();
    reports
        .iter()
        .filter(|r| r.name.contains(needle))
        .map(|r| r.modeled(&m).total())
        .sum()
}

/// Parallel efficiency of a strong-scaling series relative to its first
/// point: `t0·p0 / (t·p)`.
pub fn efficiency(base: (usize, f64), point: (usize, f64)) -> f64 {
    (base.1 * base.0 as f64) / (point.1 * point.0 as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_of_perfect_scaling_is_one() {
        let e = efficiency((480, 100.0), (960, 50.0));
        assert!((e - 1.0).abs() < 1e-12);
        let worse = efficiency((480, 100.0), (960, 80.0));
        assert!(worse < 0.7);
    }

    #[test]
    fn scaled_applies_factor() {
        // Without the env var the identity holds.
        if std::env::var("HIPMER_BENCH_SCALE").is_err() {
            assert_eq!(scaled(1000), 1000);
        }
    }
}
