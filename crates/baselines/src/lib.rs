//! Competing-assembler models for §5.6 of the paper.
//!
//! The paper compares HipMer against Ray 2.3.0, ABySS 1.3.6, and the
//! original (serial-ish) Meraculous, and attributes the gaps to
//! *structural* differences it names explicitly:
//!
//! * **Meraculous** — the original Perl/serial pipeline: 23.8 hours for
//!   human vs HipMer's 8.4 minutes (~170×). Modeled here by running the
//!   identical pipeline on a single rank with single-node pricing.
//! * **Ray** — end-to-end MPI assembler, but two-sided messaging (message
//!   matching and synchronization HipMer's one-sided design avoids, §7)
//!   and "lack of parallel I/O support for reading and writing files".
//!   Modeled by running the real pipeline without aggregating stores,
//!   pricing remote accesses with a message-matching surcharge, and
//!   serializing file I/O. ~13× slower at 960 cores in the paper.
//! * **ABySS** — "only the first assembly step of contig generation is
//!   fully parallelized with MPI and the subsequent scaffolding steps
//!   must be performed on a single shared memory node". Modeled by running
//!   k-mer analysis + contig generation on the full team (two-sided
//!   pricing) and the whole scaffolding stage on one rank. ≥16× slower.
//!
//! Every baseline *actually assembles* the reads — the comparison is about
//! parallelization structure and communication pricing, not output.

use hipmer::{assemble, PipelineConfig, StageTimes};
use hipmer_pgas::{CostModel, Team, Topology};
use hipmer_seqio::SeqRecord;
use std::ops::Range;

/// A baseline run's outcome.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Assembler name.
    pub name: String,
    /// Modeled stage times under the assembler's own execution model.
    pub times: StageTimes,
    /// Scaffold N50 achieved (all baselines assemble for real).
    pub scaffold_n50: usize,
}

impl BaselineResult {
    /// Total modeled seconds.
    pub fn total(&self) -> f64 {
        self.times.total()
    }
}

/// A cost model with a two-sided (MPI send/recv) surcharge: every remote
/// access pays message matching on both sides.
fn two_sided_model() -> CostModel {
    let edison = CostModel::edison();
    CostModel {
        t_onnode: edison.t_onnode * 2.0,
        t_offnode: edison.t_offnode * 2.5,
        t_service: edison.t_service * 2.0,
        ..edison
    }
}

/// HipMer itself at the given concurrency (the reference row of the
/// comparison table).
pub fn hipmer_reference(
    ranks: usize,
    reads: &[SeqRecord],
    lib_ranges: &[Range<usize>],
    cfg: &PipelineConfig,
) -> BaselineResult {
    let team = Team::new(Topology::edison(ranks));
    let assembly = assemble(&team, reads, lib_ranges, cfg);
    BaselineResult {
        name: format!("HipMer ({ranks} cores)"),
        times: StageTimes::from_report(&assembly.report, &CostModel::edison()),
        scaffold_n50: assembly.stats.scaffold_n50,
    }
}

/// The original Meraculous: the same pipeline, one rank, single-node
/// machine pricing.
pub fn serial_meraculous(
    reads: &[SeqRecord],
    lib_ranges: &[Range<usize>],
    cfg: &PipelineConfig,
) -> BaselineResult {
    let team = Team::new(Topology::single_node(1));
    let assembly = assemble(&team, reads, lib_ranges, cfg);
    BaselineResult {
        name: "Meraculous (serial)".into(),
        times: StageTimes::from_report(&assembly.report, &CostModel::single_node()),
        scaffold_n50: assembly.stats.scaffold_n50,
    }
}

/// Ray-like: end-to-end parallel, but two-sided messaging, no aggregating
/// stores, and serial file I/O.
pub fn ray_like(
    ranks: usize,
    reads: &[SeqRecord],
    lib_ranges: &[Range<usize>],
    cfg: &PipelineConfig,
) -> BaselineResult {
    let mut cfg = cfg.clone();
    // No aggregating stores: fine-grained messages (batch of 1).
    cfg.kanalysis.agg_batch = 1;
    let team = Team::new(Topology::edison(ranks));
    let assembly = assemble(&team, reads, lib_ranges, &cfg);
    let model = CostModel {
        // Serial I/O: the aggregate cap equals one stream.
        io_bw_aggregate: CostModel::edison().io_bw_per_rank,
        ..two_sided_model()
    };
    BaselineResult {
        name: format!("Ray-like ({ranks} cores)"),
        times: StageTimes::from_report(&assembly.report, &model),
        scaffold_n50: assembly.stats.scaffold_n50,
    }
}

/// ABySS-like: contig generation parallel (two-sided), all scaffolding on
/// a single node/rank.
pub fn abyss_like(
    ranks: usize,
    reads: &[SeqRecord],
    lib_ranges: &[Range<usize>],
    cfg: &PipelineConfig,
) -> BaselineResult {
    // Parallel front half.
    let mut front_cfg = cfg.clone();
    front_cfg.scaffold.rounds = 0;
    let team = Team::new(Topology::edison(ranks));
    let front = assemble(&team, reads, lib_ranges, &front_cfg);
    let front_times = StageTimes::from_report(&front.report, &two_sided_model());

    // Serial back half (scaffolding only: run the full pipeline at one
    // rank and keep just its scaffolding stages).
    let serial_team = Team::new(Topology::single_node(1));
    let full = assemble(&serial_team, reads, lib_ranges, cfg);
    let serial_times = StageTimes::from_report(&full.report, &CostModel::single_node());

    let times = StageTimes {
        io: front_times.io,
        kmer_analysis: front_times.kmer_analysis,
        contig_generation: front_times.contig_generation,
        meraligner: serial_times.meraligner,
        gap_closing: serial_times.gap_closing,
        rest_scaffolding: serial_times.rest_scaffolding,
    };
    BaselineResult {
        name: format!("ABySS-like ({ranks} cores, serial scaffolding)"),
        times,
        scaffold_n50: full.stats.scaffold_n50,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_readsim::human_like_dataset;

    fn dataset_and_ranges() -> (Vec<SeqRecord>, Vec<Range<usize>>) {
        let d = human_like_dataset(60_000, 16.0, false, 99);
        let reads = d.all_reads();
        let mut ranges = Vec::new();
        let mut start = 0;
        for lib in &d.reads_per_library {
            ranges.push(start..start + lib.len());
            start += lib.len();
        }
        (reads, ranges)
    }

    #[test]
    fn hipmer_beats_all_baselines_at_scale() {
        let (reads, ranges) = dataset_and_ranges();
        let cfg = PipelineConfig::new(21);
        // At 96 ranks a 60 kbp genome still has meaningful per-rank work;
        // the full-size sweeps live in the bench harnesses.
        let ranks = 96;
        let hipmer = hipmer_reference(ranks, &reads, &ranges, &cfg);
        let serial = serial_meraculous(&reads, &ranges, &cfg);
        let ray = ray_like(ranks, &reads, &ranges, &cfg);
        let abyss = abyss_like(ranks, &reads, &ranges, &cfg);

        assert!(
            serial.total() > 5.0 * hipmer.total(),
            "serial {:.4} vs hipmer {:.4}",
            serial.total(),
            hipmer.total()
        );
        assert!(
            ray.total() > 1.5 * hipmer.total(),
            "ray {:.4} vs hipmer {:.4}",
            ray.total(),
            hipmer.total()
        );
        assert!(
            abyss.total() > 1.2 * hipmer.total(),
            "abyss {:.4} vs hipmer {:.4}",
            abyss.total(),
            hipmer.total()
        );
    }

    #[test]
    fn abyss_pays_serial_scaffolding_penalty() {
        // The paper's point: ABySS must scaffold on one node while HipMer
        // scaffolds on the full machine.
        let (reads, ranges) = dataset_and_ranges();
        let cfg = PipelineConfig::new(21);
        let abyss = abyss_like(96, &reads, &ranges, &cfg);
        let hipmer = hipmer_reference(96, &reads, &ranges, &cfg);
        // Tiny test genomes leave parallel scaffolding latency-bound, so
        // the margin here is conservative; the Mbp-scale benches show the
        // paper-sized gap.
        assert!(
            abyss.times.scaffolding() > 1.5 * hipmer.times.scaffolding(),
            "abyss scaffolding {:.4} vs hipmer {:.4}",
            abyss.times.scaffolding(),
            hipmer.times.scaffolding()
        );
    }

    #[test]
    fn all_baselines_produce_real_assemblies() {
        let (reads, ranges) = dataset_and_ranges();
        let cfg = PipelineConfig::new(21);
        let serial = serial_meraculous(&reads, &ranges, &cfg);
        let ray = ray_like(48, &reads, &ranges, &cfg);
        assert!(serial.scaffold_n50 > 1000);
        // Same algorithms, same input -> same assembly quality.
        assert_eq!(serial.scaffold_n50, ray.scaffold_n50);
    }
}
