//! Property tests for k-mer analysis: counts must match a serial
//! reference implementation for arbitrary read sets, and the optimization
//! toggles must never change results.

use hipmer_dna::{Kmer, KmerCodec, KmerHashMap, BASES};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::{Team, Topology};
use hipmer_seqio::SeqRecord;
use proptest::prelude::*;

fn reads_strategy() -> impl Strategy<Value = Vec<SeqRecord>> {
    prop::collection::vec(
        prop::collection::vec(prop::sample::select(&BASES[..]), 25..120),
        1..40,
    )
    .prop_map(|seqs| {
        // Duplicate every sequence so interior k-mers clear min_count=2.
        seqs.into_iter()
            .enumerate()
            .flat_map(|(i, s)| {
                vec![
                    SeqRecord::with_uniform_quality(format!("r{i}a"), s.clone(), 35),
                    SeqRecord::with_uniform_quality(format!("r{i}b"), s, 35),
                ]
            })
            .collect()
    })
}

fn reference_counts(reads: &[SeqRecord], k: usize, min: u32) -> KmerHashMap<Kmer, u32> {
    let codec = KmerCodec::new(k);
    let mut m: KmerHashMap<Kmer, u32> = KmerHashMap::default();
    for r in reads {
        for (_, km) in codec.kmers(&r.seq) {
            *m.entry(codec.canonical(km)).or_insert(0) += 1;
        }
    }
    m.retain(|_, c| *c >= min);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn counts_match_serial_reference(reads in reads_strategy(), ranks in 1usize..12) {
        let k = 21;
        let team = Team::new(Topology::new(ranks, 4));
        let cfg = KmerAnalysisConfig::new(k);
        let (spectrum, _) = analyze_kmers(&team, &reads, &cfg);
        let reference = reference_counts(&reads, k, cfg.min_count);
        prop_assert_eq!(spectrum.distinct(), reference.len());
        let got: KmerHashMap<Kmer, u32> = spectrum
            .table
            .into_entries()
            .into_iter()
            .map(|(km, e)| (km, e.count))
            .collect();
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn toggles_do_not_change_results(
        reads in reads_strategy(),
        use_bloom in any::<bool>(),
        use_hh in any::<bool>(),
        batch in 1usize..512,
    ) {
        let team = Team::new(Topology::new(5, 3));
        let base = KmerAnalysisConfig::new(21);
        let mut varied = base.clone();
        varied.use_bloom = use_bloom;
        varied.use_heavy_hitters = use_hh;
        varied.agg_batch = batch;
        varied.theta = 128;
        varied.hh_min_reported = 2;
        let (s1, _) = analyze_kmers(&team, &reads, &base);
        let (s2, _) = analyze_kmers(&team, &reads, &varied);
        let mut a: Vec<(Kmer, u32)> = s1.table.into_entries().into_iter().map(|(k, e)| (k, e.count)).collect();
        let mut b: Vec<(Kmer, u32)> = s2.table.into_entries().into_iter().map(|(k, e)| (k, e.count)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
