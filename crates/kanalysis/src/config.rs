//! K-mer analysis configuration.

use hipmer_pgas::PartitionScheme;

/// Tunables for k-mer analysis. Defaults follow the paper (k = 51 and
/// θ = 32,000 for wheat; we default k lower because our genomes are
/// megabase-scale) and Meraculous conventions (count ≥ 2, quality ≥ 20).
#[derive(Clone, Debug)]
pub struct KmerAnalysisConfig {
    /// K-mer length.
    pub k: usize,
    /// Minimum exact count for a k-mer to be considered non-erroneous.
    pub min_count: u32,
    /// Minimum Phred score for a neighboring base to cast an extension
    /// vote ("high quality extensions").
    pub min_qual: u8,
    /// Minimum votes for a base to be a high-quality extension candidate.
    pub min_votes: u32,
    /// Misra–Gries summary capacity (θ). The paper uses 32,000 and reports
    /// <10% sensitivity over 1K–64K.
    pub theta: usize,
    /// Treat k-mers whose Misra–Gries lower-bound count is at least this as
    /// heavy hitters. The paper treats k-mers with reported count
    /// `f'(x) > 1` specially (anything the summary retains with evidence of
    /// repetition); raising it shrinks the special set.
    pub hh_min_reported: u64,
    /// Master switch for the heavy-hitter optimization (Fig. 6's
    /// "Default" vs "Heavy Hitters").
    pub use_heavy_hitters: bool,
    /// Use Bloom filters to keep singletons out of the table (§3.1;
    /// ablation: without them every k-mer gets an entry).
    pub use_bloom: bool,
    /// Bloom filter false-positive rate.
    pub bloom_fp_rate: f64,
    /// Aggregating-stores batch size.
    pub agg_batch: usize,
    /// How k-mer ownership maps to ranks (uniform hashing vs.
    /// minimizer bucketing). The votes table and the final spectrum table
    /// share one partitioner built from this scheme.
    pub partition: PartitionScheme,
}

impl KmerAnalysisConfig {
    /// Defaults for a k of choice.
    pub fn new(k: usize) -> Self {
        KmerAnalysisConfig {
            k,
            min_count: 2,
            min_qual: 20,
            min_votes: 2,
            theta: 32_000,
            hh_min_reported: 2,
            use_heavy_hitters: true,
            use_bloom: true,
            bloom_fp_rate: 0.05,
            agg_batch: 256,
            partition: PartitionScheme::Uniform,
        }
    }
}

impl Default for KmerAnalysisConfig {
    fn default() -> Self {
        Self::new(31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_conventions() {
        let c = KmerAnalysisConfig::default();
        assert_eq!(c.min_count, 2);
        assert_eq!(c.theta, 32_000);
        assert!(c.use_heavy_hitters);
        assert!(c.use_bloom);
    }
}
