//! The k-mer analysis output: the table of non-erroneous k-mers.

use hipmer_dna::{ExtensionPair, Kmer, KmerCodec};
use hipmer_pgas::{DistHashMap, PartitionScheme, Partitioner, RankCtx, Topology};
use hipmer_sketch::CountHistogram;

/// One surviving canonical k-mer: exact count plus decided extensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KmerEntry {
    /// Exact occurrence count ("depth").
    pub count: u32,
    /// High-quality extension decision for each side, in canonical
    /// orientation.
    pub exts: ExtensionPair,
}

/// The distributed set of non-erroneous k-mers with their extensions.
pub struct KmerSpectrum {
    /// Codec carrying k.
    pub codec: KmerCodec,
    /// Canonical k-mer → entry, partitioned over the topology.
    pub table: DistHashMap<Kmer, KmerEntry>,
}

impl KmerSpectrum {
    /// Number of distinct surviving k-mers.
    pub fn distinct(&self) -> usize {
        self.table.len()
    }

    /// One-sided lookup of a k-mer (callers pass any orientation; the
    /// lookup canonicalizes).
    pub fn get(&self, ctx: &mut RankCtx, kmer: Kmer) -> Option<KmerEntry> {
        let canon = self.codec.canonical(kmer);
        self.table.get(ctx, &canon)
    }

    /// Batched one-sided lookup: canonicalize every k-mer and resolve the
    /// whole set through [`DistHashMap::multi_get`] — one message per
    /// distinct owner rank instead of one per k-mer. Results come back in
    /// input order and are byte-identical to calling
    /// [`get`](Self::get) per k-mer; only the message accounting differs.
    /// The table is read-only after k-mer analysis, so batch windows of any
    /// size are safe.
    pub fn get_batch(&self, ctx: &mut RankCtx, kmers: &[Kmer]) -> Vec<Option<KmerEntry>> {
        let canon: Vec<Kmer> = kmers.iter().map(|&km| self.codec.canonical(km)).collect();
        self.table.multi_get(ctx, &canon)
    }

    /// Count spectrum histogram (k-mer frequency distribution), tracked up
    /// to `max_count`. Computed over all shards; used to report singleton
    /// fractions (§5.4's 95% human vs 36% metagenome contrast).
    pub fn count_histogram(&self, ctx: &mut RankCtx, max_count: u64) -> CountHistogram {
        let mut h = CountHistogram::new(max_count as usize);
        self.table.fold_local(ctx, (), |(), _, entry| {
            h.record(entry.count as u64);
        });
        h
    }

    /// Export every entry in a canonical order (ascending packed k-mer
    /// bits), uncounted — the checkpoint serialization path, whose I/O is
    /// priced by the checkpoint machinery rather than as table traffic.
    /// The ordering makes the serialized artifact byte-identical across
    /// runs and topologies.
    pub fn export_entries(&self) -> Vec<(Kmer, KmerEntry)> {
        let mut entries = self.table.snapshot_entries();
        entries.sort_unstable_by_key(|(km, _)| km.0);
        entries
    }

    /// Rebuild a spectrum from exported entries over a (possibly
    /// different) topology and partition scheme, uncounted — the
    /// checkpoint restore path. Entries land on the owners the current
    /// run's partitioner dictates (the exported artifact is
    /// placement-independent), so the restored table is indistinguishable
    /// from a freshly-counted one under the same scheme.
    pub fn from_entries(
        topo: Topology,
        k: usize,
        partition: PartitionScheme,
        entries: impl IntoIterator<Item = (Kmer, KmerEntry)>,
    ) -> Self {
        let codec = KmerCodec::new(k);
        let table = Partitioner::new(partition, k).table(topo, codec);
        table.preload(entries);
        KmerSpectrum { codec, table }
    }

    /// Fraction of UU k-mers (unique extension both sides) on this rank's
    /// shard — the de Bruijn graph vertices.
    pub fn uu_fraction_local(&self, ctx: &mut RankCtx) -> f64 {
        let (uu, total) = self
            .table
            .fold_local(ctx, (0usize, 0usize), |(uu, t), _, e| {
                (uu + usize::from(e.exts.is_uu()), t + 1)
            });
        if total == 0 {
            0.0
        } else {
            uu as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_dna::{ExtChoice, ExtensionPair};
    use hipmer_pgas::Topology;

    fn entry(count: u32, uu: bool) -> KmerEntry {
        let exts = if uu {
            ExtensionPair {
                left: ExtChoice::Unique(0),
                right: ExtChoice::Unique(1),
            }
        } else {
            ExtensionPair {
                left: ExtChoice::Fork,
                right: ExtChoice::None,
            }
        };
        KmerEntry { count, exts }
    }

    #[test]
    fn lookup_canonicalizes() {
        let topo = Topology::new(2, 2);
        let codec = KmerCodec::new(3);
        let table = DistHashMap::new(topo);
        let spectrum = KmerSpectrum { codec, table };
        let mut ctx = RankCtx::new(0, topo);

        let fwd = codec.pack(b"TTT").unwrap(); // canonical form is AAA
        let canon = codec.canonical(fwd);
        spectrum.table.insert(&mut ctx, canon, entry(5, true));
        assert_eq!(spectrum.get(&mut ctx, fwd).unwrap().count, 5);
        assert_eq!(spectrum.get(&mut ctx, canon).unwrap().count, 5);
    }

    #[test]
    fn batched_lookup_matches_sequential() {
        let topo = Topology::new(4, 2);
        let codec = KmerCodec::new(3);
        let table = DistHashMap::new(topo);
        let spectrum = KmerSpectrum { codec, table };
        let mut ctx = RankCtx::new(0, topo);

        let kmers: Vec<_> = ["AAA", "ACG", "TTT", "GGG", "CCA"]
            .iter()
            .map(|s| codec.pack(s.as_bytes()).unwrap())
            .collect();
        for (i, &km) in kmers.iter().take(3).enumerate() {
            let canon = codec.canonical(km);
            spectrum
                .table
                .insert(&mut ctx, canon, entry(i as u32 + 1, true));
        }
        let mut seq = RankCtx::new(0, topo);
        let one_by_one: Vec<_> = kmers.iter().map(|&km| spectrum.get(&mut seq, km)).collect();
        let mut bat = RankCtx::new(0, topo);
        let batched = spectrum.get_batch(&mut bat, &kmers);
        assert_eq!(one_by_one, batched);
        assert!(bat.stats.total_accesses() <= seq.stats.total_accesses());
        assert!(bat.stats.lookup_batches > 0);
    }

    #[test]
    fn export_entries_round_trip_across_topologies() {
        let topo = Topology::new(4, 2);
        let codec = KmerCodec::new(5);
        let table = DistHashMap::new(topo);
        let spectrum = KmerSpectrum { codec, table };
        let mut ctx = RankCtx::new(0, topo);
        for (i, s) in ["AACGT", "CGTAA", "TTACG", "GGGCA"].iter().enumerate() {
            let km = codec.canonical(codec.pack(s.as_bytes()).unwrap());
            spectrum
                .table
                .insert(&mut ctx, km, entry(i as u32 + 2, i % 2 == 0));
        }
        let exported = spectrum.export_entries();
        assert!(
            exported.windows(2).all(|w| w[0].0 .0 < w[1].0 .0),
            "entries sorted by packed bits"
        );
        // Restore onto a different topology — under either partition
        // scheme: contents and canonical export order are identical.
        for scheme in [PartitionScheme::Uniform, PartitionScheme::Minimizer] {
            let restored =
                KmerSpectrum::from_entries(Topology::new(7, 3), 5, scheme, exported.clone());
            assert_eq!(restored.codec.k(), 5);
            assert_eq!(restored.export_entries(), exported);
            assert_eq!(
                restored.table.has_locality_hash(),
                scheme == PartitionScheme::Minimizer
            );
            let mut c2 = RankCtx::new(0, Topology::new(7, 3));
            for &(km, e) in &exported {
                assert_eq!(restored.get(&mut c2, km), Some(e));
            }
        }
    }

    #[test]
    fn histogram_and_uu_fraction() {
        let topo = Topology::new(1, 1);
        let codec = KmerCodec::new(3);
        let table = DistHashMap::new(topo);
        let spectrum = KmerSpectrum { codec, table };
        let mut ctx = RankCtx::new(0, topo);

        let kmers = ["AAA", "AAC", "AAG", "AAT"];
        for (i, s) in kmers.iter().enumerate() {
            let km = codec.canonical(codec.pack(s.as_bytes()).unwrap());
            spectrum
                .table
                .insert(&mut ctx, km, entry(i as u32 + 1, i % 2 == 0));
        }
        let h = spectrum.count_histogram(&mut ctx, 100);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bin(1), Some(1));
        let uu = spectrum.uu_fraction_local(&mut ctx);
        assert!((uu - 0.5).abs() < 1e-12);
    }
}
