//! Passes 2–3: Bloom-filtered table construction and exact counting with
//! extension votes, plus the heavy-hitter local-accumulation path.

use crate::config::KmerAnalysisConfig;
use crate::pass1::{sketch_reads, SketchResult};
use crate::spectrum::{KmerEntry, KmerSpectrum};
use hipmer_dna::{ExtVotes, Kmer, KmerCodec, KmerHashMap};
use hipmer_pgas::{DistHashMap, Outbox, Partitioner, PhaseReport, Team};
use hipmer_seqio::SeqRecord;
use hipmer_sketch::BloomFilter;
use parking_lot::Mutex;

/// The left/right extension bases of one k-mer occurrence, re-oriented to
/// the k-mer's canonical form. `left`/`right` are 2-bit codes of the
/// neighboring bases that passed the quality filter.
fn canonical_votes(
    km: Kmer,
    canon: Kmer,
    left: Option<u8>,
    right: Option<u8>,
) -> (Option<u8>, Option<u8>) {
    if km == canon {
        (left, right)
    } else {
        // Occurrence is the reverse complement of the canonical form: sides
        // swap and bases complement.
        (right.map(|c| 3 - c), left.map(|c| 3 - c))
    }
}

/// Visit every k-mer occurrence of a read with its quality-filtered
/// neighbor bases (already re-oriented to canonical form).
fn for_each_occurrence<F>(codec: &KmerCodec, cfg: &KmerAnalysisConfig, read: &SeqRecord, mut f: F)
where
    F: FnMut(Kmer, Option<u8>, Option<u8>),
{
    let k = codec.k();
    for (off, km, canon) in codec.canonical_kmers(&read.seq) {
        let left = if off > 0 {
            match read.phred(off - 1) {
                Some(q) if q >= cfg.min_qual => hipmer_dna::encode_base(read.seq[off - 1]),
                None => hipmer_dna::encode_base(read.seq[off - 1]),
                _ => None,
            }
        } else {
            None
        };
        let right = if off + k < read.seq.len() {
            match read.phred(off + k) {
                Some(q) if q >= cfg.min_qual => hipmer_dna::encode_base(read.seq[off + k]),
                None => hipmer_dna::encode_base(read.seq[off + k]),
                _ => None,
            }
        } else {
            None
        };
        let (l, r) = canonical_votes(km, canon, left, right);
        f(canon, l, r);
    }
}

/// Pass 2: route every (non-heavy) k-mer occurrence to its owner, which
/// inserts it into its Bloom filter and creates a table entry the second
/// time it sees the key.
fn bloom_pass(
    team: &Team,
    reads: &[SeqRecord],
    cfg: &KmerAnalysisConfig,
    sketch: &SketchResult,
    table: &DistHashMap<Kmer, ExtVotes>,
) -> PhaseReport {
    let codec = KmerCodec::new(cfg.k);
    let ranks = team.ranks();
    // Per-owner Bloom filters sized from the cardinality estimate.
    let per_rank_items = ((sketch.cardinality / ranks as f64).ceil() as usize).max(1024);
    let blooms: Vec<Mutex<BloomFilter>> = (0..ranks)
        .map(|_| Mutex::new(BloomFilter::with_rate(per_rank_items, cfg.bloom_fp_rate)))
        .collect();

    let (_, mut stats) = team.run_named("kmer-analysis/bloom", |ctx| {
        // Wire bytes: the packed 2k bits of the k-mer, not the in-memory
        // 16-byte `u128`.
        let mut outbox: Outbox<Kmer> =
            Outbox::new(*ctx.topo(), cfg.agg_batch).with_item_bytes(codec.wire_bytes());
        // Blocking service path: waits for the owner's Bloom filter, then
        // upserts the repeated keys. Used by the completion drain.
        let mut apply = |dest: usize, kmers: Vec<Kmer>| {
            let mut bloom = blooms[dest].lock();
            let mut repeated: Vec<(Kmer, ExtVotes)> = Vec::new();
            for km in kmers {
                if bloom.insert(hipmer_dna::mix128(km.bits())) {
                    repeated.push((km, ExtVotes::new()));
                }
            }
            drop(bloom);
            if !repeated.is_empty() {
                // Keep the existing entry if the key already landed.
                table.merge_batch(dest, repeated, |_existing, _new| {});
            }
        };
        // Non-blocking attempt: if the owner's Bloom filter is busy, park
        // the batch untouched and keep producing. The Bloom membership
        // test is stateful (second sighting creates the entry), so a batch
        // either fully lands here or is retried whole at the drain.
        let mut try_apply = |dest: usize, mut kmers: Vec<Kmer>| {
            let Some(mut bloom) = blooms[dest].try_lock() else {
                return Err(kmers);
            };
            let mut repeated: Vec<(Kmer, ExtVotes)> = Vec::new();
            for km in kmers.drain(..) {
                if bloom.insert(hipmer_dna::mix128(km.bits())) {
                    repeated.push((km, ExtVotes::new()));
                }
            }
            drop(bloom);
            if !repeated.is_empty() {
                table.merge_batch(dest, repeated, |_existing, _new| {});
            }
            Ok(kmers)
        };
        let chunk = ctx.chunk(reads.len());
        for read in &reads[chunk] {
            for_each_occurrence(&codec, cfg, read, |canon, _, _| {
                ctx.stats.compute(1);
                if !sketch.heavy_hitters.contains(&canon) {
                    let dest = table.owner(&canon);
                    outbox.push_async(ctx, dest, canon, &mut try_apply);
                }
            });
        }
        // Drains parked batches and hard-asserts nothing is left pending.
        outbox.finish_async(ctx, &mut try_apply, &mut apply);
    });
    table.drain_service_into(&mut stats);
    PhaseReport::new("kmer-analysis/bloom", *team.topo(), stats)
}

/// Pass 3: exact counting with extension votes. Heavy hitters accumulate
/// locally and reduce at the end; everything else ships via aggregating
/// stores and merges into *existing* entries only (Bloom semantics).
fn count_pass(
    team: &Team,
    reads: &[SeqRecord],
    cfg: &KmerAnalysisConfig,
    sketch: &SketchResult,
    table: &DistHashMap<Kmer, ExtVotes>,
) -> PhaseReport {
    let codec = KmerCodec::new(cfg.k);
    let merge = |a: &mut ExtVotes, b: ExtVotes| a.merge(&b);

    // Wire bytes of one (k-mer, votes) record: packed k-mer bits plus the
    // nine vote counters. The in-memory tuple is padded to the `u128`
    // alignment, which must not be billed as network traffic.
    let entry_wire_bytes = codec.wire_bytes() + ExtVotes::WIRE_BYTES;

    let (_, mut stats) = team.run_named("kmer-analysis/count", |ctx| {
        let mut outbox: Outbox<(Kmer, ExtVotes)> =
            Outbox::new(*ctx.topo(), cfg.agg_batch).with_item_bytes(entry_wire_bytes);
        // Blocking merge for the completion drain; vote merges commute, so
        // deferred batches may land in any order.
        let mut apply = |dest: usize, entries: Vec<(Kmer, ExtVotes)>| {
            if cfg.use_bloom {
                table.merge_batch_existing(dest, entries, merge);
            } else {
                table.merge_batch(dest, entries, merge);
            }
        };
        // Non-blocking merge: contended sub-shards return their entries,
        // which the outbox parks until the drain.
        let mut try_apply = |dest: usize, entries: Vec<(Kmer, ExtVotes)>| {
            if cfg.use_bloom {
                table.try_merge_batch_existing(dest, entries, merge)
            } else {
                table.try_merge_batch(dest, entries, merge)
            }
        };
        let mut hh_local: KmerHashMap<Kmer, ExtVotes> = KmerHashMap::default();

        let chunk = ctx.chunk(reads.len());
        for read in &reads[chunk] {
            for_each_occurrence(&codec, cfg, read, |canon, l, r| {
                ctx.stats.compute(1);
                if sketch.heavy_hitters.contains(&canon) {
                    // Local accumulation: no communication per occurrence.
                    hh_local.entry(canon).or_default().record(l, r);
                } else {
                    let mut votes = ExtVotes::new();
                    votes.record(l, r);
                    let dest = table.owner(&canon);
                    outbox.push_async(ctx, dest, (canon, votes), &mut try_apply);
                }
            });
        }
        outbox.finish_async(ctx, &mut try_apply, &mut apply);

        // Global reduction of heavy-hitter partials: one grouped message
        // per owner holding this rank's partial counts (O(p) messages per
        // heavy k-mer across the team instead of O(count)).
        if !hh_local.is_empty() {
            let mut hh_outbox: Outbox<(Kmer, ExtVotes)> =
                Outbox::new(*ctx.topo(), usize::MAX >> 1).with_item_bytes(entry_wire_bytes);
            let mut hh_apply = |dest: usize, entries: Vec<(Kmer, ExtVotes)>| {
                table.merge_batch(dest, entries, merge);
            };
            for (km, votes) in hh_local {
                let dest = table.owner(&km);
                hh_outbox.push(ctx, dest, (km, votes), &mut hh_apply);
            }
            hh_outbox.flush_all(ctx, &mut hh_apply);
        }
    });
    table.drain_service_into(&mut stats);
    // Surface the most-hit keys of the vote table (only populated when
    // hot-key tracking is enabled, e.g. under `--trace`).
    PhaseReport::new("kmer-analysis/count", *team.topo(), stats).with_hot_keys(table.hot_keys(16))
}

/// Finalize: drop below-threshold k-mers, decide extensions, and build the
/// final spectrum (purely shard-local work).
fn finalize(
    team: &Team,
    cfg: &KmerAnalysisConfig,
    table: DistHashMap<Kmer, ExtVotes>,
    final_table: &DistHashMap<Kmer, KmerEntry>,
) -> PhaseReport {
    let (_, mut stats) = team.run_named("kmer-analysis/finalize", |ctx| {
        let entries = table.drain_local(ctx);
        let mut keep: Vec<(Kmer, KmerEntry)> = Vec::with_capacity(entries.len());
        for (km, votes) in entries {
            ctx.stats.compute(1);
            if votes.count >= cfg.min_count {
                keep.push((
                    km,
                    KmerEntry {
                        count: votes.count,
                        exts: votes.decide(cfg.min_votes),
                    },
                ));
            }
        }
        // Same key, same placement: the batch lands in this rank's shard.
        final_table.merge_batch(ctx.rank, keep, |_a, _b| {});
    });
    final_table.drain_service_into(&mut stats);
    PhaseReport::new("kmer-analysis/finalize", *team.topo(), stats)
}

/// Run complete k-mer analysis over `reads`: sketch pass, Bloom pass,
/// count pass, finalize. Returns the spectrum and one report per phase.
pub fn analyze_kmers(
    team: &Team,
    reads: &[SeqRecord],
    cfg: &KmerAnalysisConfig,
) -> (KmerSpectrum, Vec<PhaseReport>) {
    let (sketch, sketch_report) = sketch_reads(team, reads, cfg);
    let mut reports = vec![sketch_report];

    // One partitioner for the whole table family: `finalize` moves entries
    // from the votes table into the final spectrum with a shard-local
    // merge, which is only correct when both tables agree on every key's
    // owner.
    let codec = KmerCodec::new(cfg.k);
    let part = Partitioner::new(cfg.partition, cfg.k);
    let votes_table: DistHashMap<Kmer, ExtVotes> = part.table(*team.topo(), codec);
    if cfg.use_bloom {
        reports
            .push(bloom_pass(team, reads, cfg, &sketch, &votes_table).with_placement(part.label()));
    }
    reports.push(count_pass(team, reads, cfg, &sketch, &votes_table).with_placement(part.label()));

    let final_table: DistHashMap<Kmer, KmerEntry> = part.table(*team.topo(), codec);
    reports.push(finalize(team, cfg, votes_table, &final_table).with_placement(part.label()));

    (
        KmerSpectrum {
            codec,
            table: final_table,
        },
        reports,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_dna::ExtChoice;
    use hipmer_pgas::{RankCtx, Topology};

    /// Reads tiling `genome` perfectly with `depth` copies.
    fn perfect_reads(genome: &[u8], read_len: usize, depth: usize) -> Vec<SeqRecord> {
        let mut out = Vec::new();
        let stride = (read_len / depth.max(1)).max(1);
        for d in 0..depth {
            let offset = d * stride / depth.max(1);
            let mut pos = offset;
            while pos + read_len <= genome.len() {
                out.push(SeqRecord::with_uniform_quality(
                    format!("r{d}_{pos}"),
                    genome[pos..pos + read_len].to_vec(),
                    35,
                ));
                pos += stride;
            }
        }
        out
    }

    fn lcg_genome(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn exact_counts_match_brute_force() {
        let genome = lcg_genome(2000, 7);
        let reads = perfect_reads(&genome, 80, 4);
        let team = Team::new(Topology::new(4, 2));
        let mut cfg = KmerAnalysisConfig::new(21);
        cfg.min_count = 2;

        let (spectrum, _) = analyze_kmers(&team, &reads, &cfg);

        // Brute force.
        let codec = KmerCodec::new(21);
        let mut truth: KmerHashMap<Kmer, u32> = KmerHashMap::default();
        for r in &reads {
            for (_, km) in codec.kmers(&r.seq) {
                *truth.entry(codec.canonical(km)).or_insert(0) += 1;
            }
        }
        truth.retain(|_, c| *c >= 2);

        assert_eq!(spectrum.distinct(), truth.len());
        let mut ctx = RankCtx::new(0, *team.topo());
        for (km, &count) in truth.iter() {
            let entry = spectrum.table.get(&mut ctx, km).unwrap();
            assert_eq!(entry.count, count, "kmer {}", codec.to_string(*km));
        }
    }

    #[test]
    fn singletons_are_dropped() {
        let genome = lcg_genome(3000, 11);
        let mut reads = perfect_reads(&genome, 90, 3);
        // One read from elsewhere: its interior k-mers appear once.
        let stray = lcg_genome(90, 999);
        reads.push(SeqRecord::with_uniform_quality("stray", stray.clone(), 35));
        let team = Team::new(Topology::new(3, 3));
        let cfg = KmerAnalysisConfig::new(21);
        let (spectrum, _) = analyze_kmers(&team, &reads, &cfg);

        let codec = KmerCodec::new(21);
        let mut ctx = RankCtx::new(0, *team.topo());
        // The stray's middle k-mer must be absent.
        let mid = codec.canonical(codec.pack(&stray[30..51]).unwrap());
        assert!(spectrum.table.get(&mut ctx, &mid).is_none());
    }

    #[test]
    fn extensions_are_unique_in_clean_sequence() {
        let genome = lcg_genome(1500, 13);
        let reads = perfect_reads(&genome, 100, 4);
        let team = Team::new(Topology::new(2, 2));
        let cfg = KmerAnalysisConfig::new(21);
        let (spectrum, _) = analyze_kmers(&team, &reads, &cfg);

        let mut ctx = RankCtx::new(0, *team.topo());
        let mut uu = 0usize;
        let mut total = 0usize;
        for rank in 0..2 {
            let mut c = RankCtx::new(rank, *team.topo());
            let (u, t) = spectrum
                .table
                .fold_local(&mut c, (0usize, 0usize), |(u, t), _, e| {
                    (u + usize::from(e.exts.is_uu()), t + 1)
                });
            uu += u;
            total += t;
        }
        let _ = &mut ctx;
        assert!(total > 1000);
        // Interior k-mers of a non-repetitive genome are UU.
        assert!(
            uu as f64 / total as f64 > 0.95,
            "uu fraction {}",
            uu as f64 / total as f64
        );
    }

    #[test]
    fn low_quality_extensions_do_not_vote() {
        // Same sequence, depth 3, but the base after the first k-mer has
        // low quality in every copy -> right extension gets no votes at the
        // first k-mer... construct directly:
        let seq = b"ACGTTGCAAGGCTTAGCGTACGATCC".to_vec();
        let mut reads = Vec::new();
        for i in 0..3 {
            let mut r = SeqRecord::with_uniform_quality(format!("r{i}"), seq.clone(), 35);
            // Degrade quality of base at index 21 (right neighbor of the
            // k-mer at offset 0 with k=21).
            r.qual.as_mut().unwrap()[21] = 33 + 5;
            reads.push(r);
        }
        let team = Team::new(Topology::new(1, 1));
        let mut cfg = KmerAnalysisConfig::new(21);
        cfg.min_qual = 20;
        let (spectrum, _) = analyze_kmers(&team, &reads, &cfg);
        let codec = KmerCodec::new(21);
        let mut ctx = RankCtx::new(0, *team.topo());
        let first = codec.pack(&seq[..21]).unwrap();
        let entry = spectrum.get(&mut ctx, first).unwrap();
        assert_eq!(entry.count, 3);
        // Orient the check to the packed (forward) k-mer.
        let canon = codec.canonical(first);
        let exts = if canon == first {
            entry.exts
        } else {
            entry.exts.flip()
        };
        assert_eq!(
            exts.right,
            ExtChoice::None,
            "low-quality base must not vote"
        );
        assert_eq!(exts.left, ExtChoice::None, "no left neighbor at read start");
    }

    #[test]
    fn heavy_hitter_path_gives_identical_counts() {
        // A genome with a massive tandem repeat; run with and without the
        // heavy-hitter optimization and compare tables exactly.
        let unit = lcg_genome(60, 3);
        let mut genome = lcg_genome(1000, 5);
        for _ in 0..200 {
            genome.extend_from_slice(&unit);
        }
        genome.extend(lcg_genome(1000, 6));
        let reads = perfect_reads(&genome, 100, 3);
        let team = Team::new(Topology::new(4, 2));

        let mut cfg_on = KmerAnalysisConfig::new(21);
        cfg_on.theta = 256;
        cfg_on.hh_min_reported = 50;
        let mut cfg_off = cfg_on.clone();
        cfg_off.use_heavy_hitters = false;

        let (spec_on, _) = analyze_kmers(&team, &reads, &cfg_on);
        let (spec_off, _) = analyze_kmers(&team, &reads, &cfg_off);

        let mut on: Vec<(Kmer, u32)> = spec_on
            .table
            .into_entries()
            .into_iter()
            .map(|(k, e)| (k, e.count))
            .collect();
        let mut off: Vec<(Kmer, u32)> = spec_off
            .table
            .into_entries()
            .into_iter()
            .map(|(k, e)| (k, e.count))
            .collect();
        on.sort();
        off.sort();
        assert_eq!(on, off, "HH optimization must not change results");
    }

    #[test]
    fn heavy_hitters_rebalance_service_load() {
        // Service ops at the hottest rank must drop when the optimization
        // is on (Fig. 6's load-imbalance mechanism).
        let unit = lcg_genome(60, 3);
        let mut genome = Vec::new();
        for _ in 0..400 {
            genome.extend_from_slice(&unit);
        }
        genome.extend(lcg_genome(2000, 6));
        let reads = perfect_reads(&genome, 100, 4);
        let team = Team::new(Topology::new(8, 4));

        let hottest_service = |use_hh: bool| -> u64 {
            let mut cfg = KmerAnalysisConfig::new(21);
            cfg.theta = 256;
            cfg.hh_min_reported = 50;
            cfg.use_heavy_hitters = use_hh;
            let (_, reports) = analyze_kmers(&team, &reads, &cfg);
            reports
                .iter()
                .filter(|r| r.name.contains("count"))
                .flat_map(|r| r.stats.iter().map(|s| s.service_ops))
                .max()
                .unwrap_or(0)
        };
        let with_hh = hottest_service(true);
        let without = hottest_service(false);
        assert!(
            with_hh * 2 < without,
            "HH must cut the hottest rank's service load: {with_hh} vs {without}"
        );
    }

    #[test]
    fn minimizer_partition_gives_identical_spectrum() {
        // Placement must be invisible to results: the exported spectrum
        // (canonical order) is byte-for-byte the same under uniform hashing
        // and minimizer bucketing, across heavy-hitter and Bloom settings.
        let unit = lcg_genome(60, 3);
        let mut genome = lcg_genome(1500, 19);
        for _ in 0..100 {
            genome.extend_from_slice(&unit);
        }
        let reads = perfect_reads(&genome, 90, 3);
        let team = Team::new(Topology::new(8, 4));
        for use_bloom in [false, true] {
            let mut cfg = KmerAnalysisConfig::new(21);
            cfg.theta = 256;
            cfg.hh_min_reported = 50;
            cfg.use_bloom = use_bloom;
            cfg.partition = hipmer_pgas::PartitionScheme::Uniform;
            let (spec_u, _) = analyze_kmers(&team, &reads, &cfg);
            cfg.partition = hipmer_pgas::PartitionScheme::Minimizer;
            let (spec_m, _) = analyze_kmers(&team, &reads, &cfg);
            assert!(spec_m.table.has_locality_hash());
            assert_eq!(spec_u.export_entries(), spec_m.export_entries());
        }
    }

    #[test]
    fn bloom_ablation_matches_counts_but_uses_more_entries() {
        let genome = lcg_genome(2000, 17);
        let mut reads = perfect_reads(&genome, 80, 3);
        reads.push(SeqRecord::with_uniform_quality(
            "stray",
            lcg_genome(80, 1234),
            35,
        ));
        let team = Team::new(Topology::new(2, 2));
        let mut cfg = KmerAnalysisConfig::new(21);
        cfg.use_bloom = false;
        let (spec_nb, _) = analyze_kmers(&team, &reads, &cfg);
        cfg.use_bloom = true;
        let (spec_b, _) = analyze_kmers(&team, &reads, &cfg);
        // Final spectra agree (both threshold at min_count)...
        let mut a: Vec<(Kmer, u32)> = spec_nb
            .table
            .into_entries()
            .into_iter()
            .map(|(k, e)| (k, e.count))
            .collect();
        let mut b: Vec<(Kmer, u32)> = spec_b
            .table
            .into_entries()
            .into_iter()
            .map(|(k, e)| (k, e.count))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
