//! Parallel k-mer analysis (§2 stage 1, optimizations §3.1).
//!
//! Input: reads with qualities. Output: the set of non-erroneous canonical
//! k-mers, each with its exact count and its high-quality extension pair —
//! the vertices of the de Bruijn graph the contig stage traverses.
//!
//! Three passes over the reads, exactly as in the paper:
//!
//! 1. **Sketch pass** ([`pass1::sketch_reads`]): every rank streams its
//!    read chunk through a HyperLogLog (cardinality, to size the Bloom
//!    filters) and a Misra–Gries summary (heavy-hitter identification,
//!    θ = 32,000 in the paper). Summaries are merged in a reduction —
//!    "essentially free in terms of I/O costs" because the pass shares the
//!    cardinality scan.
//! 2. **Bloom pass** (`count::bloom_pass`): each k-mer occurrence is
//!    routed to its owner (aggregating stores); the owner inserts the key
//!    hash into its Bloom filter and creates a table entry the *second*
//!    time it sees the key. Singletons — overwhelmingly sequencing errors —
//!    never enter the table, the paper's up-to-85% memory saving.
//! 3. **Count pass** (`count::count_pass`): occurrences are routed again
//!    with their quality-filtered extension votes and merged into existing
//!    entries only. Heavy hitters bypass the owner-computes path: every
//!    rank accumulates them locally and one final global reduction merges
//!    the partials — O(p) messages per heavy k-mer instead of O(count),
//!    removing the load imbalance of Fig. 6.
//!
//! Finalization drops below-threshold k-mers and decides each side's
//! extension (`[ACGT]`, fork, or none).

pub mod config;
pub mod count;
pub mod pass1;
pub mod spectrum;

pub use config::KmerAnalysisConfig;
pub use count::analyze_kmers;
pub use pass1::{sketch_reads, SketchResult};
pub use spectrum::{KmerEntry, KmerSpectrum};
