//! Pass 1: cardinality estimation + heavy-hitter identification (§3.1).

use crate::config::KmerAnalysisConfig;
use hipmer_dna::{Kmer, KmerCodec, KmerHashSet};
use hipmer_pgas::{PhaseReport, Team};
use hipmer_seqio::SeqRecord;
use hipmer_sketch::{HyperLogLog, MisraGries};

/// The merged result of the sketch pass.
pub struct SketchResult {
    /// Estimated number of distinct canonical k-mers.
    pub cardinality: f64,
    /// K-mers flagged as heavy hitters (empty when the optimization is
    /// off). Shared read-only by all ranks in later passes.
    pub heavy_hitters: KmerHashSet<Kmer>,
    /// Total k-mer occurrences streamed.
    pub stream_len: u64,
}

/// HyperLogLog precision: 2^14 registers, ~0.8% standard error.
const HLL_P: u8 = 14;

/// Stream every rank's chunk of `reads` through the sketches and merge.
///
/// The reduction is modeled as each rank shipping its summary to rank 0
/// (size: θ entries + the HLL registers), which is how the
/// mergeable-summaries parallelization of Cafaro–Tempesta behaves.
pub fn sketch_reads(
    team: &Team,
    reads: &[SeqRecord],
    cfg: &KmerAnalysisConfig,
) -> (SketchResult, PhaseReport) {
    let codec = KmerCodec::new(cfg.k);

    let (partials, mut stats) = team.run_named("kmer-analysis/sketch", |ctx| {
        let mut hll = HyperLogLog::new(HLL_P);
        let mut mg: MisraGries<Kmer> = MisraGries::new(cfg.theta);
        let chunk = ctx.chunk(reads.len());
        for read in &reads[chunk] {
            for (_, _, canon) in codec.canonical_kmers(&read.seq) {
                hll.observe(hipmer_dna::mix128(canon.bits()));
                if cfg.use_heavy_hitters {
                    mg.observe(canon);
                }
                ctx.stats.compute(1);
            }
        }
        // Ship the summary to the reduction root: one message of summary
        // size (the tree reduction's higher levels are asymptotically
        // negligible; the barrier term prices the log-depth sync).
        let summary_bytes = (cfg.theta * 24 + (1usize << HLL_P)) as u64;
        ctx.access(0, summary_bytes);
        (hll, mg)
    });

    // Merge on the "root".
    let mut iter = partials.into_iter();
    let (mut hll, mut mg) = iter.next().expect("at least one rank");
    for (h, m) in iter {
        hll.merge(&h);
        mg.merge(&m);
    }

    let heavy_hitters: KmerHashSet<Kmer> = if cfg.use_heavy_hitters {
        mg.heavy_hitters(cfg.hh_min_reported)
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    } else {
        KmerHashSet::default()
    };

    // Attribute the reads' I/O-equivalent compute: already counted above.
    for s in stats.iter_mut() {
        s.barriers += 1; // reduction sync
    }

    let result = SketchResult {
        cardinality: hll.estimate(),
        heavy_hitters,
        stream_len: mg.stream_len().max(
            // When MG is disabled the stream length comes from compute ops.
            stats.iter().map(|s| s.compute_ops).sum(),
        ),
    };
    let report = PhaseReport::new("kmer-analysis/sketch", *team.topo(), stats);
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_pgas::Topology;

    fn reads_from(seqs: &[&[u8]]) -> Vec<SeqRecord> {
        seqs.iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::with_uniform_quality(format!("r{i}"), s.to_vec(), 35))
            .collect()
    }

    #[test]
    fn cardinality_close_to_truth() {
        // A long random-ish sequence: distinct 21-mers ≈ length - k + 1.
        let mut seq = Vec::new();
        let mut x: u64 = 12345;
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seq.push(b"ACGT"[(x >> 60) as usize % 4]);
        }
        let reads = reads_from(&[&seq]);
        let team = Team::new(Topology::new(4, 2));
        let cfg = KmerAnalysisConfig::new(21);
        let (res, _) = sketch_reads(&team, &reads, &cfg);
        let truth = {
            let codec = KmerCodec::new(21);
            let set: KmerHashSet<Kmer> = codec
                .kmers(&seq)
                .map(|(_, km)| codec.canonical(km))
                .collect();
            set.len() as f64
        };
        let err = (res.cardinality - truth).abs() / truth;
        assert!(err < 0.05, "cardinality {} vs {truth}", res.cardinality);
    }

    #[test]
    fn heavy_hitters_found_in_skewed_stream() {
        // One 31-mer repeated thousands of times amid unique sequence.
        let unit = b"ACGTTGCAAGGCTTAGCGTACGATCCAGGTA"; // 31 bases
        let mut seqs: Vec<Vec<u8>> = Vec::new();
        for _ in 0..2000 {
            seqs.push(unit.to_vec());
        }
        let mut x: u64 = 99;
        for _ in 0..200 {
            let mut s = Vec::new();
            for _ in 0..100 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                s.push(b"ACGT"[(x >> 60) as usize % 4]);
            }
            seqs.push(s);
        }
        let reads: Vec<SeqRecord> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::with_uniform_quality(format!("r{i}"), s.clone(), 35))
            .collect();
        let team = Team::new(Topology::new(3, 3));
        let mut cfg = KmerAnalysisConfig::new(31);
        cfg.theta = 512;
        cfg.hh_min_reported = 100;
        let (res, _) = sketch_reads(&team, &reads, &cfg);
        let codec = KmerCodec::new(31);
        let hot = codec.canonical(codec.pack(unit).unwrap());
        assert!(
            res.heavy_hitters.contains(&hot),
            "the tandem k-mer must be flagged"
        );
        // The unique background must not flood the set.
        assert!(res.heavy_hitters.len() < 10, "{}", res.heavy_hitters.len());
    }

    #[test]
    fn disabled_heavy_hitters_yields_empty_set() {
        let reads = reads_from(&[b"ACGTACGTACGTACGTACGTACGTACGTACGTACGT"]);
        let team = Team::new(Topology::new(2, 2));
        let mut cfg = KmerAnalysisConfig::new(21);
        cfg.use_heavy_hitters = false;
        let (res, _) = sketch_reads(&team, &reads, &cfg);
        assert!(res.heavy_hitters.is_empty());
        assert!(res.stream_len > 0);
    }
}
