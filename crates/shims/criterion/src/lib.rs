//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the benchmark API surface it uses: `criterion_group!` /
//! `criterion_main!`, [`Criterion`] with the builder knobs, benchmark
//! groups, `Bencher::iter`, [`Throughput`], and [`black_box`]. Instead of
//! criterion's statistics it runs a plain warm-up + sampling loop and
//! prints mean ns/iteration (and elements/s when a throughput is set) —
//! enough to compare runs by eye or with a one-line awk.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let (sample_size, measurement, warm_up) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        run_one(name, None, sample_size, measurement, warm_up, f);
        self
    }
}

/// A named collection of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
            f,
        );
        self
    }

    /// End the group (upstream finalizes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Handed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it as many times as the harness requested.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    mut f: F,
) {
    // Warm up and discover a batch size whose runtime fits the
    // measurement budget across the requested samples.
    let warm_start = Instant::now();
    let mut batch = 1u64;
    let mut per_iter = loop {
        let t = time_batch(&mut f, batch);
        if warm_start.elapsed() >= warm_up {
            break t.as_secs_f64() / batch as f64;
        }
        if t < Duration::from_millis(1) {
            batch = batch.saturating_mul(2);
        }
    };
    if per_iter <= 0.0 {
        per_iter = 1e-9;
    }
    let budget_per_sample = measurement.as_secs_f64() / sample_size as f64;
    let iters = ((budget_per_sample / per_iter).ceil() as u64).clamp(1, u64::MAX);

    let mut best = f64::INFINITY;
    let mut total = 0.0f64;
    for _ in 0..sample_size {
        let t = time_batch(&mut f, iters).as_secs_f64() / iters as f64;
        best = best.min(t);
        total += t;
    }
    let mean = total / sample_size as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(", {:.3e} elem/s", n as f64 / mean),
        Some(Throughput::Bytes(n)) => format!(", {:.3e} B/s", n as f64 / mean),
        None => String::new(),
    };
    println!(
        "bench {name:<40} mean {:>12.1} ns/iter, best {:>12.1} ns/iter{rate}",
        mean * 1e9,
        best * 1e9,
    );
}

/// Declare a benchmark group the way criterion does.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $cfg;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn group_and_function_run() {
        let mut c = quick();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(64));
        let mut ran = false;
        g.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0..64u64).sum::<u64>())
        });
        g.finish();
        assert!(ran);
        c.bench_function("free", |b| b.iter(|| black_box(1 + 1)));
    }
}
