//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro, the
//! `prop_assert*` macros, [`strategy::Strategy`] with `prop_map`, integer
//! range / tuple / `any::<T>()` / `collection::vec` / `sample::select`
//! strategies, and a minimal character-class regex string strategy
//! (`"[class]{m,n}"`). Cases are generated from a deterministic per-test
//! seed; there is **no shrinking** — a failure reports its case number so
//! it can be replayed (the runner is deterministic per test name).

pub mod strategy;

/// Deterministic case runner pieces used by the [`proptest!`] expansion.
pub mod test_runner {
    /// Per-test-block configuration (only `cases` is honored).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases — smaller than upstream's 256 to keep the offline test
        /// suite quick; tests that need fewer set `with_cases` themselves.
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic generator behind every strategy draw
    /// (splitmix64 over a hash of the test name and case index).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// The generator for case `case` of the named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng {
                x: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
            }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)` (u128 arithmetic, no overflow).
        pub fn below(&mut self, lo: u128, hi: u128) -> u128 {
            assert!(lo < hi, "empty range in strategy");
            let span = hi - lo;
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            lo + wide % span
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len_exclusive: usize,
    }

    /// Length specifications accepted by [`vec`].
    pub trait IntoLenRange {
        /// `(min, max_exclusive)` element counts.
        fn into_len_range(self) -> (usize, usize);
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn into_len_range(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn into_len_range(self) -> (usize, usize) {
            let (a, b) = self.into_inner();
            (a, b + 1)
        }
    }

    impl IntoLenRange for usize {
        fn into_len_range(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// A vector of `element` draws with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min_len, max_len_exclusive) = len.into_len_range();
        assert!(min_len < max_len_exclusive, "empty vec length range");
        VecStrategy {
            element,
            min_len,
            max_len_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below(self.min_len as u128, self.max_len_exclusive as u128) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed set of values.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    /// Uniform choice among `values` (cloned out on each draw).
    pub fn select<T: Clone>(values: &[T]) -> Select<T> {
        assert!(!values.is_empty(), "select over an empty slice");
        Select {
            values: values.to_vec(),
        }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(0, self.values.len() as u128) as usize;
            self.values[i].clone()
        }
    }
}

/// `prop::...` namespace, as the upstream prelude exposes it.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property test (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn holds(x in 0usize..10, v in prop::collection::vec(any::<u64>(), 1..5)) {
///         prop_assert!(x < 10 && !v.is_empty());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg(<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let ::std::result::Result::Err(__payload) = __outcome {
                    ::std::eprintln!(
                        "proptest shim: {} failed at case {}/{} (deterministic; rerun reproduces it)",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 1usize..=64, (a, b) in (0u64..10, 5u32..6), v in prop::collection::vec(any::<u64>(), 1..8)) {
            prop_assert!((1..=64).contains(&x));
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(!v.is_empty() && v.len() < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn select_map_and_regex(c in prop::sample::select(&b"ACGT"[..]), s in "[a-z0-9_ .:-]{1,30}", n in (0u8..4).prop_map(|x| x * 2)) {
            prop_assert!(b"ACGT".contains(&c));
            prop_assert!(!s.is_empty() && s.len() <= 30);
            prop_assert!(s.bytes().all(|ch| ch.is_ascii_lowercase()
                || ch.is_ascii_digit()
                || b"_ .:-".contains(&ch)));
            prop_assert!(n % 2 == 0 && n < 8);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = prop::collection::vec(any::<u64>(), 3..10);
        let a = strat.generate(&mut crate::test_runner::TestRng::for_case("t", 0));
        let b = strat.generate(&mut crate::test_runner::TestRng::for_case("t", 0));
        let c = strat.generate(&mut crate::test_runner::TestRng::for_case("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
