//! The [`Strategy`] trait and the primitive strategies the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking and no intermediate
/// value tree: a strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.below(self.start as u128, self.end as u128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.below(*self.start() as u128, *self.end() as u128 + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Shift to unsigned space to keep `below` arithmetic simple.
                const BIAS: i128 = <$t>::MIN as i128;
                let lo = (self.start as i128 - BIAS) as u128;
                let hi = (self.end as i128 - BIAS) as u128;
                (rng.below(lo, hi) as i128 + BIAS) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
);

/// The one regex shape the workspace's tests use: `[class]{min,max}`,
/// where `class` is literal characters and `a-z` ranges (a trailing `-`
/// is literal, as in standard regex character classes).
fn unsupported(pattern: &str) -> ! {
    panic!(
        "proptest shim: unsupported string strategy {pattern:?}; only \"[class]{{min,max}}\" is implemented"
    );
}

fn parse_class_repeat(pattern: &str) -> (Vec<char>, usize, usize) {
    let Some(rest) = pattern.strip_prefix('[') else {
        unsupported(pattern)
    };
    let Some((class, rest)) = rest.split_once(']') else {
        unsupported(pattern)
    };
    let Some(counts) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        unsupported(pattern)
    };
    let Some((min, max)) = counts.split_once(',') else {
        unsupported(pattern)
    };
    let (Ok(min), Ok(max)) = (min.trim().parse::<usize>(), max.trim().parse::<usize>()) else {
        unsupported(pattern)
    };
    assert!(min <= max, "bad repetition in {pattern:?}");

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "inverted range in {pattern:?}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
    (alphabet, min, max)
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_repeat(self);
        let n = rng.below(min as u128, max as u128 + 1) as usize;
        (0..n)
            .map(|_| alphabet[rng.below(0, alphabet.len() as u128) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_regex_parses_workspace_pattern() {
        let (alphabet, min, max) = parse_class_repeat("[a-zA-Z0-9_/ .:-]{1,30}");
        assert_eq!((min, max), (1, 30));
        for c in ['a', 'z', 'A', 'Z', '0', '9', '_', '/', ' ', '.', ':', '-'] {
            assert!(alphabet.contains(&c), "missing {c:?}");
        }
        assert!(!alphabet.contains(&'!'));
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = TestRng::for_case("signed", 0);
        let mut seen_neg = false;
        for _ in 0..200 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            seen_neg |= v < 0;
        }
        assert!(seen_neg);
    }

    #[test]
    fn just_and_map() {
        let mut rng = TestRng::for_case("just", 0);
        assert_eq!(Just(41).generate(&mut rng), 41);
        assert_eq!(Just(20).prop_map(|x| x * 2 + 2).generate(&mut rng), 42);
    }
}
