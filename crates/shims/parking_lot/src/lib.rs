//! Offline stand-in for `parking_lot`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: [`Mutex`] and [`RwLock`]
//! with guard-returning (non-poisoning) `lock`/`read`/`write`. Backed by
//! `std::sync`; a poisoned std lock is recovered rather than propagated,
//! matching parking_lot's no-poisoning semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutex that hands out guards directly (never poisons).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock that hands out guards directly (never poisons).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
