//! Offline stand-in for `rand`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset it uses: [`rngs::StdRng`], [`SeedableRng`]
//! (`seed_from_u64`), and the [`Rng`] convenience methods `gen`,
//! `gen_bool`, and `gen_range`. The generator is xoshiro256++ seeded via
//! splitmix64 — different streams than the real `StdRng` (ChaCha12), which
//! is fine here: every consumer draws simulation randomness and asserts
//! statistical properties, never exact sequences.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
///
/// Generic over the element type (like upstream rand's `SampleRange<T>`)
/// so that integer literals in a range infer their width from the call
/// site, e.g. `BASES[rng.gen_range(0..4)]` makes `0..4` a `Range<usize>`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p` (`0.0 ≤ p ≤ 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream expands the seed into full state; all-zero
            // state is unreachable because splitmix64 is a bijection chain.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let k = rng.gen_range(1usize..=64);
            assert!((1..=64).contains(&k));
        }
    }

    #[test]
    fn unit_floats_and_bools_are_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut sum = 0.0f64;
        let mut trues = 0usize;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
            trues += usize::from(rng.gen_bool(0.25));
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let frac = trues as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "bool frac {frac}");
    }
}
