//! Offline stand-in for `crossbeam`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the one API it uses: `crossbeam::thread::scope`, implemented on
//! top of `std::thread::scope` (stable since Rust 1.63). The signature
//! differences from the real crate are minimal: the scope value passed to
//! closures is `Copy` and taken by value, which the `|scope|` / `|_|`
//! call sites accept either way.

pub mod thread {
    use std::any::Any;

    /// Result of a scope: `Err` holds a panic payload from the closure.
    pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to a spawned scoped thread (std's handle; `join` returns a
    /// `std::thread::Result`).
    pub use std::thread::ScopedJoinHandle;

    /// A scope within which threads borrowing local state may be spawned.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// (so it can spawn further threads), like crossbeam's.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(scope))
        }
    }

    /// Run `f` with a thread scope; all spawned threads are joined before
    /// this returns. Panics escaping `f` itself are reported as `Err`.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u64, 2, 3, 4];
            let sum = super::scope(|scope| {
                let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panic"))
                    .sum::<u64>()
            })
            .expect("scope ok");
            assert_eq!(sum, 100);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let n = super::scope(|scope| {
                let h = scope.spawn(|inner| inner.spawn(|_| 7u32).join().unwrap());
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(n, 7);
        }
    }
}
