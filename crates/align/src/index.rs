//! The distributed seed index: seed k-mer → contig positions.

use hipmer_contig::ContigSet;
use hipmer_dna::{Kmer, KmerCodec};
use hipmer_pgas::{
    AggregatingStores, DistHashMap, PartitionScheme, Partitioner, PhaseReport, Team,
};

/// One seed occurrence in a contig.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedHit {
    /// Contig id.
    pub contig: u32,
    /// Offset of the seed in the contig (forward orientation of the seed's
    /// canonical form: `rc == true` means the canonical seed appears
    /// reverse-complemented at this position).
    pub pos: u32,
    /// Whether the contig shows the reverse complement of the canonical
    /// seed at `pos`.
    pub rc: bool,
}

/// Per-seed hit list, capped to suppress repeat seeds.
#[derive(Clone, Debug, Default)]
pub struct HitList {
    /// The hits (at most `max_hits` retained).
    pub hits: Vec<SeedHit>,
    /// Total occurrences seen, including dropped ones.
    pub total: u32,
}

/// The distributed seed index.
pub struct SeedIndex {
    /// Canonical seed k-mer → hits.
    pub table: DistHashMap<Kmer, HitList>,
    /// Seed codec (seed length).
    pub codec: KmerCodec,
    /// Hits beyond this count are dropped and the seed is flagged
    /// oversubscribed (repeat masking, as merAligner does).
    pub max_hits: usize,
}

impl SeedIndex {
    /// Whether a seed should be ignored as a repeat (more occurrences than
    /// the cap).
    pub fn is_repeat(&self, list: &HitList) -> bool {
        list.total as usize > self.max_hits
    }
}

/// Build the seed index over the contigs in parallel: each rank indexes
/// its contig chunk and ships (seed, hit) entries with aggregating stores
/// (the paper's point: the lookup table build itself is fully parallel).
/// `partition` decides seed ownership — minimizer bucketing co-locates
/// the adjacent seeds of a read's stride walk on one rank, shrinking the
/// distinct-owner set each read's lookup batch touches.
pub fn build_seed_index(
    team: &Team,
    contigs: &ContigSet,
    seed_len: usize,
    max_hits: usize,
    partition: PartitionScheme,
) -> (SeedIndex, PhaseReport) {
    let codec = KmerCodec::new(seed_len);
    let part = Partitioner::new(partition, seed_len);
    let table: DistHashMap<Kmer, HitList> = part.table(*team.topo(), codec);

    let merge = move |a: &mut HitList, b: HitList| {
        a.total += b.total;
        for h in b.hits {
            if a.hits.len() < max_hits {
                a.hits.push(h);
            }
        }
    };

    // Window-parallel work units so a dominant contig does not serialize
    // the index build onto one rank.
    const WINDOW: usize = 4096;
    let mut windows: Vec<(u32, u32)> = Vec::new(); // (contig, window)
    for c in &contigs.contigs {
        let n_seeds = c.seq.len().saturating_sub(seed_len) + 1;
        for w in 0..n_seeds.div_ceil(WINDOW).max(1) {
            windows.push((c.id as u32, w as u32));
        }
    }

    let (_, mut stats) = team.run_named("scaffold/meraligner-index", |ctx| {
        let mut agg = AggregatingStores::new(&table, merge);
        for &(ci, w) in &windows[ctx.chunk(windows.len())] {
            let contig = &contigs.contigs[ci as usize];
            let lo = w as usize * WINDOW;
            let hi = (lo + WINDOW + seed_len - 1).min(contig.seq.len());
            for (off, km, canon) in codec.canonical_kmers(&contig.seq[lo..hi]) {
                ctx.stats.compute(1);
                let hit = SeedHit {
                    contig: ci,
                    pos: (lo + off) as u32,
                    rc: canon != km,
                };
                agg.push(
                    ctx,
                    canon,
                    HitList {
                        hits: vec![hit],
                        total: 1,
                    },
                );
            }
        }
        agg.finish(ctx);
    });
    table.drain_service_into(&mut stats);
    let report = PhaseReport::new("scaffold/meraligner-index", *team.topo(), stats)
        .with_placement(part.label());
    (
        SeedIndex {
            table,
            codec,
            max_hits,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_pgas::{RankCtx, Topology};

    fn contigs_from(seqs: &[&[u8]]) -> ContigSet {
        ContigSet::from_sequences(
            KmerCodec::new(21),
            seqs.iter().map(|s| s.to_vec()).collect(),
        )
    }

    fn lcg(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn every_seed_is_indexed_at_its_position() {
        let c0 = lcg(200, 1);
        let set = contigs_from(&[&c0]);
        let team = Team::new(Topology::new(4, 2));
        let (index, _) = build_seed_index(&team, &set, 15, 16, PartitionScheme::Uniform);
        let mut ctx = RankCtx::new(0, Topology::new(4, 2));
        let codec = KmerCodec::new(15);
        for (pos, km) in codec.kmers(&set.contigs[0].seq) {
            let canon = codec.canonical(km);
            let list = index.table.get(&mut ctx, &canon).expect("seed indexed");
            assert!(
                list.hits.iter().any(|h| h.pos == pos as u32),
                "missing hit at {pos}"
            );
        }
    }

    #[test]
    fn rc_flag_reflects_orientation() {
        let set = contigs_from(&[b"TTTTTTTTTTTTTTTTTTTTTGGGGG"]);
        let team = Team::new(Topology::new(1, 1));
        let (index, _) = build_seed_index(&team, &set, 15, 16, PartitionScheme::Uniform);
        let mut ctx = RankCtx::new(0, Topology::new(1, 1));
        let codec = KmerCodec::new(15);
        // TTT... seed: canonical is AAA..., so rc must be true.
        let km = codec.pack(b"TTTTTTTTTTTTTTT").unwrap();
        let canon = codec.canonical(km);
        assert_ne!(canon, km);
        let list = index.table.get(&mut ctx, &canon).unwrap();
        assert!(list.hits.iter().all(|h| h.rc));
    }

    #[test]
    fn repeat_seeds_are_capped_but_counted() {
        // The same 30-base block in many contigs.
        let block = lcg(30, 9);
        let seqs: Vec<Vec<u8>> = (0..20)
            .map(|i| {
                let mut s = lcg(40, 100 + i);
                s.extend_from_slice(&block);
                s.extend(lcg(40, 200 + i));
                s
            })
            .collect();
        let set = ContigSet::from_sequences(KmerCodec::new(21), seqs);
        let team = Team::new(Topology::new(2, 2));
        let (index, _) = build_seed_index(&team, &set, 15, 4, PartitionScheme::Uniform);
        let mut ctx = RankCtx::new(0, Topology::new(2, 2));
        let codec = KmerCodec::new(15);
        let km = codec.canonical(codec.pack(&block[..15]).unwrap());
        let list = index.table.get(&mut ctx, &km).unwrap();
        assert_eq!(list.total, 20);
        assert!(list.hits.len() <= 4);
        assert!(index.is_repeat(&list));
    }

    #[test]
    fn index_is_complete_across_rank_counts() {
        let seqs: Vec<Vec<u8>> = (0..10).map(|i| lcg(120, i)).collect();
        let set = ContigSet::from_sequences(KmerCodec::new(21), seqs);
        let sizes = |ranks: usize| -> usize {
            let team = Team::new(Topology::new(ranks, 4));
            let (index, _) = build_seed_index(&team, &set, 15, 8, PartitionScheme::Uniform);
            index.table.len()
        };
        let a = sizes(1);
        let b = sizes(8);
        assert_eq!(a, b);
    }
}
