//! Banded Smith–Waterman alignment.
//!
//! The extension kernel of merAligner and the "patching" step of gap
//! closing. The band keeps the kernel O(n·band) — reads differ from
//! contigs by substitutions and the occasional small indel, so a narrow
//! band loses nothing.

/// Scoring parameters (match bonus is positive; penalties are negative).
#[derive(Clone, Copy, Debug)]
pub struct SwParams {
    /// Score for a matching base pair.
    pub mat: i32,
    /// Score for a mismatch.
    pub mis: i32,
    /// Gap (insertion/deletion) penalty, linear.
    pub gap: i32,
    /// Band half-width: cells with |i - j| > band are never filled.
    pub band: usize,
}

impl Default for SwParams {
    fn default() -> Self {
        SwParams {
            mat: 1,
            mis: -2,
            gap: -3,
            band: 8,
        }
    }
}

/// The result of a banded local alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwResult {
    /// Best local score.
    pub score: i32,
    /// Start position in `a` (inclusive) of the best local path.
    pub a_start: usize,
    /// End position in `a` (exclusive) of the best cell.
    pub a_end: usize,
    /// Start position in `b` (inclusive).
    pub b_start: usize,
    /// End position in `b` (exclusive).
    pub b_end: usize,
    /// Matching bases on the best path.
    pub matches: usize,
    /// Aligned length on the best path (matches + mismatches + gaps).
    pub aligned: usize,
}

/// Banded local (Smith–Waterman) alignment of `a` vs `b`.
///
/// Returns the best-scoring local alignment confined to the band around
/// the main diagonal. O(|a|·band) time, O(band) additional memory beyond
/// the traceback matrix (kept dense here for clarity — sequences in this
/// pipeline are reads and gap flanks, i.e. small).
pub fn banded_sw(a: &[u8], b: &[u8], p: &SwParams) -> SwResult {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return SwResult {
            score: 0,
            a_start: 0,
            a_end: 0,
            b_start: 0,
            b_end: 0,
            matches: 0,
            aligned: 0,
        };
    }
    let w = p.band as isize;
    // Dense DP with traceback; band enforced by skipping cells.
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    let mut h = vec![0i32; (n + 1) * (m + 1)];
    // Traceback codes: 0 stop, 1 diag, 2 up (gap in b), 3 left (gap in a).
    let mut tb = vec![0u8; (n + 1) * (m + 1)];
    let mut best = (0i32, 0usize, 0usize);

    for i in 1..=n {
        let j_lo = ((i as isize - w).max(1)) as usize;
        let j_hi = ((i as isize + w).min(m as isize)) as usize;
        for j in j_lo..=j_hi {
            let diag = h[idx(i - 1, j - 1)] + if a[i - 1] == b[j - 1] { p.mat } else { p.mis };
            let up = if (i as isize - 1 - j as isize).abs() <= w {
                h[idx(i - 1, j)] + p.gap
            } else {
                i32::MIN / 2
            };
            let left = if (i as isize - (j as isize - 1)).abs() <= w {
                h[idx(i, j - 1)] + p.gap
            } else {
                i32::MIN / 2
            };
            let (score, dir) = [(diag, 1u8), (up, 2), (left, 3), (0, 0)]
                .into_iter()
                .max_by_key(|(s, _)| *s)
                .unwrap();
            h[idx(i, j)] = score;
            tb[idx(i, j)] = dir;
            if score > best.0 {
                best = (score, i, j);
            }
        }
    }

    // Traceback for match/length statistics.
    let (score, mut i, mut j) = best;
    let (a_end, b_end) = (i, j);
    let mut matches = 0usize;
    let mut aligned = 0usize;
    while i > 0 && j > 0 {
        match tb[idx(i, j)] {
            1 => {
                if a[i - 1] == b[j - 1] {
                    matches += 1;
                }
                aligned += 1;
                i -= 1;
                j -= 1;
            }
            2 => {
                aligned += 1;
                i -= 1;
            }
            3 => {
                aligned += 1;
                j -= 1;
            }
            _ => break,
        }
    }
    SwResult {
        score,
        a_start: i,
        a_end,
        b_start: j,
        b_end,
        matches,
        aligned,
    }
}

/// Ungapped extension: compare `a` and `b` position-by-position and return
/// (matches, length). The fast path for substitution-only reads.
pub fn ungapped_matches(a: &[u8], b: &[u8]) -> (usize, usize) {
    let len = a.len().min(b.len());
    let matches = a[..len]
        .iter()
        .zip(&b[..len])
        .filter(|(x, y)| x == y)
        .count();
    (matches, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_score_full() {
        let r = banded_sw(b"ACGTACGT", b"ACGTACGT", &SwParams::default());
        assert_eq!(r.score, 8);
        assert_eq!(r.matches, 8);
        assert_eq!(r.aligned, 8);
        assert_eq!((r.a_start, r.a_end, r.b_start, r.b_end), (0, 8, 0, 8));
    }

    #[test]
    fn single_mismatch() {
        let r = banded_sw(b"ACGTACGT", b"ACGTTCGT", &SwParams::default());
        assert_eq!(r.matches, 7);
        assert_eq!(r.aligned, 8);
        assert_eq!(r.score, 7 - 2);
    }

    #[test]
    fn single_deletion_within_band() {
        // b is a with one base deleted.
        let r = banded_sw(b"ACGTTACGGT", b"ACGTACGGT", &SwParams::default());
        assert_eq!(r.matches, 9);
        assert_eq!(r.aligned, 10); // 9 matches + 1 gap
        assert_eq!(r.score, 9 - 3);
    }

    #[test]
    fn local_alignment_ignores_bad_prefix() {
        // Shared core "ACGTACGTAC", junk around it.
        let r = banded_sw(b"TTTTACGTACGTAC", b"GGGGACGTACGTAC", &SwParams::default());
        assert!(r.matches >= 10, "found only {} matches", r.matches);
    }

    #[test]
    fn empty_inputs() {
        let r = banded_sw(b"", b"ACGT", &SwParams::default());
        assert_eq!(r.score, 0);
        assert_eq!(r.aligned, 0);
    }

    #[test]
    fn band_limits_shift() {
        // A 12-base offset exceeds band 4: the aligner cannot bridge it and
        // finds at best a short local match.
        let a = b"AAAAAAAAAAAAACGTACGTCCC";
        let b = b"ACGTACGTCCC";
        let narrow = banded_sw(
            a,
            b,
            &SwParams {
                band: 4,
                ..SwParams::default()
            },
        );
        let wide = banded_sw(
            a,
            b,
            &SwParams {
                band: 16,
                ..SwParams::default()
            },
        );
        assert!(wide.matches > narrow.matches);
        assert!(wide.matches >= 11);
    }

    #[test]
    fn ungapped_counts() {
        assert_eq!(ungapped_matches(b"ACGT", b"ACGA"), (3, 4));
        assert_eq!(ungapped_matches(b"ACGTAA", b"ACGT"), (4, 4));
        assert_eq!(ungapped_matches(b"", b""), (0, 0));
    }

    #[test]
    fn sw_is_symmetric_for_substitutions() {
        let a = b"ACGTTGCAAG";
        let b = b"ACGATGCAAG";
        let r1 = banded_sw(a, b, &SwParams::default());
        let r2 = banded_sw(b, a, &SwParams::default());
        assert_eq!(r1.score, r2.score);
        assert_eq!(r1.matches, r2.matches);
    }
}
