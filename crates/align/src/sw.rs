//! Banded Smith–Waterman alignment.
//!
//! The extension kernel of merAligner and the "patching" step of gap
//! closing. The band keeps the kernel O(n·band) — reads differ from
//! contigs by substitutions and the occasional small indel, so a narrow
//! band loses nothing.
//!
//! Two implementations live here:
//!
//! * [`banded_sw`] — the production kernel: a two-row rolling-array DP
//!   that touches only the O(band) cells of each row (plus a banded
//!   traceback matrix), exits as soon as the band leaves the matrix, and
//!   short-circuits the substitution-free case with a bit-parallel
//!   (u64-block) diagonal scan. Scratch buffers can be reused across
//!   calls via [`SwWorkspace`]/[`banded_sw_with`].
//! * [`banded_sw_reference`] — the original dense O(n·m) formulation,
//!   kept as the executable specification. Property tests pin
//!   `banded_sw` result-identical to it on every input.

/// Scoring parameters (match bonus is positive; penalties are negative).
#[derive(Clone, Copy, Debug)]
pub struct SwParams {
    /// Score for a matching base pair.
    pub mat: i32,
    /// Score for a mismatch.
    pub mis: i32,
    /// Gap (insertion/deletion) penalty, linear.
    pub gap: i32,
    /// Band half-width: cells with |i - j| > band are never filled.
    pub band: usize,
}

impl Default for SwParams {
    fn default() -> Self {
        SwParams {
            mat: 1,
            mis: -2,
            gap: -3,
            band: 8,
        }
    }
}

/// The result of a banded local alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwResult {
    /// Best local score.
    pub score: i32,
    /// Start position in `a` (inclusive) of the best local path.
    pub a_start: usize,
    /// End position in `a` (exclusive) of the best cell.
    pub a_end: usize,
    /// Start position in `b` (inclusive).
    pub b_start: usize,
    /// End position in `b` (exclusive).
    pub b_end: usize,
    /// Matching bases on the best path.
    pub matches: usize,
    /// Aligned length on the best path (matches + mismatches + gaps).
    pub aligned: usize,
}

impl SwResult {
    /// The all-zero result of aligning against an empty sequence.
    fn empty() -> Self {
        SwResult {
            score: 0,
            a_start: 0,
            a_end: 0,
            b_start: 0,
            b_end: 0,
            matches: 0,
            aligned: 0,
        }
    }
}

/// Reusable scratch buffers for [`banded_sw_with`], so tight alignment
/// loops (one per rank in merAligner, one per gap in gap closing) pay the
/// row/traceback allocations once instead of per call.
#[derive(Default)]
pub struct SwWorkspace {
    /// Previous DP row, band coordinates (2·band + 1 cells).
    prev: Vec<i32>,
    /// Current DP row, band coordinates.
    cur: Vec<i32>,
    /// Banded traceback: row-major `n × (2·band + 1)` direction codes.
    tb: Vec<u8>,
}

impl SwWorkspace {
    /// A fresh workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Banded local (Smith–Waterman) alignment of `a` vs `b`.
///
/// Returns the best-scoring local alignment confined to the band around
/// the main diagonal, result-identical to [`banded_sw_reference`] in
/// O(|a|·band) time and O(|a|·band) memory (the banded traceback; the DP
/// itself keeps two rolling rows).
pub fn banded_sw(a: &[u8], b: &[u8], p: &SwParams) -> SwResult {
    banded_sw_with(&mut SwWorkspace::new(), a, b, p)
}

/// [`banded_sw`] with caller-owned scratch buffers (see [`SwWorkspace`]).
pub fn banded_sw_with(ws: &mut SwWorkspace, a: &[u8], b: &[u8], p: &SwParams) -> SwResult {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return SwResult::empty();
    }
    // Bit-parallel fast path: if the full-overlap diagonal is mismatch-free
    // the optimum is that run — provably, for sane scoring (see below).
    if let Some(r) = perfect_diagonal(a, b, p) {
        return r;
    }

    let w = p.band as isize;
    // Band width in cells; column c of row i holds matrix cell
    // j = (i - w) + c, so moving down one row shifts the window right by
    // one: cell (i-1, j) sits at column c+1 of the previous row and the
    // diagonal (i-1, j-1) at column c.
    let width = (2 * p.band + 1).max(1);
    ws.prev.clear();
    ws.prev.resize(width, 0);
    ws.cur.clear();
    ws.cur.resize(width, 0);
    ws.tb.clear();
    ws.tb.resize(n * width, 0);

    let mut best = (0i32, 0usize, 0usize);
    for i in 1..=n {
        let j_lo = ((i as isize - w).max(1)) as usize;
        if j_lo > m {
            // The band has slid past the last column of `b`; every later
            // row is empty too. (The dense reference spins through them.)
            break;
        }
        let j_hi = ((i as isize + w).min(m as isize)) as usize;
        // j of column 0 in this row.
        let base = i as isize - w;
        // Columns below the range keep their zero initialization — they
        // stand in for the virtual zero column j = 0 the reference reads.
        let c0 = (j_lo as isize - base) as usize;
        for c in ws.cur[..c0].iter_mut() {
            *c = 0;
        }
        let ai = a[i - 1];
        let row_tb = &mut ws.tb[(i - 1) * width..i * width];
        for (off, &bj) in b[j_lo - 1..j_hi].iter().enumerate() {
            let c = c0 + off;
            let diag = ws.prev[c] + if ai == bj { p.mat } else { p.mis };
            // (i-1, j) is in band iff |i-1-j| <= w, i.e. c + 1 <= 2w.
            let up = if c + 1 < width {
                ws.prev[c + 1] + p.gap
            } else {
                i32::MIN / 2
            };
            // (i, j-1) is in band iff c >= 1.
            let left = if c >= 1 {
                ws.cur[c - 1] + p.gap
            } else {
                i32::MIN / 2
            };
            // Same candidate order and tie-breaking as the reference's
            // `max_by_key` over [diag, up, left, 0]: later candidates win
            // ties, hence `>=`.
            let mut score = diag;
            let mut dir = 1u8;
            if up >= score {
                score = up;
                dir = 2;
            }
            if left >= score {
                score = left;
                dir = 3;
            }
            if score <= 0 {
                score = 0;
                dir = 0;
            }
            ws.cur[c] = score;
            row_tb[c] = dir;
            if score > best.0 {
                best = (score, i, (c as isize + base) as usize);
            }
        }
        std::mem::swap(&mut ws.prev, &mut ws.cur);
    }

    // Traceback for match/length statistics, reading the banded matrix.
    let (score, mut i, mut j) = best;
    let (a_end, b_end) = (i, j);
    let mut matches = 0usize;
    let mut aligned = 0usize;
    while i > 0 && j > 0 {
        let c = j as isize - (i as isize - w);
        debug_assert!((0..width as isize).contains(&c), "traceback left band");
        match ws.tb[(i - 1) * width + c as usize] {
            1 => {
                if a[i - 1] == b[j - 1] {
                    matches += 1;
                }
                aligned += 1;
                i -= 1;
                j -= 1;
            }
            2 => {
                aligned += 1;
                i -= 1;
            }
            3 => {
                aligned += 1;
                j -= 1;
            }
            _ => break,
        }
    }
    SwResult {
        score,
        a_start: i,
        a_end,
        b_start: j,
        b_end,
        matches,
        aligned,
    }
}

/// Substitution-free fast path: when `a[..L]` and `b[..L]` (L = full
/// overlap) are identical, the optimal banded local alignment is that
/// whole diagonal run and the DP can be skipped.
///
/// Soundness: with `mat >= 1`, `mis <= mat` and `gap < 0` every cell
/// obeys `H[i][j] <= mat * min(i, j)`, so `mat * L` is attainable only at
/// `min(i, j) = L` — and at `(L, L)` only via the all-match diagonal,
/// which is exactly the cell the ascending reference scan records first.
/// The mismatch test compares u64 blocks (eight bases per XOR) rather
/// than bytes.
fn perfect_diagonal(a: &[u8], b: &[u8], p: &SwParams) -> Option<SwResult> {
    if p.mat < 1 || p.mis > p.mat || p.gap >= 0 {
        return None;
    }
    let len = a.len().min(b.len());
    if len == 0 || !equal_u64_blocks(&a[..len], &b[..len]) {
        return None;
    }
    Some(SwResult {
        score: len as i32 * p.mat,
        a_start: 0,
        a_end: len,
        b_start: 0,
        b_end: len,
        matches: len,
        aligned: len,
    })
}

/// Bit-parallel equality of two equal-length slices: XOR eight bytes at a
/// time and fold, with a byte-loop tail.
#[inline]
fn equal_u64_blocks(a: &[u8], b: &[u8]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    let mut acc = 0u64;
    for (x, y) in ac.by_ref().zip(bc.by_ref()) {
        let xw = u64::from_ne_bytes(x.try_into().expect("chunk of 8"));
        let yw = u64::from_ne_bytes(y.try_into().expect("chunk of 8"));
        acc |= xw ^ yw;
    }
    acc == 0 && ac.remainder() == bc.remainder()
}

/// Dense-matrix banded Smith–Waterman: the executable specification
/// [`banded_sw`] is pinned against. O(|a|·|b|) memory; use only for
/// testing and benchmarking the optimized kernel.
pub fn banded_sw_reference(a: &[u8], b: &[u8], p: &SwParams) -> SwResult {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return SwResult::empty();
    }
    let w = p.band as isize;
    // Dense DP with traceback; band enforced by skipping cells.
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    let mut h = vec![0i32; (n + 1) * (m + 1)];
    // Traceback codes: 0 stop, 1 diag, 2 up (gap in b), 3 left (gap in a).
    let mut tb = vec![0u8; (n + 1) * (m + 1)];
    let mut best = (0i32, 0usize, 0usize);

    for i in 1..=n {
        let j_lo = ((i as isize - w).max(1)) as usize;
        let j_hi = ((i as isize + w).min(m as isize)) as usize;
        for j in j_lo..=j_hi {
            let diag = h[idx(i - 1, j - 1)] + if a[i - 1] == b[j - 1] { p.mat } else { p.mis };
            let up = if (i as isize - 1 - j as isize).abs() <= w {
                h[idx(i - 1, j)] + p.gap
            } else {
                i32::MIN / 2
            };
            let left = if (i as isize - (j as isize - 1)).abs() <= w {
                h[idx(i, j - 1)] + p.gap
            } else {
                i32::MIN / 2
            };
            let (score, dir) = [(diag, 1u8), (up, 2), (left, 3), (0, 0)]
                .into_iter()
                .max_by_key(|(s, _)| *s)
                .unwrap();
            h[idx(i, j)] = score;
            tb[idx(i, j)] = dir;
            if score > best.0 {
                best = (score, i, j);
            }
        }
    }

    // Traceback for match/length statistics.
    let (score, mut i, mut j) = best;
    let (a_end, b_end) = (i, j);
    let mut matches = 0usize;
    let mut aligned = 0usize;
    while i > 0 && j > 0 {
        match tb[idx(i, j)] {
            1 => {
                if a[i - 1] == b[j - 1] {
                    matches += 1;
                }
                aligned += 1;
                i -= 1;
                j -= 1;
            }
            2 => {
                aligned += 1;
                i -= 1;
            }
            3 => {
                aligned += 1;
                j -= 1;
            }
            _ => break,
        }
    }
    SwResult {
        score,
        a_start: i,
        a_end,
        b_start: j,
        b_end,
        matches,
        aligned,
    }
}

/// Ungapped extension: compare `a` and `b` position-by-position and return
/// (matches, length). The fast path for substitution-only reads.
///
/// Counts mismatches eight bases at a time: the XOR of two u64 blocks has
/// a non-zero byte exactly at differing positions, located with the SWAR
/// zero-byte test and counted via popcount.
pub fn ungapped_matches(a: &[u8], b: &[u8]) -> (usize, usize) {
    let len = a.len().min(b.len());
    let (a, b) = (&a[..len], &b[..len]);
    let mut mismatches = 0u32;
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for (x, y) in ac.by_ref().zip(bc.by_ref()) {
        let xw = u64::from_ne_bytes(x.try_into().expect("chunk of 8"));
        let yw = u64::from_ne_bytes(y.try_into().expect("chunk of 8"));
        let diff = xw ^ yw;
        // Set the high bit of every non-zero byte of `diff`: the 7-bit add
        // carries into bit 7 iff the low bits are non-zero (and cannot
        // carry across bytes), OR-ing `diff` itself catches bit 7.
        const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
        let nonzero = (((diff & LOW7) + LOW7) | diff) & !LOW7;
        mismatches += nonzero.count_ones();
    }
    let matched_tail = ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .filter(|(x, y)| x == y)
        .count();
    let matches = len - mismatches as usize - (ac.remainder().len() - matched_tail);
    (matches, len)
}

/// Byte-at-a-time `ungapped_matches`: the executable specification the
/// SWAR version is pinned against.
pub fn ungapped_matches_reference(a: &[u8], b: &[u8]) -> (usize, usize) {
    let len = a.len().min(b.len());
    let matches = a[..len]
        .iter()
        .zip(&b[..len])
        .filter(|(x, y)| x == y)
        .count();
    (matches, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_score_full() {
        let r = banded_sw(b"ACGTACGT", b"ACGTACGT", &SwParams::default());
        assert_eq!(r.score, 8);
        assert_eq!(r.matches, 8);
        assert_eq!(r.aligned, 8);
        assert_eq!((r.a_start, r.a_end, r.b_start, r.b_end), (0, 8, 0, 8));
    }

    #[test]
    fn single_mismatch() {
        let r = banded_sw(b"ACGTACGT", b"ACGTTCGT", &SwParams::default());
        assert_eq!(r.matches, 7);
        assert_eq!(r.aligned, 8);
        assert_eq!(r.score, 7 - 2);
    }

    #[test]
    fn single_deletion_within_band() {
        // b is a with one base deleted.
        let r = banded_sw(b"ACGTTACGGT", b"ACGTACGGT", &SwParams::default());
        assert_eq!(r.matches, 9);
        assert_eq!(r.aligned, 10); // 9 matches + 1 gap
        assert_eq!(r.score, 9 - 3);
    }

    #[test]
    fn local_alignment_ignores_bad_prefix() {
        // Shared core "ACGTACGTAC", junk around it.
        let r = banded_sw(b"TTTTACGTACGTAC", b"GGGGACGTACGTAC", &SwParams::default());
        assert!(r.matches >= 10, "found only {} matches", r.matches);
    }

    #[test]
    fn empty_inputs() {
        let r = banded_sw(b"", b"ACGT", &SwParams::default());
        assert_eq!(r.score, 0);
        assert_eq!(r.aligned, 0);
    }

    #[test]
    fn band_limits_shift() {
        // A 12-base offset exceeds band 4: the aligner cannot bridge it and
        // finds at best a short local match.
        let a = b"AAAAAAAAAAAAACGTACGTCCC";
        let b = b"ACGTACGTCCC";
        let narrow = banded_sw(
            a,
            b,
            &SwParams {
                band: 4,
                ..SwParams::default()
            },
        );
        let wide = banded_sw(
            a,
            b,
            &SwParams {
                band: 16,
                ..SwParams::default()
            },
        );
        assert!(wide.matches > narrow.matches);
        assert!(wide.matches >= 11);
    }

    #[test]
    fn ungapped_counts() {
        assert_eq!(ungapped_matches(b"ACGT", b"ACGA"), (3, 4));
        assert_eq!(ungapped_matches(b"ACGTAA", b"ACGT"), (4, 4));
        assert_eq!(ungapped_matches(b"", b""), (0, 0));
    }

    #[test]
    fn ungapped_matches_swar_equals_reference() {
        // Cross the 8-byte block boundary and pack mismatches densely,
        // including bytes with the high bit set (non-ASCII robustness).
        let cases: [(&[u8], &[u8]); 6] = [
            (b"ACGTACGTA", b"ACGTACGTA"),
            (b"ACGTACGTACGTACGTT", b"ACGTACGTACGTACGTA"),
            (b"AAAAAAAA", b"CCCCCCCC"),
            (b"ACGT", b"TGCA"),
            (&[0x80, 0x81, 0x01, 0x00], &[0x00, 0x81, 0x01, 0x80]),
            (&[0xff; 40], &[0x7f; 40]),
        ];
        for (a, b) in cases {
            assert_eq!(
                ungapped_matches(a, b),
                ungapped_matches_reference(a, b),
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn sw_is_symmetric_for_substitutions() {
        let a = b"ACGTTGCAAG";
        let b = b"ACGATGCAAG";
        let r1 = banded_sw(a, b, &SwParams::default());
        let r2 = banded_sw(b, a, &SwParams::default());
        assert_eq!(r1.score, r2.score);
        assert_eq!(r1.matches, r2.matches);
    }

    #[test]
    fn optimized_equals_reference_on_edge_shapes() {
        let p = SwParams::default();
        let shapes: [(&[u8], &[u8]); 7] = [
            (b"A", b"A"),
            (b"A", b"C"),
            (b"ACGTACGTACGT", b"ACG"),                // band slides off b
            (b"ACG", b"ACGTACGTACGT"),                // wide b
            (b"ACGTTACGGT", b"ACGTACGGT"),            // indel
            (b"TTTTACGTACGTAC", b"GGGGACGTACGTAC"),   // junk flanks
            (b"AAAAAAAAAAAAACGTACGTCCC", b"AAACCCC"), // shifted
        ];
        for (a, b) in shapes {
            assert_eq!(
                banded_sw(a, b, &p),
                banded_sw_reference(a, b, &p),
                "a={} b={}",
                String::from_utf8_lossy(a),
                String::from_utf8_lossy(b)
            );
        }
        // Degenerate band widths.
        for band in [0usize, 1, 64] {
            let p = SwParams {
                band,
                ..SwParams::default()
            };
            assert_eq!(
                banded_sw(b"ACGTTACGGT", b"ACGTACGGT", &p),
                banded_sw_reference(b"ACGTTACGGT", b"ACGTACGGT", &p),
                "band={band}"
            );
        }
    }

    #[test]
    fn workspace_reuse_is_result_transparent() {
        let p = SwParams::default();
        let mut ws = SwWorkspace::new();
        // A big alignment first leaves stale buffer contents behind.
        let big_a: Vec<u8> = (0..300).map(|i| b"ACGT"[i % 4]).collect();
        let big_b: Vec<u8> = (0..290).map(|i| b"ACGT"[(i + 1) % 4]).collect();
        banded_sw_with(&mut ws, &big_a, &big_b, &p);
        let fresh = banded_sw(b"ACGTTACGGT", b"ACGTACGGT", &p);
        let reused = banded_sw_with(&mut ws, b"ACGTTACGGT", b"ACGTACGGT", &p);
        assert_eq!(fresh, reused);
    }
}
