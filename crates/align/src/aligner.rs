//! The seed-and-extend alignment driver.
//!
//! Communication structure (merAligner §4.4): each rank streams **all** its
//! reads' seed lookups through one [`LookupBatch`] (stage 1), consulting a
//! per-rank [`SoftwareCache`] of seed hit lists first, then runs the
//! candidate-clustering and extension logic per read on the resolved lists
//! (stage 2) with a second cache of contig replicas. Both optimizations are
//! result-transparent — alignments are byte-identical to the fine-grained
//! path — and both are ablatable via [`AlignConfig::lookup_batch`] and
//! [`AlignConfig::cache_entries`].

use crate::index::{build_seed_index, HitList, SeedIndex};
use crate::sw::ungapped_matches;
use hipmer_contig::ContigSet;
use hipmer_dna::Kmer;
use hipmer_pgas::{
    LookupBatch, PartitionScheme, PhaseReport, RankCtx, Schedule, SoftwareCache, Team,
};
use hipmer_seqio::SeqRecord;
use std::collections::HashMap;

/// merAligner configuration.
#[derive(Clone, Debug)]
pub struct AlignConfig {
    /// Seed k-mer length.
    pub seed_len: usize,
    /// Look up every `seed_stride`-th seed position of the read (1 = all).
    pub seed_stride: usize,
    /// Maximum hits per seed before it is treated as repeat and skipped.
    pub max_seed_hits: usize,
    /// Minimum identity (matches / aligned length) to keep an alignment.
    pub min_identity: f64,
    /// Minimum aligned length to keep an alignment.
    pub min_aligned: usize,
    /// Keep at most this many alignments per read (best first).
    pub max_alignments_per_read: usize,
    /// Seed lookups buffered per destination rank before they ship as one
    /// [`LookupBatch`] message. `<= 1` disables batching and issues one
    /// fine-grained get per seed — the unoptimized baseline, kept as an
    /// ablation hook.
    pub lookup_batch: usize,
    /// Capacity of the per-rank seed cache (which caches *negatively*:
    /// absent seeds are remembered as absent) and of the per-rank contig
    /// replica cache. `0` disables both caches.
    pub cache_entries: usize,
    /// How reads are dealt to ranks. [`Schedule::Dynamic`] deals guided
    /// chunks weighted by read length, which absorbs the skew of
    /// repeat-heavy or long-read-tailed inputs; alignments are byte-
    /// identical either way.
    pub schedule: Schedule,
    /// Seed-index ownership scheme. [`PartitionScheme::Minimizer`]
    /// co-locates a read's adjacent stride seeds on one rank so each
    /// read's lookup batch touches fewer distinct owners; alignments
    /// are byte-identical either way.
    pub partition: PartitionScheme,
}

impl AlignConfig {
    /// Defaults for a given seed length.
    pub fn new(seed_len: usize) -> Self {
        AlignConfig {
            seed_len,
            seed_stride: 4,
            max_seed_hits: 8,
            min_identity: 0.92,
            min_aligned: 30,
            max_alignments_per_read: 4,
            lookup_batch: 256,
            cache_entries: 4096,
            schedule: Schedule::Static,
            partition: PartitionScheme::Uniform,
        }
    }
}

/// One read-to-contig alignment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Alignment {
    /// Global read index (into the read slice handed to [`align_reads`]).
    pub read: u32,
    /// Contig id.
    pub contig: u32,
    /// Alignment start in the read (0-based, forward read coordinates).
    pub read_start: u32,
    /// Alignment end in the read (exclusive).
    pub read_end: u32,
    /// Alignment start in the contig.
    pub contig_start: u32,
    /// Alignment end in the contig (exclusive).
    pub contig_end: u32,
    /// `true` if the read aligns to the contig's reverse strand.
    pub rc: bool,
    /// Matching bases.
    pub matches: u32,
    /// Read length (carried for projection convenience).
    pub read_len: u32,
}

impl Alignment {
    /// Identity over the aligned span.
    pub fn identity(&self) -> f64 {
        let len = (self.read_end - self.read_start) as f64;
        if len == 0.0 {
            0.0
        } else {
            self.matches as f64 / len
        }
    }

    /// Whether the alignment covers (nearly) the whole read.
    pub fn is_full_length(&self, slack: u32) -> bool {
        self.read_start <= slack && self.read_end + slack >= self.read_len
    }
}

/// A candidate (contig, strand, diagonal) cluster during seeding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Candidate {
    contig: u32,
    rc: bool,
    /// Contig position minus read position (the diagonal), offset to stay
    /// non-negative.
    diag: i64,
}

/// One stride-selected seed of a read with its resolved hit list.
struct ResolvedSeed {
    /// Seed position in the read (forward coordinates).
    rpos: usize,
    /// Canonical seed appears reverse-complemented in the read.
    read_rc: bool,
    /// Canonical seed k-mer (the index key).
    canon: Kmer,
    /// The hit list, once resolved (`None` = seed absent from the index).
    list: Option<HitList>,
}

/// Write one resolved lookup back into its seed slot, remembering the
/// result (present *or* absent) in the seed cache.
fn deliver_seed(
    resolved: &mut [Vec<ResolvedSeed>],
    cache: &mut Option<SoftwareCache<Kmer, Option<HitList>>>,
    (slot, s): (usize, usize),
    list: Option<HitList>,
) {
    if let Some(c) = cache.as_mut() {
        c.insert(resolved[slot][s].canon, list.clone());
    }
    resolved[slot][s].list = list;
}

/// Stage 1: resolve every stride-selected seed of the rank's read chunk.
///
/// Cache-first, then one streaming [`LookupBatch`] over all misses of all
/// reads — seeds from different reads that hash to the same owner share a
/// message, which is what makes batching effective at high rank counts
/// (a single read's ~two dozen seeds scatter too thinly). Results are
/// byte-identical to per-seed [`DistHashMap::get`]s; only the message
/// accounting differs.
///
/// [`DistHashMap::get`]: hipmer_pgas::DistHashMap::get
fn resolve_seeds(
    ctx: &mut RankCtx,
    index: &SeedIndex,
    reads: &[SeqRecord],
    range: std::ops::Range<usize>,
    cfg: &AlignConfig,
) -> Vec<Vec<ResolvedSeed>> {
    let codec = &index.codec;
    let mut resolved: Vec<Vec<ResolvedSeed>> = range
        .map(|ri| {
            codec
                .canonical_kmers(&reads[ri].seq)
                .enumerate()
                .filter(|(i, _)| i % cfg.seed_stride == 0)
                .map(|(_, (pos, km, canon))| ResolvedSeed {
                    rpos: pos,
                    read_rc: canon != km,
                    canon,
                    list: None,
                })
                .collect()
        })
        .collect();

    let mut cache: Option<SoftwareCache<Kmer, Option<HitList>>> =
        (cfg.cache_entries > 0).then(|| SoftwareCache::new(cfg.cache_entries));

    // The seed index is immutable during alignment; the sequence-validated
    // read protocol (DESIGN.md §12) lets us assert that no writer raced
    // this read-only phase.
    #[cfg(debug_assertions)]
    let stamp_before = index.table.version_stamp();

    if cfg.lookup_batch > 1 {
        let mut lb: LookupBatch<'_, Kmer, HitList, (usize, usize)> =
            LookupBatch::with_batch(&index.table, cfg.lookup_batch);
        for slot in 0..resolved.len() {
            for s in 0..resolved[slot].len() {
                let canon = resolved[slot][s].canon;
                if let Some(c) = cache.as_mut() {
                    if let Some(list) = c.get(ctx, &canon) {
                        resolved[slot][s].list = list;
                        continue;
                    }
                }
                lb.push(ctx, canon, (slot, s), &mut |_: &mut RankCtx, tag, v| {
                    deliver_seed(&mut resolved, &mut cache, tag, v)
                });
            }
        }
        lb.finish(ctx, &mut |_: &mut RankCtx, tag, v| {
            deliver_seed(&mut resolved, &mut cache, tag, v)
        });
    } else {
        for slot in 0..resolved.len() {
            for s in 0..resolved[slot].len() {
                let canon = resolved[slot][s].canon;
                if let Some(c) = cache.as_mut() {
                    if let Some(list) = c.get(ctx, &canon) {
                        resolved[slot][s].list = list;
                        continue;
                    }
                }
                let v = index.table.get(ctx, &canon);
                deliver_seed(&mut resolved, &mut cache, (slot, s), v);
            }
        }
    }
    #[cfg(debug_assertions)]
    assert_eq!(
        index.table.version_stamp(),
        stamp_before,
        "seed index mutated during read-only seed resolution"
    );
    resolved
}

/// Stage 2: align one read against the contigs from its resolved seeds.
#[allow(clippy::too_many_arguments)]
fn align_one(
    ctx: &mut RankCtx,
    index: &SeedIndex,
    contigs: &ContigSet,
    read: &SeqRecord,
    read_idx: u32,
    cfg: &AlignConfig,
    seeds: &[ResolvedSeed],
    mut contig_cache: Option<&mut SoftwareCache<u32, ()>>,
) -> Vec<Alignment> {
    let codec = &index.codec;
    let mut candidates: HashMap<Candidate, u32> = HashMap::new();

    for seed in seeds {
        let Some(list) = &seed.list else {
            continue;
        };
        ctx.stats.compute(1);
        if index.is_repeat(list) {
            continue;
        }
        for hit in &list.hits {
            // Strand of the read relative to the contig: the seed is RC'd
            // in the contig (hit.rc) and/or in the read (read_rc).
            let rc = hit.rc != seed.read_rc;
            let diag = if rc {
                // On the reverse strand the read position counts from the
                // read's end.
                hit.pos as i64 + (seed.rpos + codec.k()) as i64
            } else {
                hit.pos as i64 - seed.rpos as i64
            };
            *candidates
                .entry(Candidate {
                    contig: hit.contig,
                    rc,
                    diag,
                })
                .or_insert(0) += 1;
        }
    }

    // Extend candidates, best-supported first.
    let mut ordered: Vec<(Candidate, u32)> = candidates.into_iter().collect();
    ordered.sort_by(|a, b| {
        b.1.cmp(&a.1).then_with(|| {
            let ka = (a.0.contig, a.0.rc as u8, a.0.diag);
            let kb = (b.0.contig, b.0.rc as u8, b.0.diag);
            ka.cmp(&kb)
        })
    });

    let mut out: Vec<Alignment> = Vec::new();
    for (cand, _support) in ordered.into_iter().take(2 * cfg.max_alignments_per_read) {
        let contig = &contigs.contigs[cand.contig as usize];
        let owner = cand.contig as usize % ctx.topo().ranks();
        match contig_cache.as_deref_mut() {
            // Replica-cached path: a miss fetches the whole contig once
            // (contig-length bytes, one message); every later candidate on
            // this contig is served from the local replica.
            Some(cache) => {
                if cache.get(ctx, &cand.contig).is_none() {
                    ctx.access(owner, contig.seq.len() as u64);
                    cache.insert(cand.contig, ());
                }
            }
            // Fine-grained path: fetch a read-length contig window per
            // candidate from the contig's owner (cyclic by id).
            None => ctx.access(owner, read.seq.len() as u64),
        }

        // Orient the read to the contig's forward strand.
        let oriented: std::borrow::Cow<[u8]> = if cand.rc {
            hipmer_dna::revcomp(&read.seq).into()
        } else {
            (&read.seq[..]).into()
        };
        // In forward-oriented coordinates the diagonal gives the read's
        // start position on the contig.
        let start = if cand.rc {
            cand.diag - oriented.len() as i64
        } else {
            cand.diag
        };
        // Clip to contig bounds.
        let r0 = (-start).max(0) as usize; // read offset where overlap begins
        let c0 = start.max(0) as usize;
        if c0 >= contig.seq.len() || r0 >= oriented.len() {
            continue;
        }
        let span = (oriented.len() - r0).min(contig.seq.len() - c0);
        if span < cfg.min_aligned {
            continue;
        }
        // Fast path: ungapped comparison (substitution-only reads).
        let (matches, aligned) =
            ungapped_matches(&oriented[r0..r0 + span], &contig.seq[c0..c0 + span]);
        ctx.stats.compute(aligned as u64);
        let identity = matches as f64 / aligned as f64;
        // Coordinates in the oriented read / contig, possibly refined by
        // the gapped path below.
        let (mut ro_start, mut ro_end) = (r0, r0 + aligned);
        let (mut co_start, mut co_end) = (c0, c0 + aligned);
        let mut matches = matches;
        if identity < cfg.min_identity {
            // Gapped fallback: a small indel breaks the diagonal; banded
            // Smith-Waterman recovers it (merAligner's extension kernel).
            // Widen the contig window by the band so shifted tails fit.
            let band = 8usize;
            let cw_start = c0.saturating_sub(band);
            let cw_end = (c0 + span + band).min(contig.seq.len());
            let sw = crate::sw::banded_sw(
                &oriented[r0..r0 + span],
                &contig.seq[cw_start..cw_end],
                &crate::sw::SwParams {
                    band,
                    ..crate::sw::SwParams::default()
                },
            );
            ctx.stats.compute((span * band) as u64);
            if sw.aligned < cfg.min_aligned
                || (sw.matches as f64) < cfg.min_identity * sw.aligned as f64
            {
                continue;
            }
            ro_start = r0 + sw.a_start;
            ro_end = r0 + sw.a_end;
            co_start = cw_start + sw.b_start;
            co_end = cw_start + sw.b_end;
            matches = sw.matches;
        } else if aligned < cfg.min_aligned {
            continue;
        }
        // Convert back to forward-read coordinates.
        let (read_start, read_end) = if cand.rc {
            (oriented.len() - ro_end, oriented.len() - ro_start)
        } else {
            (ro_start, ro_end)
        };
        out.push(Alignment {
            read: read_idx,
            contig: cand.contig,
            read_start: read_start as u32,
            read_end: read_end as u32,
            contig_start: co_start as u32,
            contig_end: co_end as u32,
            rc: cand.rc,
            matches: matches as u32,
            read_len: read.seq.len() as u32,
        });
        if out.len() >= cfg.max_alignments_per_read {
            break;
        }
    }
    // Drop alignments whose read interval is mostly contained in a better
    // alignment to the same contig/strand (secondary diagonals of one
    // gapped alignment).
    out.sort_by_key(|a| std::cmp::Reverse(a.matches));
    let mut kept: Vec<Alignment> = Vec::with_capacity(out.len());
    for a in out {
        let contained = kept.iter().any(|k| {
            k.contig == a.contig
                && k.rc == a.rc
                && a.read_start >= k.read_start.saturating_sub(5)
                && a.read_end <= k.read_end + 5
        });
        if !contained {
            kept.push(a);
        }
    }
    let mut out = kept;
    // Deterministic order, best first.
    out.sort_by(|a, b| {
        b.matches
            .cmp(&a.matches)
            .then_with(|| (a.contig, a.contig_start).cmp(&(b.contig, b.contig_start)))
    });
    out
}

/// Align all reads against the contigs. Returns alignments sorted by
/// (read, contig, position) plus the phase report (index build included).
pub fn align_reads(
    team: &Team,
    contigs: &ContigSet,
    reads: &[SeqRecord],
    cfg: &AlignConfig,
) -> (Vec<Alignment>, Vec<PhaseReport>) {
    let (index, index_report) = build_seed_index(
        team,
        contigs,
        cfg.seed_len,
        cfg.max_seed_hits,
        cfg.partition,
    );

    // Per-read cost proxy for the dynamic scheduler: seeding and extension
    // work both scale with read length. Under `Schedule::Static` the
    // weights are ignored (one contiguous block per rank, as before).
    let weights: Vec<u64> = reads.iter().map(|r| r.seq.len() as u64).collect();
    let (chunks, mut stats) = team.run_named("scaffold/meraligner-align", |ctx| {
        // The contig replica cache persists across claimed ranges — it is
        // result-transparent, so reuse only saves messages.
        let mut contig_cache: Option<SoftwareCache<u32, ()>> =
            (cfg.cache_entries > 0).then(|| SoftwareCache::new(cfg.cache_entries));
        let mut out = Vec::new();
        for range in cfg.schedule.ranges_weighted(ctx, &weights) {
            // Stage 1: every seed of every read in the range goes through
            // the seed cache and one streaming lookup batch.
            let resolved = resolve_seeds(ctx, &index, reads, range.clone(), cfg);
            // Stage 2: candidate clustering and extension on resolved
            // lists, with contig replicas cached per rank.
            for (slot, ri) in range.enumerate() {
                out.extend(align_one(
                    ctx,
                    &index,
                    contigs,
                    &reads[ri],
                    ri as u32,
                    cfg,
                    &resolved[slot],
                    contig_cache.as_mut(),
                ));
            }
        }
        out
    });
    index.table.drain_service_into(&mut stats);
    let mut alignments: Vec<Alignment> = chunks.into_iter().flatten().collect();
    // Sort on the full record so the order is independent of which rank
    // produced each alignment (dynamic scheduling permutes the chunks).
    alignments.sort_by_key(|a| {
        (
            a.read,
            a.contig,
            a.contig_start,
            a.contig_end,
            a.rc,
            a.read_start,
            a.read_end,
        )
    });
    // The align loop reads the same seed table the index build placed, so
    // both phases share one placement label in the report's split.
    let label = index_report.placement.clone().unwrap_or_default();
    (
        alignments,
        vec![
            index_report,
            PhaseReport::new("scaffold/meraligner-align", *team.topo(), stats)
                .with_placement(label),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_dna::{revcomp, KmerCodec};
    use hipmer_pgas::Topology;

    fn lcg(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    fn one_contig_set(seq: Vec<u8>) -> ContigSet {
        ContigSet::from_sequences(KmerCodec::new(21), vec![seq])
    }

    fn read(id: &str, seq: Vec<u8>) -> SeqRecord {
        SeqRecord::with_uniform_quality(id, seq, 35)
    }

    #[test]
    fn exact_read_aligns_full_length_at_right_position() {
        let genome = lcg(500, 3);
        let contigs = one_contig_set(genome.clone());
        let team = Team::new(Topology::new(2, 2));
        let r = read("r0", genome[100..200].to_vec());
        let (alns, _) = align_reads(&team, &contigs, &[r], &AlignConfig::new(15));
        assert_eq!(alns.len(), 1);
        let a = &alns[0];
        assert_eq!(a.contig_start, 100);
        assert_eq!(a.contig_end, 200);
        assert!(!a.rc);
        assert_eq!(a.matches, 100);
        assert!(a.is_full_length(0));
        assert!((a.identity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reverse_strand_read_is_found() {
        let genome = lcg(500, 5);
        let contigs = one_contig_set(genome.clone());
        let team = Team::new(Topology::new(2, 2));
        let r = read("r0", revcomp(&genome[250..350]));
        let (alns, _) = align_reads(&team, &contigs, &[r], &AlignConfig::new(15));
        assert_eq!(alns.len(), 1);
        let a = &alns[0];
        assert!(a.rc);
        assert_eq!(a.contig_start, 250);
        assert_eq!(a.contig_end, 350);
        assert_eq!(a.matches, 100);
    }

    #[test]
    fn read_with_errors_still_aligns() {
        let genome = lcg(400, 7);
        let contigs = one_contig_set(genome.clone());
        let team = Team::new(Topology::new(1, 1));
        let mut seq = genome[50..150].to_vec();
        seq[10] ^= 6; // mutate two bases (xor keeps it in ACGT alphabet? no)
        seq[10] = if seq[10] == b'A' { b'C' } else { b'A' };
        seq[70] = if seq[70] == b'G' { b'T' } else { b'G' };
        let (alns, _) = align_reads(&team, &contigs, &[read("r", seq)], &AlignConfig::new(15));
        assert_eq!(alns.len(), 1);
        assert!(alns[0].matches >= 98);
    }

    #[test]
    fn read_overhanging_contig_end_is_clipped() {
        let genome = lcg(300, 9);
        let contigs = one_contig_set(genome.clone());
        let team = Team::new(Topology::new(1, 1));
        // Read starts 40 bases before the contig end: 40 aligned, 60 hang.
        let mut seq = genome[260..300].to_vec();
        seq.extend(lcg(60, 77)); // random tail off the contig
        let (alns, _) = align_reads(&team, &contigs, &[read("r", seq)], &AlignConfig::new(15));
        assert_eq!(alns.len(), 1);
        let a = &alns[0];
        assert_eq!(a.read_start, 0);
        assert_eq!(a.read_end, 40);
        assert_eq!(a.contig_start, 260);
        assert_eq!(a.contig_end, 300);
        assert!(!a.is_full_length(5));
    }

    #[test]
    fn read_spanning_two_contigs_aligns_to_both() {
        // Two contigs that are adjacent in the genome; a read across the
        // junction must produce one clipped alignment per contig (the
        // splint signal of §4.5).
        let g1 = lcg(200, 11);
        let g2 = lcg(200, 13);
        let contigs = ContigSet::from_sequences(KmerCodec::new(21), vec![g1.clone(), g2.clone()]);
        let team = Team::new(Topology::new(2, 2));
        let mut junction = g1[150..].to_vec();
        junction.extend_from_slice(&g2[..50]);
        let (alns, _) = align_reads(
            &team,
            &contigs,
            &[read("r", junction)],
            &AlignConfig::new(15),
        );
        assert_eq!(alns.len(), 2, "got {alns:?}");
        let contigs_hit: Vec<u32> = alns.iter().map(|a| a.contig).collect();
        assert_eq!(contigs_hit.len(), 2);
        assert_ne!(contigs_hit[0], contigs_hit[1]);
        for a in &alns {
            assert_eq!(a.matches, 50);
        }
    }

    #[test]
    fn unrelated_read_does_not_align() {
        let contigs = one_contig_set(lcg(300, 15));
        let team = Team::new(Topology::new(1, 1));
        let (alns, _) = align_reads(
            &team,
            &contigs,
            &[read("r", lcg(100, 999))],
            &AlignConfig::new(15),
        );
        assert!(alns.is_empty(), "{alns:?}");
    }

    #[test]
    fn alignments_deterministic_across_rank_counts() {
        let genome = lcg(1000, 17);
        let contigs = one_contig_set(genome.clone());
        let reads: Vec<SeqRecord> = (0..20)
            .map(|i| read(&format!("r{i}"), genome[i * 40..i * 40 + 100].to_vec()))
            .collect();
        let run = |ranks: usize| {
            let team = Team::new(Topology::new(ranks, 4));
            align_reads(&team, &contigs, &reads, &AlignConfig::new(15)).0
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn minimizer_partition_gives_identical_alignments() {
        let genome = lcg(1500, 41);
        let contigs = one_contig_set(genome.clone());
        let reads: Vec<SeqRecord> = (0..25)
            .map(|i| read(&format!("r{i}"), genome[i * 50..i * 50 + 100].to_vec()))
            .collect();
        let run = |scheme: PartitionScheme, ranks: usize| {
            let team = Team::new(Topology::new(ranks, 4));
            let cfg = AlignConfig {
                partition: scheme,
                ..AlignConfig::new(15)
            };
            align_reads(&team, &contigs, &reads, &cfg).0
        };
        for ranks in [1, 8] {
            assert_eq!(
                run(PartitionScheme::Uniform, ranks),
                run(PartitionScheme::Minimizer, ranks)
            );
        }
    }

    #[test]
    fn batching_and_caching_are_result_transparent_and_save_messages() {
        let genome = lcg(1200, 31);
        let contigs = one_contig_set(genome.clone());
        // Overlapping reads so seeds repeat across reads (cache fodder).
        let reads: Vec<SeqRecord> = (0..30)
            .map(|i| read(&format!("r{i}"), genome[i * 20..i * 20 + 100].to_vec()))
            .collect();
        let run = |lookup_batch: usize, cache_entries: usize| {
            let team = Team::new(Topology::new(6, 3));
            let cfg = AlignConfig {
                lookup_batch,
                cache_entries,
                ..AlignConfig::new(15)
            };
            let (alns, reports) = align_reads(&team, &contigs, &reads, &cfg);
            let align_phase = reports
                .iter()
                .find(|r| r.name == "scaffold/meraligner-align")
                .unwrap();
            (alns, align_phase.totals())
        };
        let (base_alns, base) = run(1, 0); // fine-grained baseline
        let (batch_alns, batch) = run(64, 0); // batch only
        let (full_alns, full) = run(64, 4096); // batch + caches

        // Alignments are byte-identical under every configuration.
        assert_eq!(base_alns, batch_alns);
        assert_eq!(base_alns, full_alns);

        // Batching cuts messages without touching bytes or compute.
        assert!(batch.total_accesses() < base.total_accesses());
        assert!(batch.lookup_batches > 0);
        assert_eq!(base.compute_ops, batch.compute_ops);
        assert_eq!(
            base.onnode_bytes + base.offnode_bytes,
            batch.onnode_bytes + batch.offnode_bytes
        );

        // Caching cuts messages further and records its effectiveness.
        assert!(full.total_accesses() < batch.total_accesses());
        assert!(full.cache_hits > 0);
        assert!(full.cache_misses > 0);
        assert_eq!(base.cache_hits, 0);
        assert_eq!(batch.cache_hits, 0);
    }
}

#[cfg(test)]
mod gapped_tests {
    use super::*;
    use hipmer_contig::ContigSet;
    use hipmer_dna::KmerCodec;
    use hipmer_pgas::{Team, Topology};

    fn lcg(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(19);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn read_with_deletion_aligns_via_gapped_path() {
        let genome = lcg(500, 21);
        let contigs = ContigSet::from_sequences(KmerCodec::new(21), vec![genome.clone()]);
        let team = Team::new(Topology::new(1, 1));
        // Read = genome[100..201] with one base deleted in the middle.
        let mut seq = genome[100..201].to_vec();
        seq.remove(50);
        let r = hipmer_seqio::SeqRecord::with_uniform_quality("del", seq, 35);
        let (alns, _) = align_reads(&team, &contigs, &[r], &AlignConfig::new(15));
        assert_eq!(alns.len(), 1, "{alns:?}");
        let a = &alns[0];
        // 100 read bases aligned over 101 contig bases with 100 matches.
        assert!(a.matches >= 98, "matches {}", a.matches);
        assert!(a.contig_end - a.contig_start >= 99);
        assert!(a.identity() > 0.9);
    }

    #[test]
    fn read_with_insertion_aligns_via_gapped_path() {
        let genome = lcg(500, 23);
        let contigs = ContigSet::from_sequences(KmerCodec::new(21), vec![genome.clone()]);
        let team = Team::new(Topology::new(1, 1));
        let mut seq = genome[200..300].to_vec();
        seq.insert(40, b'A');
        seq.insert(41, b'C');
        let r = hipmer_seqio::SeqRecord::with_uniform_quality("ins", seq, 35);
        let (alns, _) = align_reads(&team, &contigs, &[r], &AlignConfig::new(15));
        assert_eq!(alns.len(), 1, "{alns:?}");
        assert!(alns[0].matches >= 95, "matches {}", alns[0].matches);
    }
}
