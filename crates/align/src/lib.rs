//! merAligner: parallel seed-and-extend read-to-contig alignment (§4.3,
//! and reference \[12\] in the paper).
//!
//! merAligner is the most expensive scaffolding module (Fig. 7 plots it
//! separately). It builds a **distributed seed index** over the contigs —
//! unlike the tools the paper compares against, which "mostly build their
//! lookup tables serially" — then, for every read, looks up seed k-mers in
//! the index (one one-sided lookup each), groups the hits by
//! (contig, strand, diagonal), and extends the best candidates with a
//! banded Smith–Waterman to produce full alignments.
//!
//! Alignments are the input to everything downstream: insert-size
//! estimation (§4.4), splint/span detection (§4.5), and gap closing
//! (§4.8).

pub mod aligner;
pub mod index;
pub mod sw;

pub use aligner::{align_reads, AlignConfig, Alignment};
pub use index::{build_seed_index, SeedHit, SeedIndex};
pub use sw::{
    banded_sw, banded_sw_reference, banded_sw_with, ungapped_matches, ungapped_matches_reference,
    SwParams, SwResult, SwWorkspace,
};
