//! Property tests for the alignment kernels.

use hipmer_align::{
    banded_sw, banded_sw_reference, ungapped_matches, ungapped_matches_reference, SwParams,
};
use hipmer_dna::BASES;
use proptest::prelude::*;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(&BASES[..]), len)
}

/// Mutate `a` into a related sequence: substitutions plus small indels,
/// the read-vs-contig shape the banded kernel is built for.
fn mutate(a: &[u8], edits: &[(usize, usize, u8)]) -> Vec<u8> {
    let mut b = a.to_vec();
    for &(pos, kind, alt) in edits {
        if b.is_empty() {
            break;
        }
        let pos = pos % b.len();
        match kind % 3 {
            0 => b[pos] = BASES[alt as usize % 4],
            1 => {
                b.insert(pos, BASES[alt as usize % 4]);
            }
            _ => {
                b.remove(pos);
            }
        }
    }
    b
}

proptest! {
    #[test]
    fn score_bounded_by_match_count(a in dna(1..120), b in dna(1..120)) {
        let p = SwParams::default();
        let r = banded_sw(&a, &b, &p);
        prop_assert!(r.score <= (a.len().min(b.len()) as i32) * p.mat);
        prop_assert!(r.score >= 0);
        prop_assert!(r.matches <= r.aligned);
        prop_assert!(r.a_end <= a.len());
        prop_assert!(r.b_end <= b.len());
    }

    #[test]
    fn self_alignment_is_perfect(a in dna(1..150)) {
        let p = SwParams::default();
        let r = banded_sw(&a, &a, &p);
        prop_assert_eq!(r.score, a.len() as i32 * p.mat);
        prop_assert_eq!(r.matches, a.len());
        prop_assert_eq!(r.aligned, a.len());
    }

    #[test]
    fn substitutions_only_score_is_symmetric(
        a in dna(10..100),
        positions in prop::collection::vec(0usize..100, 0..5),
    ) {
        let mut b = a.clone();
        for &p in &positions {
            if p < b.len() {
                b[p] = if b[p] == b'A' { b'C' } else { b'A' };
            }
        }
        let params = SwParams::default();
        let r1 = banded_sw(&a, &b, &params);
        let r2 = banded_sw(&b, &a, &params);
        prop_assert_eq!(r1.score, r2.score);
        prop_assert_eq!(r1.matches, r2.matches);
    }

    #[test]
    fn few_substitutions_alignment_found(a in dna(40..120), pos in 0usize..200, alt in 0usize..4) {
        let mut b = a.clone();
        if pos < b.len() {
            b[pos] = BASES[alt];
        }
        let mismatches = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        let r = banded_sw(&a, &b, &SwParams::default());
        // At most one substitution: alignment must recover all matches.
        prop_assert!(r.matches >= a.len() - mismatches - 2,
            "matches {} of {} (mismatches {})", r.matches, a.len(), mismatches);
    }

    #[test]
    fn optimized_sw_equals_reference_on_random_pairs(
        a in dna(0..140),
        b in dna(0..140),
        band in 0usize..12,
    ) {
        let p = SwParams { band, ..SwParams::default() };
        prop_assert_eq!(banded_sw(&a, &b, &p), banded_sw_reference(&a, &b, &p));
    }

    #[test]
    fn optimized_sw_equals_reference_on_related_pairs(
        a in dna(1..160),
        edits in prop::collection::vec((0usize..200, 0usize..3, 0u8..4), 0..6),
        mat in 1i32..4,
        mis in -4i32..1,
        gap in -5i32..0,
        band in 1usize..10,
    ) {
        let b = mutate(&a, &edits);
        let p = SwParams { mat, mis, gap, band };
        prop_assert_eq!(banded_sw(&a, &b, &p), banded_sw_reference(&a, &b, &p),
            "a={} b={} p={:?}",
            String::from_utf8_lossy(&a), String::from_utf8_lossy(&b), p);
    }

    #[test]
    fn optimized_ungapped_equals_reference(a in dna(0..130), b in dna(0..130)) {
        prop_assert_eq!(ungapped_matches(&a, &b), ungapped_matches_reference(&a, &b));
    }

    #[test]
    fn ungapped_matches_bounds(a in dna(0..100), b in dna(0..100)) {
        let (m, len) = ungapped_matches(&a, &b);
        prop_assert_eq!(len, a.len().min(b.len()));
        prop_assert!(m <= len);
        let (m2, _) = ungapped_matches(&b, &a);
        prop_assert_eq!(m, m2);
    }
}
