//! Paired-end shotgun read simulation.
//!
//! Reads come in FR-oriented pairs: the forward mate at the 5' end of a
//! fragment, the reverse-complemented mate at the 3' end, fragment length
//! drawn from a Gaussian around the library's insert size. This matches
//! what §4.4–4.5 of the paper consume (insert-size estimation, spans) and
//! what the gap closer walks across.

use crate::genome::Genome;
use hipmer_dna::revcomp;
use hipmer_seqio::SeqRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A read library specification (the paper's human data: one 101 bp,
/// 395 bp-insert library; wheat: five short + two long-insert libraries).
#[derive(Clone, Debug)]
pub struct Library {
    /// Library name (appears in read ids).
    pub name: String,
    /// Read length in bases.
    pub read_len: usize,
    /// Mean fragment (insert) size, outer distance between mate 5' ends.
    pub insert_mean: usize,
    /// Standard deviation of the fragment size.
    pub insert_sd: f64,
    /// Haploid coverage this library contributes.
    pub coverage: f64,
}

impl Library {
    /// A standard short-insert library.
    pub fn short_insert(coverage: f64) -> Self {
        Library {
            name: "short".into(),
            read_len: 101,
            insert_mean: 395,
            insert_sd: 30.0,
            coverage,
        }
    }

    /// A long-insert library for scaffolding (paper: 1 kbp / 4.2 kbp).
    pub fn long_insert(insert_mean: usize, coverage: f64) -> Self {
        Library {
            name: format!("long{insert_mean}"),
            read_len: 101,
            insert_mean,
            insert_sd: insert_mean as f64 * 0.08,
            coverage,
        }
    }
}

/// Sequencing error model: substitutions plus rare short indels
/// (Illumina-like), with a distinct quality for erroneous bases so
/// quality filtering has teeth.
#[derive(Clone, Copy, Debug)]
pub struct ErrorModel {
    /// Per-base substitution probability.
    pub sub_rate: f64,
    /// Per-base insertion probability (a random base inserted after).
    pub ins_rate: f64,
    /// Per-base deletion probability.
    pub del_rate: f64,
    /// Phred score of correct bases.
    pub qual_hi: u8,
    /// Phred score of erroneous bases.
    pub qual_lo: u8,
}

impl ErrorModel {
    /// Error-free reads (for exact-recovery tests).
    pub fn perfect() -> Self {
        ErrorModel {
            sub_rate: 0.0,
            ins_rate: 0.0,
            del_rate: 0.0,
            qual_hi: 40,
            qual_lo: 2,
        }
    }

    /// A typical Illumina-like 0.5% substitution rate, no indels.
    pub fn illumina() -> Self {
        ErrorModel {
            sub_rate: 0.005,
            ins_rate: 0.0,
            del_rate: 0.0,
            qual_hi: 38,
            qual_lo: 8,
        }
    }

    /// Substitutions plus rare short indels (exercises the gapped
    /// alignment path).
    pub fn illumina_with_indels() -> Self {
        ErrorModel {
            sub_rate: 0.004,
            ins_rate: 0.0005,
            del_rate: 0.0005,
            qual_hi: 38,
            qual_lo: 8,
        }
    }
}

/// Sequence `read_len` bases from `template` under the error model.
/// Returns the read and its quality string; erroneous bases (including
/// inserted ones) carry the low quality. The template must be a little
/// longer than `read_len` so deletions can still fill the read.
fn sequence_with_errors(
    template: &[u8],
    read_len: usize,
    err: &ErrorModel,
    rng: &mut StdRng,
) -> (Vec<u8>, Vec<u8>) {
    let mut read = Vec::with_capacity(read_len);
    let mut qual = Vec::with_capacity(read_len);
    let mut t = 0usize;
    while read.len() < read_len && t < template.len() {
        if err.del_rate > 0.0 && rng.gen_bool(err.del_rate) {
            t += 1; // skip a template base
            continue;
        }
        if err.ins_rate > 0.0 && rng.gen_bool(err.ins_rate) {
            read.push(hipmer_dna::BASES[rng.gen_range(0..4usize)]);
            qual.push(err.qual_lo + 33);
            continue; // template position unchanged
        }
        let mut b = template[t];
        let mut q = err.qual_hi + 33;
        if err.sub_rate > 0.0 && rng.gen_bool(err.sub_rate) {
            loop {
                let alt = hipmer_dna::BASES[rng.gen_range(0..4usize)];
                if alt != b {
                    b = alt;
                    break;
                }
            }
            q = err.qual_lo + 33;
        }
        read.push(b);
        qual.push(q);
        t += 1;
    }
    // Template exhausted before read_len (heavy deletions at a fragment
    // edge): pad by repeating the last base at low quality; vanishingly
    // rare at realistic rates.
    while read.len() < read_len {
        read.push(*read.last().unwrap_or(&b'A'));
        qual.push(err.qual_lo + 33);
    }
    (read, qual)
}

/// Simulate one library over a genome. Pairs are emitted consecutively
/// (`2i` forward mate, `2i+1` reverse mate), ids
/// `{genome}:{lib}:{pair}/1|2`. Fragments sample all haplotypes evenly and
/// both strands.
pub fn simulate_library(
    genome: &Genome,
    lib: &Library,
    err: &ErrorModel,
    seed: u64,
) -> Vec<SeqRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hap_len = genome.reference_len();
    let n_pairs = ((hap_len as f64 * lib.coverage) / (2.0 * lib.read_len as f64)).ceil() as usize;
    let mut out = Vec::with_capacity(2 * n_pairs);

    for pair in 0..n_pairs {
        let hap = &genome.haplotypes[pair % genome.haplotypes.len()];
        // Fragment length: Gaussian via Box-Muller, clamped to hold both
        // mates.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let frag = ((lib.insert_mean as f64 + z * lib.insert_sd) as usize)
            .max(2 * lib.read_len)
            .min(hap.len().saturating_sub(1).max(2 * lib.read_len));
        if hap.len() <= frag {
            continue;
        }
        let start = rng.gen_range(0..hap.len() - frag);
        let fragment = &hap[start..start + frag];

        // Random strand for the whole fragment.
        let fragment: Vec<u8> = if rng.gen_bool(0.5) {
            fragment.to_vec()
        } else {
            revcomp(fragment)
        };

        // Templates carry a little slack so deletions do not shorten reads.
        let slack = 8usize.min(frag - lib.read_len);
        let t1: Vec<u8> = fragment[..lib.read_len + slack].to_vec();
        let t2: Vec<u8> = revcomp(&fragment[frag - lib.read_len - slack..]);
        let (r1, q1) = sequence_with_errors(&t1, lib.read_len, err, &mut rng);
        let (r2, q2) = sequence_with_errors(&t2, lib.read_len, err, &mut rng);

        out.push(SeqRecord {
            id: format!("{}:{}:{}/1", genome.name, lib.name, pair),
            seq: r1,
            qual: Some(q1),
        });
        out.push(SeqRecord {
            id: format!("{}:{}:{}/2", genome.name, lib.name, pair),
            seq: r2,
            qual: Some(q2),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::human_like;

    fn test_genome() -> Genome {
        human_like(50_000, 11)
    }

    #[test]
    fn coverage_is_roughly_met() {
        let g = test_genome();
        let lib = Library::short_insert(10.0);
        let reads = simulate_library(&g, &lib, &ErrorModel::perfect(), 1);
        let bases: usize = reads.iter().map(|r| r.len()).sum();
        let cov = bases as f64 / g.reference_len() as f64;
        assert!((cov - 10.0).abs() < 0.5, "coverage {cov}");
    }

    #[test]
    fn reads_come_in_pairs() {
        let g = test_genome();
        let reads = simulate_library(&g, &Library::short_insert(1.0), &ErrorModel::perfect(), 2);
        assert_eq!(reads.len() % 2, 0);
        for i in (0..reads.len()).step_by(2) {
            assert!(reads[i].id.ends_with("/1"));
            assert!(reads[i + 1].id.ends_with("/2"));
            assert_eq!(
                reads[i].id.trim_end_matches("/1"),
                reads[i + 1].id.trim_end_matches("/2")
            );
        }
    }

    #[test]
    fn perfect_reads_are_substrings_of_a_haplotype() {
        let g = test_genome();
        let reads = simulate_library(&g, &Library::short_insert(0.5), &ErrorModel::perfect(), 3);
        let mut refs: Vec<Vec<u8>> = Vec::new();
        for h in &g.haplotypes {
            refs.push(h.clone());
            refs.push(revcomp(h));
        }
        let find = |needle: &[u8]| refs.iter().any(|r| windows_contains(r, needle));
        for r in reads.iter().take(50) {
            assert!(find(&r.seq), "read {} not found in genome", r.id);
        }
    }

    fn windows_contains(hay: &[u8], needle: &[u8]) -> bool {
        hay.windows(needle.len()).any(|w| w == needle)
    }

    #[test]
    fn error_model_marks_errors_with_low_quality() {
        let g = test_genome();
        let err = ErrorModel {
            sub_rate: 0.05,
            ins_rate: 0.0,
            del_rate: 0.0,
            qual_hi: 40,
            qual_lo: 5,
        };
        let reads = simulate_library(&g, &Library::short_insert(1.0), &err, 4);
        let mut lo = 0usize;
        let mut total = 0usize;
        for r in &reads {
            for i in 0..r.len() {
                total += 1;
                if r.phred(i).unwrap() == 5 {
                    lo += 1;
                }
            }
        }
        let rate = lo as f64 / total as f64;
        assert!((rate - 0.05).abs() < 0.01, "error rate {rate}");
    }

    #[test]
    fn insert_size_distribution_matches_library() {
        // Pair separation on the reference must center on insert_mean.
        let g = Genome::haploid(
            "ref",
            crate::genome::random_genome(100_000, 0.5, &mut rand::rngs::StdRng::seed_from_u64(7)),
        );
        let lib = Library {
            name: "t".into(),
            read_len: 80,
            insert_mean: 600,
            insert_sd: 20.0,
            coverage: 2.0,
        };
        let reads = simulate_library(&g, &lib, &ErrorModel::perfect(), 5);
        let reference = g.reference();
        // Locate each mate pair on the reference and measure outer distance.
        let mut seps = Vec::new();
        for pair in reads.chunks(2).take(100) {
            let (r1, r2) = (&pair[0], &pair[1]);
            let p1 =
                find_sub(reference, &r1.seq).or_else(|| find_sub(reference, &revcomp(&r1.seq)));
            let p2 =
                find_sub(reference, &r2.seq).or_else(|| find_sub(reference, &revcomp(&r2.seq)));
            if let (Some(a), Some(b)) = (p1, p2) {
                let lo = a.min(b);
                let hi = a.max(b) + lib.read_len;
                seps.push(hi - lo);
            }
        }
        assert!(seps.len() > 50, "most pairs must map uniquely");
        let mean: f64 = seps.iter().sum::<usize>() as f64 / seps.len() as f64;
        assert!((mean - 600.0).abs() < 30.0, "mean separation {mean}");
    }

    fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
        hay.windows(needle.len()).position(|w| w == needle)
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = test_genome();
        let a = simulate_library(&g, &Library::short_insert(1.0), &ErrorModel::illumina(), 9);
        let b = simulate_library(&g, &Library::short_insert(1.0), &ErrorModel::illumina(), 9);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod indel_tests {
    use super::*;
    use crate::genome::human_like;

    #[test]
    fn indel_model_changes_lengths_relative_to_template() {
        let g = human_like(30_000, 3);
        let err = ErrorModel {
            sub_rate: 0.0,
            ins_rate: 0.02,
            del_rate: 0.02,
            qual_hi: 40,
            qual_lo: 5,
        };
        let reads = simulate_library(&g, &Library::short_insert(2.0), &err, 77);
        // All reads are exactly read_len despite indels (template slack).
        assert!(reads.iter().all(|r| r.len() == 101));
        // Most reads are no longer exact substrings of the genome.
        let h = &g.haplotypes[0];
        let rc = revcomp(h);
        let exact = reads
            .iter()
            .take(60)
            .filter(|r| {
                h.windows(r.seq.len()).any(|w| w == &r.seq[..])
                    || rc.windows(r.seq.len()).any(|w| w == &r.seq[..])
            })
            .count();
        assert!(exact < 20, "indels must disrupt most reads, {exact} exact");
    }

    #[test]
    fn indel_reads_still_assemble_via_gapped_alignment() {
        // End-to-end sanity lives in the hipmer crate; here just confirm
        // determinism of the noisy model.
        let g = human_like(10_000, 5);
        let a = simulate_library(
            &g,
            &Library::short_insert(4.0),
            &ErrorModel::illumina_with_indels(),
            9,
        );
        let b = simulate_library(
            &g,
            &Library::short_insert(4.0),
            &ErrorModel::illumina_with_indels(),
            9,
        );
        assert_eq!(a, b);
    }
}
