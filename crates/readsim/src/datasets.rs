//! Canned datasets mirroring the paper's three evaluation workloads,
//! scaled to laptop size. The benchmark harnesses and integration tests
//! build these by name.

use crate::genome::{
    human_like, metagenome, metagenome_repeats, wheat_like, wheat_like_moderate, Genome,
};
use crate::reads::{simulate_library, ErrorModel, Library};
use hipmer_seqio::SeqRecord;

/// A ready-to-assemble dataset: genome(s), libraries, and simulated reads.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name ("human-like", "wheat-like", "metagenome").
    pub name: String,
    /// The source genomes (one for single organisms; many for communities).
    pub genomes: Vec<Genome>,
    /// The libraries that were sequenced.
    pub libraries: Vec<Library>,
    /// All reads, grouped per library in `libraries` order.
    pub reads_per_library: Vec<Vec<SeqRecord>>,
}

impl Dataset {
    /// All reads of all libraries, flattened (library order preserved).
    pub fn all_reads(&self) -> Vec<SeqRecord> {
        self.reads_per_library.iter().flatten().cloned().collect()
    }

    /// Total read bases.
    pub fn total_read_bases(&self) -> usize {
        self.reads_per_library
            .iter()
            .flatten()
            .map(|r| r.len())
            .sum()
    }

    /// Total reference bases.
    pub fn total_genome_bases(&self) -> usize {
        self.genomes.iter().map(|g| g.reference_len()).sum()
    }
}

/// Human-like dataset: diploid genome, one short-insert library at
/// moderate coverage plus one long-insert (1 kbp-like, scaled) scaffolding
/// library. `genome_len` controls scale; the paper's is 3.2 Gbp.
pub fn human_like_dataset(genome_len: usize, coverage: f64, errors: bool, seed: u64) -> Dataset {
    let g = human_like(genome_len, seed);
    let err = if errors {
        ErrorModel::illumina()
    } else {
        ErrorModel::perfect()
    };
    let libs = vec![
        Library::short_insert(coverage * 0.8),
        Library::long_insert(1000, coverage * 0.2),
    ];
    let reads = libs
        .iter()
        .enumerate()
        .map(|(i, lib)| simulate_library(&g, lib, &err, seed.wrapping_add(1000 + i as u64)))
        .collect();
    Dataset {
        name: "human-like".into(),
        genomes: vec![g],
        libraries: libs,
        reads_per_library: reads,
    }
}

/// Wheat-like dataset on the *extreme* generator (ultra-hot tandem
/// k-mers): the workload for the heavy-hitter experiments (§5.1), where
/// only k-mer analysis runs. For scaffolding-stage experiments use
/// [`wheat_scaffolding_dataset`].
pub fn wheat_like_dataset(genome_len: usize, coverage: f64, errors: bool, seed: u64) -> Dataset {
    let g = wheat_like(genome_len, seed);
    wheat_dataset_from(g, coverage, errors, seed)
}

/// Wheat-like dataset on the *moderate* generator: fragmented by repeats
/// but assembleable — the workload for the wheat scaffolding and
/// end-to-end experiments (Figs. 7–8), with multiple insert libraries
/// (the paper uses five paired-end plus 1 kbp and 4.2 kbp long-insert
/// libraries for the wheat scaffolding rounds).
pub fn wheat_scaffolding_dataset(
    genome_len: usize,
    coverage: f64,
    errors: bool,
    seed: u64,
) -> Dataset {
    let g = wheat_like_moderate(genome_len, seed);
    wheat_dataset_from(g, coverage, errors, seed)
}

fn wheat_dataset_from(g: Genome, coverage: f64, errors: bool, seed: u64) -> Dataset {
    let err = if errors {
        ErrorModel::illumina()
    } else {
        ErrorModel::perfect()
    };
    let libs = vec![
        Library {
            name: "pe240".into(),
            read_len: 150,
            // Paper's smallest wheat insert is 240 bp with 150-250 bp
            // reads (overlapping mates); we keep 310 so two 150 bp mates
            // fit without overlap, which our splint detector still covers
            // via contig-end alignments.
            insert_mean: 310,
            insert_sd: 25.0,
            coverage: coverage * 0.5,
        },
        Library {
            name: "pe740".into(),
            read_len: 150,
            insert_mean: 740,
            insert_sd: 55.0,
            coverage: coverage * 0.3,
        },
        Library::long_insert(1000, coverage * 0.1),
        Library::long_insert(4200, coverage * 0.1),
    ];
    let reads = libs
        .iter()
        .enumerate()
        .map(|(i, lib)| simulate_library(&g, lib, &err, seed.wrapping_add(2000 + i as u64)))
        .collect();
    Dataset {
        name: "wheat-like".into(),
        genomes: vec![g],
        libraries: libs,
        reads_per_library: reads,
    }
}

/// Metagenome dataset: a community of `species` genomes with lognormal
/// abundances; one short-insert library whose per-species coverage is
/// proportional to abundance — low-abundance organisms stay below the
/// count threshold, flattening the k-mer spectrum (§5.4).
pub fn metagenome_dataset(
    total_len: usize,
    species: usize,
    mean_coverage: f64,
    errors: bool,
    seed: u64,
) -> Dataset {
    let community = metagenome(total_len, species, seed);
    community_dataset("metagenome", community, mean_coverage, errors, seed)
}

/// Metagenome dataset over a repeat-bearing community
/// ([`metagenome_repeats`]): same abundance-proportional coverage model as
/// [`metagenome_dataset`], but every species genome carries an intra-genome
/// exact repeat of `repeat_len` bp between ~`unique_block` bp unique blocks,
/// so assemblies at k below `repeat_len` fragment and rounds at larger k
/// can rejoin them (the multi-k bench's community).
pub fn metagenome_repeats_dataset(
    total_len: usize,
    species: usize,
    repeat_len: usize,
    unique_block: usize,
    mean_coverage: f64,
    errors: bool,
    seed: u64,
) -> Dataset {
    let community = metagenome_repeats(total_len, species, repeat_len, unique_block, seed);
    community_dataset("metagenome-repeats", community, mean_coverage, errors, seed)
}

/// Shared read-sampling model for metagenome communities: one short-insert
/// library whose per-species coverage is proportional to abundance
/// (normalized so the community-wide average is `mean_coverage`); species
/// too scarce to yield even a couple of reads contribute none.
fn community_dataset(
    name: &str,
    community: Vec<(Genome, f64)>,
    mean_coverage: f64,
    errors: bool,
    seed: u64,
) -> Dataset {
    let species = community.len();
    let err = if errors {
        ErrorModel::illumina()
    } else {
        ErrorModel::perfect()
    };
    let lib = Library::short_insert(mean_coverage);
    let mut all = Vec::new();
    let mut genomes = Vec::new();
    for (i, (g, abundance)) in community.into_iter().enumerate() {
        // Coverage proportional to abundance, normalized so the *average*
        // across the community is mean_coverage.
        let cov = mean_coverage * abundance * species as f64;
        let species_lib = Library {
            coverage: cov,
            ..lib.clone()
        };
        if species_lib.coverage * g.reference_len() as f64 >= 2.0 * lib.read_len as f64 {
            all.extend(simulate_library(
                &g,
                &species_lib,
                &err,
                seed.wrapping_add(3000 + i as u64),
            ));
        }
        genomes.push(g);
    }
    Dataset {
        name: name.into(),
        genomes,
        libraries: vec![lib],
        reads_per_library: vec![all],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_dataset_shape() {
        let d = human_like_dataset(60_000, 10.0, false, 1);
        assert_eq!(d.genomes.len(), 1);
        assert_eq!(d.libraries.len(), 2);
        assert_eq!(d.reads_per_library.len(), 2);
        let cov = d.total_read_bases() as f64 / d.total_genome_bases() as f64;
        // Diploid: reads sample both haplotypes but coverage is quoted per
        // haploid genome; the dataset divides genome bases across both.
        assert!(cov > 2.0, "coverage {cov}");
    }

    #[test]
    fn wheat_dataset_has_long_insert_libs() {
        let d = wheat_like_dataset(80_000, 8.0, false, 2);
        assert_eq!(d.libraries.len(), 4);
        assert!(d.libraries.iter().any(|l| l.insert_mean >= 4000));
        assert!(d.reads_per_library.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn metagenome_repeats_dataset_shape() {
        let d = metagenome_repeats_dataset(120_000, 12, 30, 300, 10.0, false, 9);
        assert_eq!(d.name, "metagenome-repeats");
        assert_eq!(d.genomes.len(), 12);
        assert_eq!(d.libraries.len(), 1);
        assert!(!d.reads_per_library[0].is_empty());
    }

    #[test]
    fn metagenome_coverage_is_skewed() {
        let d = metagenome_dataset(300_000, 25, 10.0, false, 3);
        assert_eq!(d.genomes.len(), 25);
        assert!(!d.reads_per_library[0].is_empty());
        // Some species should be sampled deeply, others barely — check read
        // id diversity.
        let mut per_species = std::collections::HashMap::new();
        for r in &d.reads_per_library[0] {
            let sp = r.id.split(':').next().unwrap().to_string();
            *per_species.entry(sp).or_insert(0usize) += 1;
        }
        let max = per_species.values().max().unwrap();
        let min = per_species.values().min().unwrap();
        assert!(max > &(min * 4), "abundances must be skewed: {min}..{max}");
    }

    #[test]
    fn datasets_deterministic() {
        let a = human_like_dataset(20_000, 4.0, true, 7);
        let b = human_like_dataset(20_000, 4.0, true, 7);
        assert_eq!(a.reads_per_library, b.reads_per_library);
    }
}
