//! Deterministic synthetic genomes and shotgun reads.
//!
//! The paper evaluates on three datasets we cannot ship: human NA12878
//! (3.2 Gbp, diploid), the hexaploid bread wheat line 'Synthetic W7984'
//! (17 Gbp, extremely repetitive — ~2,000 k-mers occurring >500,000 times),
//! and the Twitchell Wetlands soil metagenome (1.25 Tbase, >10,000
//! species, flat k-mer spectrum). Each dataset is in the paper to exercise
//! one *regime* of the pipeline, and the generators here reproduce exactly
//! those regimes at configurable (megabase) scale:
//!
//! * [`genome::human_like`] — low repeat content plus a diploid second
//!   haplotype (SNP bubbles for §4.2's bubble finder);
//! * [`genome::wheat_like`] — a repeat-library genome with high-copy
//!   tandem arrays, producing the skewed k-mer frequencies that motivate
//!   the heavy-hitter optimization of §3.1;
//! * [`genome::metagenome`] — a lognormal-abundance community whose k-mer
//!   spectrum is flat (few singletons), weakening Bloom filters as in §5.4.
//!
//! Reads are sampled as paired-end libraries with configurable insert size,
//! length, coverage, and a substitution error model with quality scores
//! (errors get low Phred values, which is what makes Meraculous' quality
//! filtering meaningful). Everything is seeded and reproducible.

pub mod datasets;
pub mod genome;
pub mod reads;

pub use datasets::{
    human_like_dataset, metagenome_dataset, metagenome_repeats_dataset, wheat_like_dataset,
    wheat_scaffolding_dataset, Dataset,
};
pub use genome::{
    apply_snps, human_like, metagenome, metagenome_repeats, random_genome, repeat_fragmented,
    wheat_like, wheat_like_moderate, wheat_like_params, Genome,
};
pub use reads::{simulate_library, ErrorModel, Library};
