//! Synthetic genome generators.

use hipmer_dna::BASES;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A (possibly multi-haplotype) genome.
#[derive(Clone, Debug)]
pub struct Genome {
    /// Display name used in read ids and reports.
    pub name: String,
    /// One haplotype for haploid organisms; two for diploid. Reads are
    /// sampled from all haplotypes evenly.
    pub haplotypes: Vec<Vec<u8>>,
}

impl Genome {
    /// A single-haplotype genome.
    pub fn haploid(name: impl Into<String>, seq: Vec<u8>) -> Self {
        Genome {
            name: name.into(),
            haplotypes: vec![seq],
        }
    }

    /// Total bases across haplotypes.
    pub fn total_len(&self) -> usize {
        self.haplotypes.iter().map(Vec::len).sum()
    }

    /// Length of the reference (first) haplotype.
    pub fn reference_len(&self) -> usize {
        self.haplotypes[0].len()
    }

    /// The reference (first) haplotype.
    pub fn reference(&self) -> &[u8] {
        &self.haplotypes[0]
    }
}

/// A uniform random genome of `len` bases with the given GC fraction.
pub fn random_genome(len: usize, gc: f64, rng: &mut StdRng) -> Vec<u8> {
    (0..len)
        .map(|_| {
            if rng.gen_bool(gc) {
                if rng.gen_bool(0.5) {
                    b'G'
                } else {
                    b'C'
                }
            } else if rng.gen_bool(0.5) {
                b'A'
            } else {
                b'T'
            }
        })
        .collect()
}

/// Copy `variant` of a sequence with point mutations at `rate` per base.
/// Returns the mutated copy and the number of substitutions applied.
pub fn apply_snps(seq: &[u8], rate: f64, rng: &mut StdRng) -> (Vec<u8>, usize) {
    let mut out = seq.to_vec();
    let mut n = 0usize;
    for b in out.iter_mut() {
        if rng.gen_bool(rate) {
            let cur = *b;
            // Substitute with a different base.
            loop {
                let alt = BASES[rng.gen_range(0..4usize)];
                if alt != cur {
                    *b = alt;
                    break;
                }
            }
            n += 1;
        }
    }
    (out, n)
}

/// Human-like genome: mostly unique sequence with a few low-copy segmental
/// duplications, plus a diploid second haplotype differing by ~0.1% SNPs
/// (the paper: humans differ in 0.1–0.4% of base pairs; heterozygous sites
/// are what create bubbles).
pub fn human_like(len: usize, seed: u64) -> Genome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h1 = random_genome(len, 0.41, &mut rng);

    // A few segmental duplications: copy 0.5–2 kbp blocks to another locus
    // with 2% divergence. Keeps some forks in the graph without making the
    // genome wheat-hard.
    let n_dups = (len / 200_000).max(1);
    for _ in 0..n_dups {
        let dlen = rng.gen_range(500..2000usize).min(len / 10);
        if len <= 2 * dlen {
            break;
        }
        let src = rng.gen_range(0..len - dlen);
        let block: Vec<u8> = h1[src..src + dlen].to_vec();
        let (mutated, _) = apply_snps(&block, 0.02, &mut rng);
        let dst = rng.gen_range(0..len - dlen);
        h1[dst..dst + dlen].copy_from_slice(&mutated);
    }

    let (h2, _) = apply_snps(&h1, 0.001, &mut rng);
    Genome {
        name: "human-like".into(),
        haplotypes: vec![h1, h2],
    }
}

/// Wheat-like genome: a repeat library tiles most of the sequence, and a
/// high-copy tandem array produces k-mers occurring thousands of times —
/// the skewed frequency distribution of §3.1/§5.1.
///
/// Roughly 70% of the genome is near-identical repeat copies (1% diverged),
/// ~5% is an exact tandem array of a short unit, the rest unique.
pub fn wheat_like(len: usize, seed: u64) -> Genome {
    // Extreme parameters: tuned for the k-mer-analysis experiments (§5.1),
    // where the hot tandem k-mers must tower over the mean depth the way
    // the real wheat's >10M-count k-mers do.
    wheat_like_params(len, seed, 0.01, 8)
}

/// As [`wheat_like`] but with moderate repeat divergence — repetitive
/// enough to fragment the assembly and stress scaffolding (Figs. 7–8),
/// while still assembling at k≈31 the way the real wheat assembles at
/// k=51 (its repeats are diverged enough to be resolvable).
pub fn wheat_like_moderate(len: usize, seed: u64) -> Genome {
    // Real wheat transposon families are typically 10-25% diverged between
    // copies; at 10%, most 31-mers cross a divergent site and the copies
    // resolve, fragmenting the assembly without destroying it.
    wheat_like_params(len, seed, 0.10, 30)
}

/// Parameterized wheat-like generator. `repeat_divergence` is the SNP rate
/// between repeat copies (lower = harder); the tandem array gets
/// `len / tandem_denom` bases.
pub fn wheat_like_params(
    len: usize,
    seed: u64,
    repeat_divergence: f64,
    tandem_denom: usize,
) -> Genome {
    let mut rng = StdRng::seed_from_u64(seed);

    // Repeat library: transposon-like elements.
    let n_elements = 12;
    let elements: Vec<Vec<u8>> = (0..n_elements)
        .map(|_| random_genome(rng.gen_range(400..3000), 0.46, &mut rng))
        .collect();

    // Tandem unit: source of the extreme heavy hitters.
    let unit = random_genome(41, 0.5, &mut rng);

    let mut g: Vec<u8> = Vec::with_capacity(len + 4096);
    let tandem_budget = len / tandem_denom;
    let mut tandem_written = 0usize;
    while g.len() < len {
        let roll: f64 = rng.gen();
        if roll < 0.70 {
            // A repeat copy with the configured divergence.
            let e = &elements[rng.gen_range(0..elements.len())];
            let (copy, _) = apply_snps(e, repeat_divergence, &mut rng);
            g.extend_from_slice(&copy);
        } else if roll < 0.80 && tandem_written < tandem_budget {
            // A stretch of the exact tandem array.
            let reps = rng.gen_range(60..260);
            for _ in 0..reps {
                g.extend_from_slice(&unit);
            }
            tandem_written += reps * unit.len();
        } else {
            // Unique sequence.
            let ulen = rng.gen_range(300..1500);
            g.extend(random_genome(ulen, 0.46, &mut rng));
        }
    }
    g.truncate(len);
    Genome::haploid("wheat-like", g)
}

/// A metagenome community: `species` genomes with lognormal-ish abundances.
/// Returns each species' genome with its relative abundance (summing to 1).
///
/// Sizes vary ~10x across species; the long tail of low-abundance species
/// is what flattens the k-mer spectrum (§5.4: only 36% singleton k-mers vs
/// 95% for human — because real singletons from rare organisms mix with
/// errors).
pub fn metagenome(total_len: usize, species: usize, seed: u64) -> Vec<(Genome, f64)> {
    assert!(species >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Genome lengths: uniform in a 10x range, scaled to hit total_len.
    let raw_lens: Vec<f64> = (0..species).map(|_| rng.gen_range(1.0..10.0)).collect();
    let len_sum: f64 = raw_lens.iter().sum();

    // Abundances: exp(N(0,1.2)) — lognormal tail.
    let raw_abund: Vec<f64> = (0..species)
        .map(|_| {
            // Box-Muller from two uniforms (avoids a distributions dep).
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (1.2 * z).exp()
        })
        .collect();
    let ab_sum: f64 = raw_abund.iter().sum();

    (0..species)
        .map(|i| {
            let len = ((raw_lens[i] / len_sum) * total_len as f64).max(2000.0) as usize;
            let g = random_genome(len, rng.gen_range(0.3..0.6), &mut rng);
            (
                Genome::haploid(format!("species_{i}"), g),
                raw_abund[i] / ab_sum,
            )
        })
        .collect()
}

/// As [`metagenome`] but every species genome is built from unique blocks
/// (~`unique_block` bp) separated by copies of a private, species-specific
/// **exact** repeat element of `repeat_len` bp.
///
/// Pick `repeat_len` between two k values of a multi-k schedule and the
/// community becomes the MetaHipMer demonstration dataset: at k below
/// `repeat_len` the de Bruijn graph forks at every repeat copy and the
/// assembly shatters into ~block-sized contigs, while a later round at
/// k above `repeat_len` walks straight through each copy and rejoins the
/// blocks — provided the small-k content survives (via pseudo-reads) for
/// low-abundance species whose raw large-k k-mers fall below the count
/// threshold.
///
/// Lengths and abundances follow the same lognormal community model as
/// [`metagenome`]; abundances sum to 1.
pub fn metagenome_repeats(
    total_len: usize,
    species: usize,
    repeat_len: usize,
    unique_block: usize,
    seed: u64,
) -> Vec<(Genome, f64)> {
    assert!(species >= 1);
    assert!(repeat_len >= 2 && unique_block >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let raw_lens: Vec<f64> = (0..species).map(|_| rng.gen_range(1.0..10.0)).collect();
    let len_sum: f64 = raw_lens.iter().sum();
    let raw_abund: Vec<f64> = (0..species)
        .map(|_| {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (1.2 * z).exp()
        })
        .collect();
    let ab_sum: f64 = raw_abund.iter().sum();

    (0..species)
        .map(|i| {
            let len = ((raw_lens[i] / len_sum) * total_len as f64).max(2000.0) as usize;
            let gc = rng.gen_range(0.35..0.55);
            // Each species gets its own small library of exact repeat
            // elements (a transposon family, never shared across species),
            // sized so each element recurs ~5x. One genome-wide element
            // would do for forking at small k, but the copies' random
            // 3 bp flanks birthday-collide quadratically in copy number,
            // leaving large genomes unresolvable even above the repeat
            // length; ~5 copies per element keeps collisions rare.
            let n_copies = len / (unique_block + repeat_len);
            let n_elements = (n_copies / 5).max(2);
            let elements: Vec<Vec<u8>> = (0..n_elements)
                .map(|_| random_genome(repeat_len, gc, &mut rng))
                .collect();
            let mut g: Vec<u8> = Vec::with_capacity(len + unique_block + repeat_len);
            loop {
                let ulen = rng.gen_range(unique_block / 2..unique_block + unique_block / 2);
                g.extend(random_genome(ulen, gc, &mut rng));
                if g.len() >= len {
                    break;
                }
                let e = &elements[rng.gen_range(0..elements.len())];
                g.extend_from_slice(e);
            }
            g.truncate(len);
            (
                Genome::haploid(format!("species_{i}"), g),
                raw_abund[i] / ab_sum,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_dna::{Kmer, KmerCodec, KmerHashMap};

    fn kmer_counts(seq: &[u8], k: usize) -> KmerHashMap<Kmer, u32> {
        let c = KmerCodec::new(k);
        let mut m: KmerHashMap<Kmer, u32> = KmerHashMap::default();
        for (_, km) in c.kmers(seq) {
            *m.entry(c.canonical(km)).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn random_genome_has_requested_gc() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_genome(100_000, 0.41, &mut rng);
        let gc = hipmer_dna::gc_content(&g).unwrap();
        assert!((gc - 0.41).abs() < 0.02, "gc={gc}");
    }

    #[test]
    fn apply_snps_rate_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_genome(100_000, 0.5, &mut rng);
        let (v, n) = apply_snps(&g, 0.001, &mut rng);
        assert_eq!(hipmer_dna::hamming(&g, &v), n);
        assert!(n > 50 && n < 200, "n={n}");
    }

    #[test]
    fn human_like_is_diploid_and_mostly_unique() {
        let g = human_like(200_000, 3);
        assert_eq!(g.haplotypes.len(), 2);
        assert_eq!(g.haplotypes[0].len(), g.haplotypes[1].len());
        // Haplotypes are close (0.1% SNPs).
        let d = hipmer_dna::hamming(&g.haplotypes[0], &g.haplotypes[1]);
        assert!(d > 50 && d < 800, "hamming={d}");
        // K-mer spectrum dominated by unique k-mers.
        let counts = kmer_counts(g.reference(), 31);
        let unique = counts.values().filter(|&&c| c == 1).count();
        assert!(
            unique as f64 / counts.len() as f64 > 0.9,
            "human-like must be mostly unique"
        );
    }

    #[test]
    fn metagenome_repeats_forks_below_repeat_len_and_resolves_above() {
        let community = metagenome_repeats(40_000, 4, 30, 300, 77);
        assert_eq!(community.len(), 4);
        let ab: f64 = community.iter().map(|(_, a)| a).sum();
        assert!((ab - 1.0).abs() < 1e-9, "abundances must sum to 1: {ab}");
        for (g, _) in &community {
            // Below the repeat length the interior k-mers of the element
            // recur at every copy; above it every window reaches unique
            // flanking sequence and the genome is repeat-free.
            let c21 = kmer_counts(g.reference(), 21);
            let max21 = c21.values().copied().max().unwrap();
            assert!(
                max21 >= 3,
                "{}: expected repeated 21-mers, max {max21}",
                g.name
            );
            // 33-mers spanning a copy reach unique flanks, so almost all
            // resolve (a few flank triplets collide across copies by
            // chance — that's 4^-3 birthday noise, not structure). Compare
            // excess multiplicity mass, i.e. sum of (count - 1): the 10
            // interior 21-mers recur at every copy while collided 33-mers
            // recur once or twice.
            let excess = |m: &KmerHashMap<Kmer, u32>| -> u64 {
                m.values().map(|&c| (c as u64).saturating_sub(1)).sum()
            };
            let c33 = kmer_counts(g.reference(), 33);
            let (e21, e33) = (excess(&c21), excess(&c33));
            assert!(
                e21 > 5 * e33,
                "{}: repeat mass at k=21 ({e21}) must dwarf k=33 ({e33})",
                g.name
            );
        }
    }

    #[test]
    fn wheat_like_has_heavy_hitters() {
        let g = wheat_like(400_000, 4);
        assert_eq!(g.reference_len(), 400_000);
        let counts = kmer_counts(g.reference(), 31);
        let max = counts.values().copied().max().unwrap();
        // The tandem array must generate k-mers with hundreds of copies.
        assert!(max > 100, "max k-mer count {max} too small for wheat-like");
        // And substantial repeat content: distinct k-mers well below genome
        // size.
        let distinct = counts.len();
        assert!(
            (distinct as f64) < 0.6 * 400_000.0,
            "distinct={distinct} — not repetitive enough"
        );
    }

    #[test]
    fn metagenome_abundances_sum_to_one() {
        let community = metagenome(500_000, 40, 5);
        assert_eq!(community.len(), 40);
        let s: f64 = community.iter().map(|(_, a)| a).sum();
        assert!((s - 1.0).abs() < 1e-9);
        let total: usize = community.iter().map(|(g, _)| g.reference_len()).sum();
        assert!(total > 400_000 && total < 700_000, "total={total}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = human_like(50_000, 42);
        let b = human_like(50_000, 42);
        assert_eq!(a.haplotypes, b.haplotypes);
        let c = wheat_like(50_000, 42);
        let d = wheat_like(50_000, 42);
        assert_eq!(c.haplotypes, d.haplotypes);
    }

    #[test]
    fn different_seeds_differ() {
        let a = human_like(10_000, 1);
        let b = human_like(10_000, 2);
        assert_ne!(a.haplotypes[0], b.haplotypes[0]);
    }
}

/// A genome engineered to fragment into many contigs: short unique blocks
/// separated by copies of one exact repeat longer than any practical k.
/// De Bruijn assembly breaks at every repeat copy, yielding roughly
/// `len / (unique_block + 60)` contigs — the regime the oracle
/// partitioning experiments need (the paper's human assembly has millions
/// of contigs; a scaled-down genome must scale contig *length* down too
/// if contigs-per-rank is to stay realistic).
pub fn repeat_fragmented(len: usize, unique_block: usize, seed: u64) -> Genome {
    let mut rng = StdRng::seed_from_u64(seed);
    let repeat = random_genome(60, 0.5, &mut rng);
    let mut g = Vec::with_capacity(len + unique_block);
    while g.len() < len {
        let blen = rng.gen_range(unique_block / 2..unique_block * 3 / 2);
        g.extend(random_genome(blen, 0.45, &mut rng));
        g.extend_from_slice(&repeat);
    }
    g.truncate(len);
    Genome::haploid("repeat-fragmented", g)
}

#[cfg(test)]
mod fragmented_tests {
    use super::*;

    #[test]
    fn repeat_fragmented_has_many_repeat_copies() {
        let g = repeat_fragmented(100_000, 400, 9);
        assert_eq!(g.reference_len(), 100_000);
        // The repeat appears ~ len / (400+60) times; check k-mer counts.
        let c = hipmer_dna::KmerCodec::new(31);
        let mut counts: hipmer_dna::KmerHashMap<hipmer_dna::Kmer, u32> = Default::default();
        for (_, km) in c.kmers(g.reference()) {
            *counts.entry(c.canonical(km)).or_insert(0) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 100, "repeat k-mers must be high copy, got {max}");
    }
}
