//! The oracle partitioning vector of §3.2.
//!
//! The communication-avoiding traversal replaces the uniform
//! hash-to-owner mapping with an **oracle**: a compact vector, replicated on
//! every rank (or node), whose slot `uniform_hash(kmer) % m` stores the rank
//! that should own the k-mer — chosen so that all k-mers of one contig land
//! on one rank. Collisions (two contigs' k-mers hashing to the same slot)
//! send a k-mer to the wrong (remote) rank; a larger vector trades memory
//! for fewer collisions and less communication, exactly the knob the paper
//! turns between "oracle-1" (115 MB/thread) and "oracle-4" (4×).

use crate::dht::Placement;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Slot value meaning "no contig claimed this slot".
const EMPTY: u32 = u32::MAX;

/// The replicated oracle partitioning vector.
pub struct OracleVector {
    slots: Vec<u32>,
    ranks: usize,
    collisions: AtomicU64,
    assigned: AtomicU64,
    /// Owner mapping for *unclaimed* slots. Defaults to cyclic
    /// (`hash % ranks`); callers running the table family under a
    /// non-uniform [`crate::Partitioner`] must install that partitioner's
    /// mapping here, or unclaimed k-mers would silently disagree with
    /// [`crate::DistHashMap::owner`] for every other table in the family.
    fallback: Arc<dyn Fn(u64) -> usize + Send + Sync>,
}

impl OracleVector {
    /// An empty oracle with `slots` entries targeting `ranks` owners.
    ///
    /// # Panics
    /// Panics if `slots == 0`, `ranks == 0`, or `ranks >= u32::MAX`.
    pub fn new(slots: usize, ranks: usize) -> Self {
        assert!(slots > 0 && ranks > 0);
        assert!((ranks as u64) < EMPTY as u64);
        OracleVector {
            slots: vec![EMPTY; slots],
            ranks,
            collisions: AtomicU64::new(0),
            assigned: AtomicU64::new(0),
            fallback: Arc::new(move |h| (h % ranks as u64) as usize),
        }
    }

    /// Replace the unclaimed-slot fallback (default: cyclic). The closure
    /// must return an owner `< ranks` — it is validated on every lookup by
    /// the same release-mode owner-range check [`crate::DistHashMap`]
    /// applies to custom placements. Use this to route novel k-mers through
    /// the same partitioner that owns the rest of the table family instead
    /// of a hard-coded `hash % ranks` that only agrees with uniform
    /// placement.
    pub fn with_fallback(mut self, f: Arc<dyn Fn(u64) -> usize + Send + Sync>) -> Self {
        self.fallback = f;
        self
    }

    /// Number of slots (the memory knob).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the vector has zero slots (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Approximate replicated memory per rank, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
    }

    /// Offline assignment (step 2 of the oracle construction): claim the
    /// slot for `hash` on behalf of `rank`. First writer wins; a later
    /// claim by a *different* rank is a collision and is dropped (the
    /// k-mer will live on the first writer's rank — remote for its contig).
    ///
    /// Returns `true` if the slot now maps to `rank`.
    pub fn assign(&mut self, hash: u64, rank: usize) -> bool {
        debug_assert!(rank < self.ranks);
        let idx = (hash % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if *slot == EMPTY {
            *slot = rank as u32;
            self.assigned.fetch_add(1, Ordering::Relaxed);
            true
        } else if *slot == rank as u32 {
            true
        } else {
            self.collisions.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Lookup: the owner for `hash`, falling back to the configured
    /// fallback placement (default cyclic; see
    /// [`with_fallback`](Self::with_fallback)) for unclaimed slots (k-mers
    /// not seen when the oracle was built — e.g. novel k-mers of a
    /// different individual or a different k).
    #[inline]
    pub fn owner(&self, hash: u64) -> usize {
        let idx = (hash % self.slots.len() as u64) as usize;
        let slot = self.slots[idx];
        if slot == EMPTY {
            (self.fallback)(hash)
        } else {
            slot as usize
        }
    }

    /// Collisions observed while building (≈ communication events the
    /// traversal will incur, per the paper).
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }

    /// Slots successfully assigned.
    pub fn assigned(&self) -> u64 {
        self.assigned.load(Ordering::Relaxed)
    }

    /// Coarsen rank-level ownership to node-level ownership (§3.2's SMP
    /// refinement): every slot's rank is replaced by the first rank of its
    /// node, so traversal lookups stay *on node* even when they miss the
    /// exact rank.
    pub fn coarsen_to_nodes(&mut self, topo: &crate::Topology) {
        for slot in &mut self.slots {
            if *slot != EMPTY {
                let node = topo.node_of(*slot as usize);
                *slot = (node * topo.ranks_per_node()) as u32;
            }
        }
    }

    /// Wrap into a [`Placement`] for [`crate::DistHashMap`].
    pub fn placement(self: Arc<Self>) -> Placement {
        Placement::Custom(Arc::new(move |h| self.owner(h)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn assign_then_lookup() {
        let mut o = OracleVector::new(64, 4);
        assert!(o.assign(10, 2));
        assert_eq!(o.owner(10), 2);
        // Same slot, same rank: fine.
        assert!(o.assign(10, 2));
        assert_eq!(o.collisions(), 0);
    }

    #[test]
    fn collision_keeps_first_writer() {
        let mut o = OracleVector::new(1, 4);
        assert!(o.assign(0, 1));
        assert!(!o.assign(5, 3)); // same slot, different rank
        assert_eq!(o.owner(5), 1);
        assert_eq!(o.collisions(), 1);
    }

    #[test]
    fn unclaimed_slots_fall_back_to_cyclic() {
        let o = OracleVector::new(16, 4);
        for h in 0..100u64 {
            assert_eq!(o.owner(h), (h % 4) as usize);
        }
    }

    #[test]
    fn fallback_hook_overrides_cyclic_for_unclaimed_slots_only() {
        let mut o = OracleVector::new(16, 4);
        o.assign(3, 2);
        o = o.with_fallback(Arc::new(|h| ((h / 7) % 4) as usize));
        // Claimed slot still wins...
        assert_eq!(o.owner(3), 2);
        // ...but every unclaimed hash routes through the hook, not % ranks.
        for h in 0..100u64 {
            if h % 16 != 3 {
                assert_eq!(o.owner(h), ((h / 7) % 4) as usize);
            }
        }
    }

    #[test]
    fn bigger_vector_fewer_collisions() {
        let n_keys = 10_000u64;
        let count_collisions = |slots: usize| {
            let mut o = OracleVector::new(slots, 8);
            for h in 0..n_keys {
                // Spread hashes; alternate ranks so same-slot hits collide.
                o.assign(hipmer_dna::mix64(h), (h % 8) as usize);
            }
            o.collisions()
        };
        let small = count_collisions(8_192);
        let large = count_collisions(8_192 * 4);
        assert!(
            large * 2 < small,
            "4x slots must cut collisions well below half: {large} vs {small}"
        );
    }

    #[test]
    fn node_coarsening_maps_to_node_leaders() {
        let topo = Topology::new(48, 24);
        let mut o = OracleVector::new(8, 48);
        o.assign(0, 5); // node 0
        o.assign(1, 30); // node 1
        o.coarsen_to_nodes(&topo);
        assert_eq!(o.owner(0), 0);
        assert_eq!(o.owner(1), 24);
    }

    #[test]
    fn placement_wrapper_works() {
        let mut o = OracleVector::new(32, 4);
        o.assign(7, 3);
        let p = Arc::new(o).placement();
        match p {
            Placement::Custom(f) => assert_eq!(f(7), 3),
            _ => panic!("expected custom placement"),
        }
    }
}
