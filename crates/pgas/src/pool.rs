//! Shared rank pool: leasing [`Team`] allocations to concurrent jobs.
//!
//! A long-lived service (the `hipmer serve` daemon) runs many assemblies
//! at once on one host. Letting every job build a full-sized [`Team`]
//! would oversubscribe both the virtual-rank budget the operator sized
//! the machine for and the OS threads the teams multiplex onto. A
//! [`TeamPool`] owns that budget: jobs **lease** a rank allocation
//! ([`TeamLease`]), build a `Team` from it, and return the ranks
//! automatically when the lease drops — including on panic, so an
//! aborted job can never leak its allocation.
//!
//! The pool is deliberately policy-free: it answers "are `n` ranks
//! free?" and blocks or fails fast, while *which* job gets the next
//! lease (fair share, priorities, anti-starvation) is the scheduler's
//! decision in the serving layer. OS threads are divided proportionally:
//! a lease for half the pool's ranks runs its team on half the pool's
//! worker threads (always at least one), so concurrent teams don't
//! oversubscribe the host.
//!
//! Metrics (when [`crate::metrics`] is enabled): the gauge
//! `pgas/pool/leased_ranks` tracks the live allocation, and the counters
//! `pgas/pool/leases` / `pgas/pool/lease_waits` count grants and
//! blocking waits.

use crate::metrics;
use crate::team::Team;
use crate::topology::Topology;
use std::sync::{Arc, Condvar, Mutex};

/// Mutable pool state guarded by the mutex: ranks currently leased out.
#[derive(Debug)]
struct PoolState {
    leased: usize,
}

/// A shared budget of virtual ranks (and the OS threads they multiplex
/// onto) that concurrent jobs lease [`Team`] allocations from. See the
/// [module docs](self).
#[derive(Debug)]
pub struct TeamPool {
    total_ranks: usize,
    ranks_per_node: usize,
    os_threads: usize,
    state: Mutex<PoolState>,
    freed: Condvar,
}

impl TeamPool {
    /// A pool of `total_ranks` virtual ranks grouped `ranks_per_node` to
    /// a node, multiplexed over the host's available parallelism.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(total_ranks: usize, ranks_per_node: usize) -> Self {
        // Validate eagerly with the same contract as `Topology::new`.
        let _ = Topology::new(total_ranks, ranks_per_node);
        let os_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        TeamPool {
            total_ranks,
            ranks_per_node,
            os_threads,
            state: Mutex::new(PoolState { leased: 0 }),
            freed: Condvar::new(),
        }
    }

    /// Override the pool's OS-thread budget (`0` clamps to 1).
    pub fn with_os_threads(mut self, n: usize) -> Self {
        self.os_threads = n.max(1);
        self
    }

    /// Total virtual ranks the pool owns.
    pub fn total_ranks(&self) -> usize {
        self.total_ranks
    }

    /// The pool's default ranks-per-node grouping.
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// The pool's OS-thread budget, divided proportionally among leases.
    pub fn os_threads(&self) -> usize {
        self.os_threads
    }

    /// Ranks currently free (not leased).
    pub fn available_ranks(&self) -> usize {
        let state = self.state.lock().expect("pool lock poisoned");
        self.total_ranks - state.leased
    }

    /// Ranks currently leased out.
    pub fn leased_ranks(&self) -> usize {
        let state = self.state.lock().expect("pool lock poisoned");
        state.leased
    }

    /// Clamp a requested allocation to something the pool can ever grant
    /// (at least 1 rank, at most the whole pool).
    pub fn clamp_request(&self, ranks: usize) -> usize {
        ranks.clamp(1, self.total_ranks)
    }

    /// The OS-thread share of an `n`-rank lease (proportional, ≥ 1).
    fn thread_share(&self, ranks: usize) -> usize {
        (self.os_threads * ranks / self.total_ranks).max(1)
    }

    /// Lease `ranks` ranks if they are free right now; `None` otherwise.
    /// Requests are clamped with [`TeamPool::clamp_request`].
    pub fn try_lease(self: &Arc<Self>, ranks: usize) -> Option<TeamLease> {
        let ranks = self.clamp_request(ranks);
        let mut state = self.state.lock().expect("pool lock poisoned");
        if state.leased + ranks > self.total_ranks {
            return None;
        }
        state.leased += ranks;
        metrics::gauge_set("pgas/pool/leased_ranks", state.leased as f64);
        metrics::counter_add("pgas/pool/leases", 1);
        drop(state);
        Some(TeamLease {
            pool: Arc::clone(self),
            ranks,
            os_threads: self.thread_share(ranks),
        })
    }

    /// Lease `ranks` ranks, blocking until the allocation is free.
    /// Requests are clamped with [`TeamPool::clamp_request`].
    pub fn lease(self: &Arc<Self>, ranks: usize) -> TeamLease {
        let ranks = self.clamp_request(ranks);
        let mut state = self.state.lock().expect("pool lock poisoned");
        if state.leased + ranks > self.total_ranks {
            metrics::counter_add("pgas/pool/lease_waits", 1);
            while state.leased + ranks > self.total_ranks {
                state = self.freed.wait(state).expect("pool lock poisoned");
            }
        }
        state.leased += ranks;
        metrics::gauge_set("pgas/pool/leased_ranks", state.leased as f64);
        metrics::counter_add("pgas/pool/leases", 1);
        drop(state);
        TeamLease {
            pool: Arc::clone(self),
            ranks,
            os_threads: self.thread_share(ranks),
        }
    }

    /// Return `ranks` ranks to the pool (the lease's `Drop` path).
    fn release(&self, ranks: usize) {
        let mut state = self.state.lock().expect("pool lock poisoned");
        debug_assert!(state.leased >= ranks, "double release");
        state.leased = state.leased.saturating_sub(ranks);
        metrics::gauge_set("pgas/pool/leased_ranks", state.leased as f64);
        drop(state);
        self.freed.notify_all();
    }
}

/// An exclusive allocation of ranks (and a proportional OS-thread share)
/// out of a [`TeamPool`]. Returned to the pool on drop.
#[derive(Debug)]
pub struct TeamLease {
    pool: Arc<TeamPool>,
    ranks: usize,
    os_threads: usize,
}

impl TeamLease {
    /// Ranks granted to this lease.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// OS worker threads this lease's team should multiplex onto.
    pub fn os_threads(&self) -> usize {
        self.os_threads
    }

    /// Build a [`Team`] over this allocation with the pool's default
    /// ranks-per-node grouping.
    pub fn team(&self) -> Team {
        self.team_with_rpn(self.pool.ranks_per_node)
    }

    /// Build a [`Team`] over this allocation with an explicit
    /// ranks-per-node grouping (clamped to the lease size).
    pub fn team_with_rpn(&self, ranks_per_node: usize) -> Team {
        let rpn = ranks_per_node.clamp(1, self.ranks);
        Team::new(Topology::new(self.ranks, rpn)).with_os_threads(self.os_threads)
    }
}

impl Drop for TeamLease {
    fn drop(&mut self) {
        self.pool.release(self.ranks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(ranks: usize) -> Arc<TeamPool> {
        Arc::new(TeamPool::new(ranks, 4).with_os_threads(4))
    }

    #[test]
    fn leases_grant_and_return_ranks() {
        let p = pool(16);
        assert_eq!(p.available_ranks(), 16);
        let a = p.try_lease(10).expect("10 of 16 free");
        assert_eq!(a.ranks(), 10);
        assert_eq!(p.available_ranks(), 6);
        assert!(p.try_lease(8).is_none(), "only 6 left");
        let b = p.try_lease(6).expect("exactly 6 left");
        assert_eq!(p.available_ranks(), 0);
        drop(a);
        assert_eq!(p.available_ranks(), 10);
        drop(b);
        assert_eq!(p.available_ranks(), 16);
    }

    #[test]
    fn requests_are_clamped_to_the_pool() {
        let p = pool(8);
        let lease = p.try_lease(1000).expect("clamped to whole pool");
        assert_eq!(lease.ranks(), 8);
        assert!(p.try_lease(0).is_none(), "clamps to 1, pool exhausted");
        drop(lease);
        assert_eq!(p.try_lease(0).expect("1 rank minimum").ranks(), 1);
    }

    #[test]
    fn thread_share_is_proportional_and_at_least_one() {
        let p = Arc::new(TeamPool::new(16, 4).with_os_threads(8));
        let half = p.try_lease(8).unwrap();
        assert_eq!(half.os_threads(), 4);
        let sliver = p.try_lease(1).unwrap();
        assert_eq!(sliver.os_threads(), 1, "never zero threads");
        drop((half, sliver));
    }

    #[test]
    fn leased_team_runs_every_rank() {
        let p = pool(12);
        let lease = p.lease(5);
        let team = lease.team();
        assert_eq!(team.ranks(), 5);
        let (ranks_seen, _) = team.run(|ctx| ctx.rank);
        assert_eq!(ranks_seen, (0..5).collect::<Vec<_>>());
        // An explicit rpn wider than the lease clamps cleanly.
        assert_eq!(lease.team_with_rpn(64).topo().ranks_per_node(), 5);
    }

    #[test]
    fn blocking_lease_waits_for_a_release() {
        let p = pool(4);
        let held = p.lease(4);
        let got = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let p = Arc::clone(&p);
            let got = Arc::clone(&got);
            std::thread::spawn(move || {
                let lease = p.lease(2); // blocks until `held` drops
                got.store(lease.ranks(), Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(got.load(Ordering::SeqCst), 0, "still blocked");
        drop(held);
        waiter.join().unwrap();
        assert_eq!(got.load(Ordering::SeqCst), 2);
        assert_eq!(p.available_ranks(), 4, "waiter's lease dropped on join");
    }

    #[test]
    fn lease_is_returned_even_when_the_job_panics() {
        let p = pool(8);
        let res = std::panic::catch_unwind({
            let p = Arc::clone(&p);
            move || {
                let _lease = p.lease(8);
                panic!("job died");
            }
        });
        assert!(res.is_err());
        assert_eq!(p.available_ranks(), 8, "drop ran during unwind");
    }
}
