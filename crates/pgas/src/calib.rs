//! Cost-model calibration: fit [`CostModel`] constants to measured rank
//! execution times (ROADMAP item 4).
//!
//! Every phase stamps each rank's real execution time into
//! [`CommStats::exec_nanos`], and the same `CommStats` carries the op
//! counts the [`CostModel`] prices. That makes each `(phase, rank)` pair
//! one observation of a linear model
//!
//! ```text
//! exec_seconds ≈ β₀·compute_ops + β₁·table_ops + β₂·cache_probes
//!              + β₃·bytes + β₄·steal_ops + β₅·backoff_units
//! ```
//!
//! which [`fit`] solves by least squares (column-scaled ridge-regularized
//! normal equations, with negative coefficients clamped to zero and
//! refitted — a small non-negative-least-squares loop). The fitted slopes
//! map back onto `CostModel` constants:
//!
//! * `β₀ → t_compute`;
//! * `β₁ → t_local = t_service = t_onnode = t_offnode`. The simulator runs
//!   every "remote" access as a host hash-table operation, so measured
//!   time cannot distinguish locality classes — they genuinely cost the
//!   same here. The fitted model is a model *of the simulator host*, not
//!   of Edison; its value is making `modeled ≈ measured` so regressions in
//!   the modeled report are trustworthy;
//! * `β₂ → t_cache`;
//! * `β₃ → 1/bw_onnode = 1/bw_offnode` (inverse bandwidth);
//! * `β₄ → t_steal`, `β₅ → t_backoff`.
//!
//! **Held out** (kept from the base model, never fit): `t_barrier_base`
//! (barrier cost is priced per phase, not per rank, so it is invisible to
//! per-rank observations) and the three `io_*` constants (synthetic I/O
//! phases carry no execution stamps). A feature that never occurs in the
//! data (an all-zero column) also keeps its base constant — zero
//! observations carry zero information.

use crate::cost::CostModel;
use crate::report::{PhaseModelError, PipelineReport};
use crate::stats::CommStats;

/// Number of fitted features (see module docs).
const K: usize = 6;

/// The per-observation feature vector, in β order.
fn features(s: &CommStats) -> [f64; K] {
    [
        s.compute_ops as f64,
        (s.local_ops + s.service_ops + s.onnode_msgs + s.offnode_msgs) as f64,
        (s.cache_hits + s.cache_misses) as f64,
        (s.onnode_bytes + s.offnode_bytes) as f64,
        s.steal_ops as f64,
        s.backoff_units as f64,
    ]
}

/// The result of [`fit`]: calibrated constants plus goodness-of-fit.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// The fitted cost model (base model with fitted constants replacing
    /// the six fit targets; held-out constants untouched).
    pub model: CostModel,
    /// Number of `(phase, rank)` observations used.
    pub observations: usize,
    /// Root-mean-square of the per-observation relative residual
    /// `(predicted - measured) / measured`.
    pub rms_rel_residual: f64,
    /// Per-phase measured-vs-modeled comparison under the **fitted**
    /// model (see [`PipelineReport::model_errors`]).
    pub phase_errors: Vec<PhaseModelError>,
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` when the system is singular to working precision.
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let (upper, lower) = a.split_at_mut(col + 1);
        let pivot_row = &upper[col];
        for (i, row) in lower.iter_mut().enumerate() {
            let f = row[col] / pivot_row[col];
            for (rc, pc) in row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *rc -= f * pc;
            }
            b[col + 1 + i] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col][c] * x[c];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// Least-squares slopes for `y ≈ X β` restricted to `active` columns,
/// with unit column scaling and a tiny ridge term for conditioning.
/// Returns the full-width β with inactive columns at 0.
fn least_squares(rows: &[[f64; K]], y: &[f64], active: &[usize]) -> Option<[f64; K]> {
    let m = active.len();
    // Column scales: solve in units where each active column has max 1.
    let scale: Vec<f64> = active
        .iter()
        .map(|&j| rows.iter().map(|r| r[j].abs()).fold(0.0, f64::max))
        .collect();
    let mut a = vec![vec![0.0; m]; m];
    let mut b = vec![0.0; m];
    for (row, &yi) in rows.iter().zip(y) {
        for (p, &jp) in active.iter().enumerate() {
            let xp = row[jp] / scale[p];
            b[p] += xp * yi;
            for (q, &jq) in active.iter().enumerate() {
                a[p][q] += xp * row[jq] / scale[q];
            }
        }
    }
    let ridge = 1e-9 * (0..m).map(|i| a[i][i]).sum::<f64>() / m as f64;
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += ridge.max(1e-300);
    }
    let solved = solve_linear(a, b)?;
    let mut beta = [0.0; K];
    for ((&j, s), v) in active.iter().zip(&scale).zip(&solved) {
        beta[j] = v / s;
    }
    Some(beta)
}

/// Fit cost-model constants to the report's measured execution stamps.
///
/// `base` supplies the held-out constants (`t_barrier_base`, `io_*`) and
/// the fallback value for any constant whose feature never occurs in the
/// data. Fails when the report contains no stamped observations at all.
pub fn fit(report: &PipelineReport, base: &CostModel) -> Result<Calibration, String> {
    let mut rows: Vec<[f64; K]> = Vec::new();
    let mut y: Vec<f64> = Vec::new();
    for phase in &report.phases {
        for s in &phase.stats {
            if s.exec_nanos == 0 {
                continue;
            }
            rows.push(features(s));
            y.push(s.exec_nanos as f64 / 1e9);
        }
    }
    if rows.is_empty() {
        return Err(
            "calibration needs measured execution stamps; run a real pipeline first".to_string(),
        );
    }

    // Columns with any signal participate; all-zero columns keep base.
    let mut active: Vec<usize> = (0..K)
        .filter(|&j| rows.iter().any(|r| r[j] != 0.0))
        .collect();
    if active.is_empty() {
        return Err("calibration observations carry no priced op counts".to_string());
    }

    // NNLS-lite: negative slopes are unphysical (a cost cannot be
    // negative); drop the most negative column and refit until clean.
    let mut beta = [0.0; K];
    while !active.is_empty() {
        beta = least_squares(&rows, &y, &active)
            .ok_or_else(|| "calibration system is singular".to_string())?;
        let worst = active
            .iter()
            .copied()
            .filter(|&j| beta[j] < 0.0)
            .min_by(|&i, &j| beta[i].total_cmp(&beta[j]));
        match worst {
            Some(j) => {
                active.retain(|&c| c != j);
                beta[j] = 0.0;
            }
            None => break,
        }
    }

    let mut model = *base;
    let had_signal = |j: usize| rows.iter().any(|r| r[j] != 0.0);
    if had_signal(0) {
        model.t_compute = beta[0];
    }
    if had_signal(1) {
        model.t_local = beta[1];
        model.t_service = beta[1];
        model.t_onnode = beta[1];
        model.t_offnode = beta[1];
    }
    if had_signal(2) {
        model.t_cache = beta[2];
    }
    if had_signal(3) && beta[3] > 0.0 {
        let bw = 1.0 / beta[3];
        model.bw_onnode = bw;
        model.bw_offnode = bw;
    }
    if had_signal(4) {
        model.t_steal = beta[4];
    }
    if had_signal(5) {
        model.t_backoff = beta[5];
    }

    let mut sq_sum = 0.0;
    for (row, &yi) in rows.iter().zip(&y) {
        let pred: f64 = row.iter().zip(&beta).map(|(x, b)| x * b).sum();
        let rel = (pred - yi) / yi;
        sq_sum += rel * rel;
    }
    let rms_rel_residual = (sq_sum / rows.len() as f64).sqrt();

    Ok(Calibration {
        model,
        observations: rows.len(),
        rms_rel_residual,
        phase_errors: report.model_errors(&model),
    })
}

impl Calibration {
    /// One-line human summary for logs.
    pub fn summary(&self) -> String {
        let mean = if self.phase_errors.is_empty() {
            0.0
        } else {
            self.phase_errors.iter().map(|e| e.rel_error).sum::<f64>()
                / self.phase_errors.len() as f64
        };
        format!(
            "calibration: {} observations, rms relative residual {:.3}, mean phase model error {:.1}%",
            self.observations,
            self.rms_rel_residual,
            100.0 * mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PhaseReport;
    use crate::topology::Topology;

    /// splitmix64: a deterministic hash used to generate a full-rank
    /// design matrix (affine-in-rank features would be collinear — six
    /// unknowns over a rank-3 design are unidentifiable).
    fn mix(seed: u64) -> u64 {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Build a report whose exec stamps are generated *exactly* by a known
    /// linear model, so the fit must recover the slopes.
    fn synthetic_report(truth: &CostModel) -> PipelineReport {
        let topo = Topology::new(8, 4);
        let mut pr = PipelineReport::new();
        for phase in 0u64..3 {
            let stats: Vec<CommStats> = (0..8u64)
                .map(|r| {
                    let id = (phase * 8 + r) * 8;
                    let mut s = CommStats {
                        compute_ops: 500_000 + mix(id) % 1_500_000,
                        local_ops: 1_000 + mix(id + 1) % 4_000,
                        service_ops: 500 + mix(id + 2) % 2_000,
                        onnode_msgs: mix(id + 3) % 100,
                        offnode_msgs: mix(id + 3) % 150,
                        cache_hits: 2_000 + mix(id + 4) % 10_000,
                        cache_misses: mix(id + 4) % 1_000,
                        onnode_bytes: mix(id + 5) % (1 << 16),
                        offnode_bytes: (1 << 17) + mix(id + 5) % (1 << 18),
                        steal_ops: 10 + mix(id + 6) % 50,
                        backoff_units: mix(id + 7) % 10,
                        ..CommStats::default()
                    };
                    let seconds = s.compute_ops as f64 * truth.t_compute
                        + (s.local_ops + s.service_ops + s.onnode_msgs + s.offnode_msgs) as f64
                            * truth.t_local
                        + (s.cache_hits + s.cache_misses) as f64 * truth.t_cache
                        + (s.onnode_bytes + s.offnode_bytes) as f64 / truth.bw_onnode
                        + s.steal_ops as f64 * truth.t_steal
                        + s.backoff_units as f64 * truth.t_backoff;
                    s.exec_nanos = (seconds * 1e9).round() as u64;
                    s
                })
                .collect();
            pr.push(PhaseReport::new(format!("phase-{phase}"), topo, stats));
        }
        pr
    }

    #[test]
    fn fit_recovers_a_known_linear_model() {
        let truth = CostModel {
            t_compute: 2.0e-9,
            t_local: 5.0e-7,
            t_onnode: 5.0e-7,
            t_offnode: 5.0e-7,
            t_service: 5.0e-7,
            t_cache: 4.0e-8,
            bw_onnode: 2.0e9,
            bw_offnode: 2.0e9,
            t_steal: 3.0e-6,
            t_backoff: 2.0e-4,
            ..CostModel::edison()
        };
        let pr = synthetic_report(&truth);
        let cal = fit(&pr, &CostModel::edison()).expect("fit succeeds");
        assert_eq!(cal.observations, 24);
        let close = |got: f64, want: f64, what: &str| {
            let rel = (got - want).abs() / want;
            assert!(
                rel < 0.05,
                "{what}: got {got:e}, want {want:e} (rel {rel:.3})"
            );
        };
        close(cal.model.t_compute, truth.t_compute, "t_compute");
        close(cal.model.t_local, truth.t_local, "t_local");
        close(cal.model.t_cache, truth.t_cache, "t_cache");
        close(cal.model.bw_onnode, truth.bw_onnode, "bw_onnode");
        close(cal.model.t_steal, truth.t_steal, "t_steal");
        close(cal.model.t_backoff, truth.t_backoff, "t_backoff");
        // The locality classes collapse onto one fitted slope.
        assert_eq!(cal.model.t_local, cal.model.t_onnode);
        assert_eq!(cal.model.t_local, cal.model.t_offnode);
        assert_eq!(cal.model.t_local, cal.model.t_service);
        assert_eq!(cal.model.bw_onnode, cal.model.bw_offnode);
        // Held-out constants are untouched.
        let base = CostModel::edison();
        assert_eq!(cal.model.t_barrier_base, base.t_barrier_base);
        assert_eq!(cal.model.io_bw_per_rank, base.io_bw_per_rank);
        assert_eq!(cal.model.io_bw_aggregate, base.io_bw_aggregate);
        assert_eq!(cal.model.io_latency, base.io_latency);
        // Exact synthetic data: near-zero residual and model error.
        assert!(cal.rms_rel_residual < 0.01, "{}", cal.rms_rel_residual);
        assert_eq!(cal.phase_errors.len(), 3);
        for e in &cal.phase_errors {
            assert!(e.rel_error < 0.05, "{}: {}", e.name, e.rel_error);
        }
    }

    #[test]
    fn fit_keeps_base_constants_for_absent_features() {
        // Observations with ONLY compute: every other constant must stay
        // at its base value, not collapse to zero.
        let topo = Topology::new(4, 4);
        let stats: Vec<CommStats> = (0..4u64)
            .map(|r| CommStats {
                compute_ops: 1_000_000 * (r + 1),
                exec_nanos: 3_000_000 * (r + 1), // 3ns per op
                ..CommStats::default()
            })
            .collect();
        let mut pr = PipelineReport::new();
        pr.push(PhaseReport::new("compute-only", topo, stats));
        let base = CostModel::edison();
        let cal = fit(&pr, &base).expect("fit succeeds");
        assert!((cal.model.t_compute - 3.0e-9).abs() / 3.0e-9 < 1e-6);
        assert_eq!(cal.model.t_local, base.t_local);
        assert_eq!(cal.model.t_cache, base.t_cache);
        assert_eq!(cal.model.bw_offnode, base.bw_offnode);
        assert_eq!(cal.model.t_steal, base.t_steal);
        assert_eq!(cal.model.t_backoff, base.t_backoff);
    }

    #[test]
    fn fit_clamps_negative_slopes_to_zero() {
        // Two perfectly correlated features where one "explains" the time:
        // with measured time entirely attributable to compute, the cache
        // column must not go negative to soak up noise.
        let topo = Topology::new(4, 4);
        let stats: Vec<CommStats> = (0..4u64)
            .map(|r| CommStats {
                compute_ops: 1_000_000 * (r + 1),
                // Anti-correlated with time: more probes on *faster* ranks.
                cache_hits: 10_000 * (4 - r),
                exec_nanos: 2_000_000 * (r + 1),
                ..CommStats::default()
            })
            .collect();
        let mut pr = PipelineReport::new();
        pr.push(PhaseReport::new("anticorrelated", topo, stats));
        let cal = fit(&pr, &CostModel::edison()).expect("fit succeeds");
        assert!(cal.model.t_cache >= 0.0);
        assert!(cal.model.t_compute > 0.0);
    }

    #[test]
    fn fit_requires_observations() {
        let pr = PipelineReport::new();
        assert!(fit(&pr, &CostModel::edison()).is_err());
        // Stamped ranks with no priced ops are equally unusable.
        let topo = Topology::new(2, 2);
        let stats = vec![
            CommStats {
                exec_nanos: 5,
                ..CommStats::default()
            };
            2
        ];
        let mut pr2 = PipelineReport::new();
        pr2.push(PhaseReport::new("empty", topo, stats));
        assert!(fit(&pr2, &CostModel::edison()).is_err());
    }

    #[test]
    fn fitted_model_round_trips_through_json() {
        let pr = synthetic_report(&CostModel::edison());
        let cal = fit(&pr, &CostModel::edison()).unwrap();
        let text = cal.model.to_json();
        let parsed = CostModel::from_json(&text).unwrap();
        assert_eq!(parsed, cal.model);
        assert_eq!(parsed.to_json(), text, "byte-identical");
        assert!(cal.summary().contains("observations"));
    }
}
