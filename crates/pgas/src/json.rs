//! Minimal JSON document model: build, serialize, parse.
//!
//! The workspace has no serde (the build environment is offline), so the
//! machine-readable reports ([`crate::PipelineReport::to_json`]) and the
//! Chrome-trace exporter ([`crate::trace::chrome_trace_json`]) are written
//! against this small [`Value`] type instead. Object key order is
//! preserved, which keeps report schemas stable and diffs readable. The
//! parser accepts standard JSON (it exists so tests can round-trip what the
//! writers emit, and so downstream tooling written against this crate can
//! read reports back).

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Integers up to 2^53 survive the f64 representation
    /// exactly, which covers every counter this crate emits.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Append `key: value` to an object. Panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        match self {
            Value::Obj(pairs) => pairs.push((key.into(), value.into())),
            _ => panic!("Value::set on a non-object"),
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere or when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys in order; empty elsewhere.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Value::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer payload, if this is a number with an exact u64 value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize without insignificant whitespace.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must be a single value plus whitespace).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-round-trip float formatting, always with a
        // decimal point or exponent so it reads back as the same f64.
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // DEL and the Unicode line separators join the C0 range in the
            // `\uXXXX` escape: U+2028/U+2029 are legal raw in JSON but not
            // in JavaScript string literals, and raw DEL trips terminal and
            // log-pipeline filters — escaping them keeps emitted documents
            // safe to embed anywhere.
            c if (c as u32) < 0x20 || c == '\u{7f}' || c == '\u{2028}' || c == '\u{2029}' => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let Some(slice) = self.bytes.get(start..end) else {
                        return Err(self.err("truncated UTF-8 sequence"));
                    };
                    let Ok(s) = std::str::from_utf8(slice) else {
                        return Err(self.err("invalid UTF-8 in string"));
                    };
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let Some(slice) = self.bytes.get(self.pos..self.pos + 4) else {
            return Err(self.err("truncated \\u escape"));
        };
        let Ok(s) = std::str::from_utf8(slice) else {
            return Err(self.err("invalid \\u escape"));
        };
        let Ok(v) = u32::from_str_radix(s, 16) else {
            return Err(self.err("invalid \\u escape"));
        };
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_write_and_lookup() {
        let mut doc = Value::obj();
        doc.set("name", "contig/traverse")
            .set("count", 42u64)
            .set("frac", 0.125)
            .set("ok", true)
            .set("items", Value::Arr(vec![Value::Num(1.0), Value::Null]));
        let text = doc.to_json();
        assert_eq!(
            text,
            r#"{"name":"contig/traverse","count":42,"frac":0.125,"ok":true,"items":[1,null]}"#
        );
        assert_eq!(doc.get("count").and_then(Value::as_u64), Some(42));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.keys(), vec!["name", "count", "frac", "ok", "items"]);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut doc = Value::obj();
        doc.set("text", "line\nbreak \"quoted\" \\ tab\t end")
            .set("big", 9_007_199_254_740_992.0)
            .set("tiny", 1.0e-7)
            .set("neg", -3.5)
            .set("unicode", "κ-mer ≤ 51");
        let text = doc.to_json();
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // Writer output is canonical: parse→write is a fixpoint.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn parse_accepts_standard_json() {
        let v = Value::parse(r#" { "a" : [ 1 , 2.5 , -3e2 , true , false , null , "Aé😀" ] } "#)
            .unwrap();
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 7);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(arr[6].as_str(), Some("Aé😀"));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_survive_exactly() {
        for n in [0u64, 1, 1 << 40, (1 << 53) - 1] {
            let text = Value::from(n).to_json();
            assert_eq!(Value::parse(&text).unwrap().as_u64(), Some(n));
            assert!(!text.contains('.'), "{text}");
        }
    }

    /// xorshift64* — a tiny deterministic PRNG for the property test below
    /// (no external proptest dependency).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn any_string_survives_serialize_parse_round_trip() {
        // Property test over adversarial strings: every `char` drawn from
        // ranges chosen to hit the escaping edge cases — C0 controls, DEL,
        // quote/backslash, surrogate-pair territory (astral planes), the
        // U+2028/U+2029 line separators, and plain ASCII.
        let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
        for len in 0..200usize {
            let mut s = String::new();
            for _ in 0..len {
                let c = match rng.next() % 8 {
                    0 => char::from_u32((rng.next() % 0x20) as u32).unwrap(),
                    1 => ['"', '\\', '/', '\u{7f}'][(rng.next() % 4) as usize],
                    2 => '\u{2028}',
                    3 => '\u{2029}',
                    4 => char::from_u32(0x1_F600 + (rng.next() % 80) as u32).unwrap(),
                    5 => char::from_u32(0x0400 + (rng.next() % 0x100) as u32).unwrap(),
                    _ => char::from_u32(0x20 + (rng.next() % 0x5f) as u32).unwrap(),
                };
                s.push(c);
            }
            let text = Value::from(s.clone()).to_json();
            let parsed =
                Value::parse(&text).unwrap_or_else(|e| panic!("invalid JSON for {s:?}: {e}"));
            assert_eq!(parsed.as_str(), Some(s.as_str()), "text was {text}");
            // Keys must survive too (exercises object-path escaping).
            let mut obj = Value::obj();
            obj.set(s.clone(), 1u64);
            let doc = Value::parse(&obj.to_json()).unwrap();
            assert_eq!(doc.get(&s).and_then(Value::as_u64), Some(1));
        }
    }

    #[test]
    fn del_and_line_separators_are_escaped() {
        let text = Value::from("a\u{7f}b\u{2028}c\u{2029}d").to_json();
        assert_eq!(text, "\"a\\u007fb\\u2028c\\u2029d\"");
    }
}
