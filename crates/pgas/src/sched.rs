//! Dynamic work scheduling for skewed stages.
//!
//! Static `ctx.chunk(n)` partitioning assigns every rank the same *item
//! count*, but the paper's Fig. 6 stages are skewed in *work per item*:
//! one long contig, deep gap, or heavy-hitter-rich read pins the critical
//! rank while the rest idle. The follow-on HipMer papers (Georganas et al.
//! 2017, 2018) replace static decomposition with dynamic work distribution
//! for exactly these stages: a shared atomic counter from which ranks claim
//! chunks, with guided chunk-size decay so start-up chunks are large (few
//! counter round trips) and end-game chunks are small (bounded tail
//! imbalance).
//!
//! ## Determinism
//!
//! This runtime multiplexes virtual ranks over OS threads and may run them
//! one after another, so a *literal* shared counter would let the first
//! rank drain all the work. Instead the claim sequence itself is
//! simulated: chunks are carved off the front of the index space with
//! guided decay, then dealt to ranks by an earliest-finisher simulation —
//! each chunk goes to the rank with the least accumulated work (ties to
//! the lowest rank id), exactly the rank whose counter fetch-add would
//! have come back first on a real machine. The assignment is a pure
//! function of `(n, weights, topology)`, so every rank computes it
//! independently, results and counters are reproducible across OS-thread
//! schedules, and no cross-rank state is needed.
//!
//! ## Cost accounting
//!
//! Each claimed chunk is one modeled remote atomic fetch-add on the shared
//! counter, tallied in [`CommStats::steal_ops`] and priced by
//! [`CostModel::t_steal`]; every rank additionally pays one final
//! fetch-add that discovers the counter is exhausted. Dynamic scheduling
//! therefore buys balance with communication — the cost model makes that
//! trade visible rather than free.
//!
//! [`CommStats::steal_ops`]: crate::CommStats::steal_ops
//! [`CostModel::t_steal`]: crate::CostModel::t_steal

use crate::team::RankCtx;
use std::collections::BinaryHeap;
use std::ops::Range;

/// How a stage partitions its items across ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Static blocked partitioning via [`crate::Topology::chunk`] (or the
    /// stage's historical decomposition): zero scheduling overhead, but one
    /// expensive item pins its rank.
    #[default]
    Static,
    /// Guided dynamic chunking off a shared work counter (see the module
    /// docs): balanced under skew, at [`crate::CostModel::t_steal`] per
    /// claimed chunk.
    Dynamic,
}

impl Schedule {
    /// The index ranges this rank processes out of `n` equal-weight items.
    ///
    /// `Static` returns the rank's single [`RankCtx::chunk`] and performs
    /// no communication; `Dynamic` returns the rank's claimed chunks and
    /// tallies one [`CommStats::steal_ops`](crate::CommStats::steal_ops)
    /// per chunk (plus the final empty claim).
    pub fn ranges(self, ctx: &mut RankCtx, n: usize) -> Vec<Range<usize>> {
        match self {
            Schedule::Static => vec![ctx.chunk(n)],
            Schedule::Dynamic => ctx.dynamic_ranges(n),
        }
    }

    /// As [`Schedule::ranges`], with one cost weight per item (contig
    /// length, gap depth, seed count, …). `Static` ignores the weights —
    /// that blindness is exactly what the dynamic path fixes.
    pub fn ranges_weighted(self, ctx: &mut RankCtx, weights: &[u64]) -> Vec<Range<usize>> {
        match self {
            Schedule::Static => vec![ctx.chunk(weights.len())],
            Schedule::Dynamic => ctx.dynamic_ranges_weighted(weights),
        }
    }
}

impl std::str::FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "static" => Ok(Schedule::Static),
            "dynamic" => Ok(Schedule::Dynamic),
            other => Err(format!(
                "unknown schedule {other:?} (expected \"static\" or \"dynamic\")"
            )),
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Schedule::Static => "static",
            Schedule::Dynamic => "dynamic",
        })
    }
}

/// Carve `n` items (with weight `w(i)`) into guided chunks off the front:
/// each chunk targets `remaining_weight / (2 * ranks)` — halving towards
/// the end so the last chunks are small — and always takes at least one
/// item, so a single heavy item becomes a chunk of its own.
fn guided_chunks(n: usize, w: &dyn Fn(usize) -> u64, ranks: usize) -> Vec<(Range<usize>, u128)> {
    let total: u128 = (0..n).map(|i| w(i) as u128).sum();
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut remaining = total;
    while start < n {
        let target = (remaining / (2 * ranks as u128)).max(1);
        let mut end = start;
        let mut weight: u128 = 0;
        while end < n && (weight < target || end == start) {
            weight += w(end) as u128;
            end += 1;
        }
        chunks.push((start..end, weight));
        remaining -= weight;
        start = end;
    }
    chunks
}

/// Deal the guided chunks to ranks by earliest-finisher simulation and
/// return the chunks claimed by `rank`, in claim order.
fn claims_for_rank(
    n: usize,
    w: &dyn Fn(usize) -> u64,
    ranks: usize,
    rank: usize,
) -> Vec<Range<usize>> {
    debug_assert!(rank < ranks);
    let chunks = guided_chunks(n, w, ranks);
    // Min-heap of (accumulated weight, rank id): the next chunk goes to
    // the least-loaded rank, ties to the lowest id — the deterministic
    // stand-in for "whoever's fetch-add lands first".
    let mut heap: BinaryHeap<std::cmp::Reverse<(u128, usize)>> =
        (0..ranks).map(|r| std::cmp::Reverse((0, r))).collect();
    let mut mine = Vec::new();
    for (range, weight) in chunks {
        let std::cmp::Reverse((load, r)) = heap.pop().expect("ranks >= 1");
        if r == rank {
            mine.push(range);
        }
        heap.push(std::cmp::Reverse((load + weight, r)));
    }
    mine
}

impl RankCtx {
    /// The chunks of `0..n` this rank claims under guided dynamic
    /// scheduling, in claim order. Tallies one
    /// [`CommStats::steal_ops`](crate::CommStats::steal_ops) per claimed
    /// chunk plus one for the final fetch-add that finds the counter
    /// exhausted.
    pub fn dynamic_ranges(&mut self, n: usize) -> Vec<Range<usize>> {
        let mine = claims_for_rank(n, &|_| 1, self.topo().ranks(), self.rank);
        self.stats.steal(mine.len() as u64 + 1);
        mine
    }

    /// As [`RankCtx::dynamic_ranges`] with one cost weight per item, so
    /// chunk boundaries track modeled work instead of item count.
    pub fn dynamic_ranges_weighted(&mut self, weights: &[u64]) -> Vec<Range<usize>> {
        let mine = claims_for_rank(
            weights.len(),
            &|i| weights[i].max(1),
            self.topo().ranks(),
            self.rank,
        );
        self.stats.steal(mine.len() as u64 + 1);
        mine
    }

    /// The progress-pool name this context reports under: the phase label
    /// when the context runs inside a named phase, else `"dynamic"`.
    fn progress_pool(&self) -> String {
        if self.phase().is_empty() {
            "dynamic".to_string()
        } else {
            self.phase().to_string()
        }
    }

    /// Run `f` once for every index of `0..n` this rank claims under
    /// guided dynamic scheduling (see the [module docs](crate::sched)).
    /// Across the team every index is visited exactly once. When the
    /// metrics registry is enabled, each completed chunk records progress
    /// under pool [`RankCtx::phase`] (team-wide `done` converges to `n`).
    pub fn for_each_dynamic<F: FnMut(&mut RankCtx, usize)>(&mut self, n: usize, mut f: F) {
        let pool = crate::metrics::is_enabled().then(|| self.progress_pool());
        for range in self.dynamic_ranges(n) {
            let len = range.len() as u64;
            for i in range {
                f(self, i);
            }
            if let Some(pool) = &pool {
                crate::metrics::pool_progress(pool, len, n as u64);
            }
        }
    }

    /// As [`RankCtx::for_each_dynamic`] with one cost weight per item
    /// (`weights.len()` items): heavier items close chunks sooner, so a
    /// long contig or deep gap travels alone instead of dragging its
    /// chunk-mates onto the critical rank.
    pub fn for_each_dynamic_weighted<F: FnMut(&mut RankCtx, usize)>(
        &mut self,
        weights: &[u64],
        mut f: F,
    ) {
        let pool = crate::metrics::is_enabled().then(|| self.progress_pool());
        for range in self.dynamic_ranges_weighted(weights) {
            let len = range.len() as u64;
            for i in range {
                f(self, i);
            }
            if let Some(pool) = &pool {
                crate::metrics::pool_progress(pool, len, weights.len() as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Team, Topology};

    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed.wrapping_add(0x9e3779b97f4a7c15);
        move || {
            x ^= x >> 33;
            x = x.wrapping_mul(0xff51afd7ed558ccd);
            x ^= x >> 29;
            x
        }
    }

    /// Run one team phase and collect every (rank, index) visit.
    fn visits(ranks: usize, n: usize, weights: Option<Vec<u64>>) -> Vec<Vec<usize>> {
        let team = Team::new(Topology::new(ranks, 4)).with_os_threads(3);
        let (per_rank, _) = team.run(|ctx| {
            let mut seen = Vec::new();
            match &weights {
                Some(w) => ctx.for_each_dynamic_weighted(w, |_, i| seen.push(i)),
                None => ctx.for_each_dynamic(n, |_, i| seen.push(i)),
            }
            seen
        });
        per_rank
    }

    #[test]
    fn every_index_visited_exactly_once_unweighted() {
        let mut rng = lcg(1);
        for _ in 0..40 {
            let ranks = 1 + (rng() % 24) as usize;
            let n = (rng() % 300) as usize; // includes n == 0 and n < ranks
            let per_rank = visits(ranks, n, None);
            let mut all: Vec<usize> = per_rank.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "ranks={ranks} n={n}");
        }
    }

    #[test]
    fn every_index_visited_exactly_once_weighted() {
        let mut rng = lcg(2);
        for _ in 0..40 {
            let ranks = 1 + (rng() % 24) as usize;
            let n = (rng() % 300) as usize;
            // Long-tail weights: mostly small, occasionally huge.
            let weights: Vec<u64> = (0..n)
                .map(|_| {
                    if rng().is_multiple_of(10) {
                        1_000 + rng() % 100_000
                    } else {
                        1 + rng() % 50
                    }
                })
                .collect();
            let per_rank = visits(ranks, n, Some(weights));
            let mut all: Vec<usize> = per_rank.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "ranks={ranks} n={n}");
        }
    }

    #[test]
    fn more_ranks_than_items_still_covers_everything() {
        for (ranks, n) in [(16, 3), (24, 1), (8, 0), (64, 10)] {
            let per_rank = visits(ranks, n, None);
            let mut all: Vec<usize> = per_rank.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn assignment_is_deterministic_across_os_schedules() {
        let run = |threads: usize| {
            let team = Team::new(Topology::new(9, 3)).with_os_threads(threads);
            let (ranges, stats) = team.run(|ctx| ctx.dynamic_ranges(5_000));
            let scrubbed: Vec<_> = stats
                .into_iter()
                .map(|mut s| {
                    s.exec_nanos = 0;
                    s
                })
                .collect();
            (ranges, scrubbed)
        };
        assert_eq!(run(1), run(6));
    }

    #[test]
    fn guided_chunks_decay_and_cover() {
        let chunks = guided_chunks(10_000, &|_| 1, 8);
        let mut covered = 0;
        for (range, weight) in &chunks {
            assert_eq!(range.start, covered);
            covered = range.end;
            assert_eq!(*weight as usize, range.len());
        }
        assert_eq!(covered, 10_000);
        // First chunk ≈ n / 2P, last chunk small.
        assert_eq!(chunks[0].0.len(), 10_000 / 16);
        assert!(chunks.last().unwrap().0.len() <= chunks[0].0.len() / 16);
    }

    #[test]
    fn weighted_claims_balance_a_long_tail() {
        // One item weighs as much as a whole rank's fair share; static
        // blocked chunking piles ~n/P ordinary items on top of it, dynamic
        // must let it travel (nearly) alone.
        let ranks = 8;
        let mut weights = vec![10u64; 4_000];
        weights[17] = 5_000;
        let total: u128 = weights.iter().map(|&w| w as u128).sum();
        let mean = total as f64 / ranks as f64;

        let topo = Topology::new(ranks, 4);
        let static_max = (0..ranks)
            .map(|r| {
                topo.chunk(weights.len(), r)
                    .map(|i| weights[i] as u128)
                    .sum::<u128>()
            })
            .max()
            .unwrap() as f64;

        let mut loads = vec![0u128; ranks];
        for (r, load) in loads.iter_mut().enumerate() {
            for range in claims_for_rank(weights.len(), &|i| weights[i], ranks, r) {
                *load += range.map(|i| weights[i] as u128).sum::<u128>();
            }
        }
        assert_eq!(loads.iter().sum::<u128>(), total);
        let dynamic_max = *loads.iter().max().unwrap() as f64;
        assert!(
            dynamic_max / mean < 1.25,
            "weighted dynamic imbalance {:.3} too high ({loads:?})",
            dynamic_max / mean
        );
        assert!(
            dynamic_max < static_max,
            "dynamic {dynamic_max} must beat static blocked {static_max}"
        );
    }

    #[test]
    fn steal_ops_count_claims_plus_final_empty_fetch() {
        let team = Team::new(Topology::new(4, 4)).with_os_threads(2);
        let (claims, stats) = team.run(|ctx| ctx.dynamic_ranges(1_000).len() as u64);
        for (rank, s) in stats.iter().enumerate() {
            assert_eq!(s.steal_ops, claims[rank] + 1, "rank {rank}");
        }
    }

    #[test]
    fn dynamic_progress_counts_every_item_under_the_phase_pool() {
        let _serial = crate::metrics::TEST_LOCK.lock().unwrap();
        crate::metrics::reset();
        crate::metrics::enable();
        let team = Team::new(Topology::new(6, 3)).with_os_threads(2);
        team.run_named("test/sched-progress", |ctx| {
            ctx.for_each_dynamic(500, |_, _| {});
        });
        crate::metrics::disable();
        let snap = crate::metrics::snapshot();
        let done = snap
            .iter()
            .find(|m| m.name() == "progress/test/sched-progress/done")
            .expect("progress counter registered");
        match done {
            crate::metrics::MetricSnapshot::Counter(_, c) => assert_eq!(*c, 500),
            other => panic!("expected counter, got {other:?}"),
        }
        let total = snap
            .iter()
            .find(|m| m.name() == "progress/test/sched-progress/total")
            .expect("progress total registered");
        match total {
            crate::metrics::MetricSnapshot::Gauge(_, g) => assert_eq!(*g, 500.0),
            other => panic!("expected gauge, got {other:?}"),
        }
        crate::metrics::reset();
    }

    #[test]
    fn schedule_parses_and_displays() {
        assert_eq!("static".parse::<Schedule>().unwrap(), Schedule::Static);
        assert_eq!("dynamic".parse::<Schedule>().unwrap(), Schedule::Dynamic);
        assert!("guided".parse::<Schedule>().is_err());
        assert_eq!(Schedule::Static.to_string(), "static");
        assert_eq!(Schedule::Dynamic.to_string(), "dynamic");
        assert_eq!(Schedule::default(), Schedule::Static);
    }

    #[test]
    fn schedule_ranges_cover_for_both_modes() {
        let team = Team::new(Topology::new(6, 3)).with_os_threads(2);
        for schedule in [Schedule::Static, Schedule::Dynamic] {
            let (ranges, stats) = team.run(|ctx| schedule.ranges(ctx, 997));
            let mut all: Vec<usize> = ranges.into_iter().flatten().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..997).collect::<Vec<_>>());
            let steals: u64 = stats.iter().map(|s| s.steal_ops).sum();
            match schedule {
                Schedule::Static => assert_eq!(steals, 0),
                Schedule::Dynamic => assert!(steals > 0),
            }
        }
    }
}
