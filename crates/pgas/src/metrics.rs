//! Process-wide metrics registry: named counters, gauges, and log-bucketed
//! histograms.
//!
//! [`crate::trace`] answers *when* each rank ran; this module answers *how
//! much* — table occupancy, shard-lock contention, wire bytes per shipped
//! batch, checkpoint I/O latency, allocation high-water marks. The registry
//! is process-global for the same reason the tracer is: one flag covers
//! every `Team`, `DistHashMap`, and `Outbox` a pipeline constructs
//! internally.
//!
//! ## Cost contract
//!
//! Identical to the tracer's: when disabled (the default), every recording
//! entry point is **one relaxed atomic load and a branch** — no locks, no
//! allocation, no name hashing. When enabled, updates take the registry
//! mutex; that is acceptable because the instrumented sites are batch-level
//! (one update per shipped buffer, per phase, per checkpoint), not
//! per-element.
//!
//! ## Histograms
//!
//! Histograms are HDR-style with power-of-two buckets: bucket 0 counts
//! zeros and bucket `i >= 1` counts values in `[2^(i-1), 2^i - 1]`, so 65
//! buckets cover the full `u64` range with ≤ 2× relative error — plenty
//! for latency/size distributions whose interesting structure spans orders
//! of magnitude.
//!
//! ## Measured-execution counters (DESIGN.md §12)
//!
//! The measured-parallelism engine reports itself exclusively through this
//! registry (never through new [`crate::CommStats`] fields, which would
//! change the report schema):
//!
//! * `pgas/dht/lock_contention` — failed sub-shard `try_lock`s, both from
//!   blocking accessors that then waited and from `try_*` batch primitives
//!   that parked their batch instead;
//! * `pgas/comp/deferred_sends` — batches a [`crate::Completion`] recorded
//!   as deferred (parked at first attempt, landed at the drain);
//! * `pgas/arena/reuse` / `pgas/arena/alloc` — [`crate::BufferPool`] wire
//!   buffer recycling vs. fresh allocations.
//!
//! ## Exposition
//!
//! [`to_json`] renders the registry as a stable JSON document
//! (`metrics_schema_version` 1) and [`prometheus_text`] as Prometheus
//! text-exposition format (anticipating a `hipmer serve` scrape endpoint).
//! [`heartbeat`] additionally emits rate-limited progress lines (items
//! done / total per pool) to stderr or a JSONL sink.

use crate::json::Value;
use parking_lot::Mutex;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Histogram bucket count: bucket 0 for zero, buckets 1..=64 for each
/// power-of-two magnitude.
const BUCKETS: usize = 65;

/// One registered metric's live state.
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Box<Hist>),
}

/// Log-bucketed histogram state (see module docs for bucket semantics).
struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }
}

/// The bucket index of `v`: 0 for zero, else `64 - leading_zeros`, i.e.
/// the bit length of `v`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `i` (`2^i - 1`; bucket 64 saturates
/// at `u64::MAX`).
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// The recording scope of the current thread (see [`scoped`]).
    static SCOPE: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

/// Restores the previous thread scope on drop (see [`scoped`]).
pub struct ScopeGuard {
    prev: Option<Arc<str>>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| *s.borrow_mut() = self.prev.take());
    }
}

/// Prefix every metric this thread records with `label` until the
/// returned guard drops: a counter `pgas/dht/entries` recorded under the
/// scope `job/3` registers as `job/3/pgas/dht/entries`, and heartbeat
/// pools are prefixed the same way. This is how a multi-tenant server
/// keeps concurrent jobs' counters and heartbeat JSONL lines from
/// interleaving in the process-wide registry. [`crate::Team`] propagates
/// the spawning thread's scope into its OS worker threads, so everything
/// a job's phases record lands under the job's label.
///
/// Scopes nest: entering a scope while one is active appends
/// (`outer/inner/...`); the guard restores the outer scope.
pub fn scoped(label: &str) -> ScopeGuard {
    let prev = SCOPE.with(|s| s.borrow().clone());
    let full: Arc<str> = match &prev {
        Some(outer) => format!("{outer}/{label}").into(),
        None => label.into(),
    };
    SCOPE.with(|s| *s.borrow_mut() = Some(full));
    ScopeGuard { prev }
}

/// The current thread's recording scope, if any — captured by [`crate::Team`]
/// before spawning phase workers so they inherit it via [`inherit_scope`].
pub fn current_scope() -> Option<Arc<str>> {
    SCOPE.with(|s| s.borrow().clone())
}

/// Adopt `scope` (a [`current_scope`] capture) on this thread until the
/// guard drops; replaces, rather than nests under, any existing scope.
pub fn inherit_scope(scope: Option<Arc<str>>) -> ScopeGuard {
    let prev = SCOPE.with(|s| s.replace(scope));
    ScopeGuard { prev }
}

/// `name` under the current thread scope (borrowed when unscoped — the
/// common one-shot-CLI case pays nothing).
fn with_scope<'a>(name: &'a str) -> Cow<'a, str> {
    match SCOPE.with(|s| s.borrow().clone()) {
        Some(scope) => Cow::Owned(format!("{scope}/{name}")),
        None => Cow::Borrowed(name),
    }
}

/// Heartbeat emission state: rate limit and sink, plus per-pool last-emit
/// timestamps.
struct HeartbeatState {
    interval: Option<Duration>,
    sink: Option<PathBuf>,
    last: BTreeMap<String, Instant>,
}

static HEARTBEAT: Mutex<HeartbeatState> = Mutex::new(HeartbeatState {
    interval: None,
    sink: None,
    last: BTreeMap::new(),
});

/// The instant heartbeat elapsed-seconds are measured from (fixed at first
/// use, like [`crate::trace::epoch`]).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turn the registry on. Recording entry points start taking effect;
/// already-registered values are kept.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the registry off. Values stay readable via [`snapshot`] /
/// [`to_json`] / [`prometheus_text`] until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the registry is recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear every registered metric and all heartbeat rate-limit state (the
/// enabled flag is left as-is). Mostly for tests.
pub fn reset() {
    REGISTRY.lock().clear();
    let mut hb = HEARTBEAT.lock();
    hb.last.clear();
}

/// Add `delta` to the named monotonic counter (registered on first use).
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    counter_add_slow(name, delta);
}

#[cold]
fn counter_add_slow(name: &str, delta: u64) {
    let name = with_scope(name);
    let mut reg = REGISTRY.lock();
    match reg.entry(name.to_string()).or_insert(Metric::Counter(0)) {
        Metric::Counter(c) => *c = c.saturating_add(delta),
        _ => debug_assert!(false, "metric {name:?} is not a counter"),
    }
}

/// Set the named gauge to `value` (last write wins).
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    gauge_update_slow(name, value, false);
}

/// Raise the named gauge to `value` if it is higher than the current
/// reading — the high-water-mark update used for occupancy and allocation
/// peaks.
#[inline]
pub fn gauge_max(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    gauge_update_slow(name, value, true);
}

#[cold]
fn gauge_update_slow(name: &str, value: f64, max_only: bool) {
    let name = with_scope(name);
    let mut reg = REGISTRY.lock();
    match reg
        .entry(name.to_string())
        .or_insert(Metric::Gauge(f64::NEG_INFINITY))
    {
        Metric::Gauge(g) => {
            if !max_only || value > *g {
                *g = value;
            }
        }
        _ => debug_assert!(false, "metric {name:?} is not a gauge"),
    }
}

/// Record one observation in the named log-bucketed histogram.
#[inline]
pub fn observe(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    observe_slow(name, value);
}

#[cold]
fn observe_slow(name: &str, value: u64) {
    let name = with_scope(name);
    let mut reg = REGISTRY.lock();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Box::new(Hist::new())))
    {
        Metric::Histogram(h) => h.observe(value),
        _ => debug_assert!(false, "metric {name:?} is not a histogram"),
    }
}

/// Record pool progress (`delta_done` newly completed items out of
/// `total`) and emit a rate-limited heartbeat line. The cumulative done
/// count lives in the counter `progress/<pool>/done` and the total in the
/// gauge `progress/<pool>/total`, so progress is also visible in
/// [`to_json`] / [`prometheus_text`] output.
pub fn pool_progress(pool: &str, delta_done: u64, total: u64) {
    if !is_enabled() {
        return;
    }
    let pool = with_scope(pool);
    let done = {
        let mut reg = REGISTRY.lock();
        let done = match reg
            .entry(format!("progress/{pool}/done"))
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => {
                *c = c.saturating_add(delta_done);
                *c
            }
            _ => 0,
        };
        if let Metric::Gauge(g) = reg
            .entry(format!("progress/{pool}/total"))
            .or_insert(Metric::Gauge(0.0))
        {
            *g = total as f64;
        }
        done
    };
    heartbeat_scoped(&pool, done, total);
}

/// How often (at most) one heartbeat line per pool is emitted. `None`
/// (the default) suppresses emission entirely; progress counters are still
/// maintained by [`pool_progress`].
pub fn set_heartbeat_interval(interval: Option<Duration>) {
    HEARTBEAT.lock().interval = interval;
}

/// Where heartbeat lines go: `Some(path)` appends JSONL records
/// (`{"pool":...,"done":...,"total":...,"elapsed_seconds":...}`), `None`
/// (the default) writes human-readable lines to stderr.
pub fn set_heartbeat_sink(path: Option<PathBuf>) {
    HEARTBEAT.lock().sink = path;
}

/// Emit one progress heartbeat for `pool` (`done` items of `total`),
/// subject to the configured rate limit and sink. A no-op unless the
/// registry is enabled and an interval was set. The pool label is
/// prefixed with the current thread's recording scope (see [`scoped`]),
/// so concurrent jobs' heartbeat lines stay distinguishable.
pub fn heartbeat(pool: &str, done: u64, total: u64) {
    if !is_enabled() {
        return;
    }
    heartbeat_scoped(&with_scope(pool), done, total);
}

/// [`heartbeat`] body for a pool label that is already scope-qualified.
fn heartbeat_scoped(pool: &str, done: u64, total: u64) {
    let (sink, elapsed) = {
        let mut hb = HEARTBEAT.lock();
        let Some(interval) = hb.interval else {
            return;
        };
        let now = Instant::now();
        if let Some(last) = hb.last.get(pool) {
            if now.duration_since(*last) < interval {
                return;
            }
        }
        hb.last.insert(pool.to_string(), now);
        (hb.sink.clone(), epoch().elapsed().as_secs_f64())
    };
    match sink {
        None => {
            let pct = if total > 0 {
                100.0 * done as f64 / total as f64
            } else {
                0.0
            };
            eprintln!("hipmer: heartbeat pool={pool} done={done} total={total} ({pct:.1}%)");
        }
        Some(path) => {
            let mut line = Value::obj();
            line.set("pool", pool)
                .set("done", done)
                .set("total", total)
                .set("elapsed_seconds", elapsed);
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| writeln!(f, "{}", line.to_json()));
        }
    }
}

/// A point-in-time copy of one registered metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricSnapshot {
    /// A monotonic counter: `(name, value)`.
    Counter(String, u64),
    /// A gauge: `(name, value)`.
    Gauge(String, f64),
    /// A histogram snapshot.
    Histogram(HistogramSnapshot),
}

impl MetricSnapshot {
    /// The metric's registered name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter(n, _) => n,
            MetricSnapshot::Gauge(n, _) => n,
            MetricSnapshot::Histogram(h) => &h.name,
        }
    }
}

/// A point-in-time copy of one histogram's state.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// The metric's registered name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive_upper_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// Copy every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = REGISTRY.lock();
    reg.iter()
        .map(|(name, m)| match m {
            Metric::Counter(c) => MetricSnapshot::Counter(name.clone(), *c),
            Metric::Gauge(g) => MetricSnapshot::Gauge(name.clone(), *g),
            Metric::Histogram(h) => MetricSnapshot::Histogram(HistogramSnapshot {
                name: name.clone(),
                count: h.count,
                sum: h.sum,
                min: if h.count == 0 { 0 } else { h.min },
                max: h.max,
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| (bucket_upper_bound(i), c))
                    .collect(),
            }),
        })
        .collect()
}

/// Serialize the registry as a JSON document:
/// `{"metrics_schema_version":1,"metrics":[...]}` with one object per
/// metric (`{"name","type","value"}` for counters/gauges;
/// `{"name","type","count","sum","min","max","buckets":[{"le","count"}]}`
/// for histograms). Metrics appear sorted by name, so the output is
/// deterministic for a given registry state.
pub fn to_json() -> String {
    let mut doc = Value::obj();
    doc.set("metrics_schema_version", 1u64);
    let metrics: Vec<Value> = snapshot()
        .iter()
        .map(|m| {
            let mut v = Value::obj();
            match m {
                MetricSnapshot::Counter(name, c) => {
                    v.set("name", name.as_str())
                        .set("type", "counter")
                        .set("value", *c);
                }
                MetricSnapshot::Gauge(name, g) => {
                    v.set("name", name.as_str())
                        .set("type", "gauge")
                        .set("value", *g);
                }
                MetricSnapshot::Histogram(h) => {
                    v.set("name", h.name.as_str())
                        .set("type", "histogram")
                        .set("count", h.count)
                        .set("sum", h.sum)
                        .set("min", h.min)
                        .set("max", h.max);
                    let buckets: Vec<Value> = h
                        .buckets
                        .iter()
                        .map(|&(le, count)| {
                            let mut b = Value::obj();
                            b.set("le", le).set("count", count);
                            b
                        })
                        .collect();
                    v.set("buckets", Value::Arr(buckets));
                }
            }
            v
        })
        .collect();
    doc.set("metrics", Value::Arr(metrics));
    doc.to_json()
}

/// Map a registry name onto the Prometheus metric-name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and a
/// leading digit is prefixed with `_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let keep = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if keep { c } else { '_' });
    }
    out
}

/// Render the registry in Prometheus text-exposition format: counters and
/// gauges as single samples, histograms as cumulative `_bucket{le=...}`
/// series plus `_sum` and `_count`. Registry names are sanitized to the
/// Prometheus charset (`/` and `-` become `_`).
pub fn prometheus_text() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for m in snapshot() {
        let name = prometheus_name(m.name());
        match m {
            MetricSnapshot::Counter(_, c) => {
                let _ = writeln!(out, "# TYPE {name} counter\n{name} {c}");
            }
            MetricSnapshot::Gauge(_, g) => {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {g}");
            }
            MetricSnapshot::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (le, count) in &h.buckets {
                    cumulative += count;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

/// Serializes tests — crate-wide — that toggle the process-global
/// registry. Any test that calls [`enable`] must hold this.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn with_clean_registry<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        enable();
        let out = f();
        disable();
        reset();
        out
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        disable();
        counter_add("test/noop", 5);
        gauge_set("test/noop_gauge", 1.0);
        observe("test/noop_hist", 42);
        pool_progress("noop", 1, 10);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn counters_accumulate_and_saturate() {
        with_clean_registry(|| {
            counter_add("test/c", 3);
            counter_add("test/c", 4);
            counter_add("test/c", u64::MAX);
            match &snapshot()[..] {
                [MetricSnapshot::Counter(name, v)] => {
                    assert_eq!(name, "test/c");
                    assert_eq!(*v, u64::MAX, "saturating, not wrapping");
                }
                other => panic!("unexpected snapshot {other:?}"),
            }
        });
    }

    #[test]
    fn gauge_set_overwrites_and_gauge_max_keeps_high_water() {
        with_clean_registry(|| {
            gauge_set("test/g", 5.0);
            gauge_set("test/g", 2.0);
            gauge_max("test/hw", 1.0);
            gauge_max("test/hw", 9.0);
            gauge_max("test/hw", 3.0);
            let snap = snapshot();
            assert_eq!(snap[0], MetricSnapshot::Gauge("test/g".into(), 2.0));
            assert_eq!(snap[1], MetricSnapshot::Gauge("test/hw".into(), 9.0));
        });
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        // Bucket semantics: 0 -> bucket 0, [2^(i-1), 2^i - 1] -> bucket i.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(8), 255);
        assert_eq!(bucket_upper_bound(64), u64::MAX);

        with_clean_registry(|| {
            for v in [0u64, 1, 2, 3, 200, 300, u64::MAX] {
                observe("test/h", v);
            }
            match &snapshot()[..] {
                [MetricSnapshot::Histogram(h)] => {
                    assert_eq!(h.count, 7);
                    assert_eq!(h.min, 0);
                    assert_eq!(h.max, u64::MAX);
                    assert_eq!(h.sum, u64::MAX, "sum saturates");
                    assert_eq!(
                        h.buckets,
                        vec![
                            (0, 1),        // 0
                            (1, 1),        // 1
                            (3, 2),        // 2, 3
                            (255, 1),      // 200
                            (511, 1),      // 300
                            (u64::MAX, 1), // u64::MAX
                        ]
                    );
                }
                other => panic!("unexpected snapshot {other:?}"),
            }
        });
    }

    #[test]
    fn json_exposition_parses_and_carries_schema() {
        with_clean_registry(|| {
            counter_add("dht/contended_locks", 2);
            gauge_set("dht/entries", 128.0);
            observe("outbox/wire_bytes", 4096);
            let doc = Value::parse(&to_json()).expect("valid JSON");
            assert_eq!(
                doc.get("metrics_schema_version").and_then(Value::as_u64),
                Some(1)
            );
            let metrics = doc.get("metrics").unwrap().as_arr().unwrap();
            assert_eq!(metrics.len(), 3);
            let names: Vec<_> = metrics
                .iter()
                .map(|m| m.get("name").and_then(Value::as_str).unwrap())
                .collect();
            assert_eq!(
                names,
                vec!["dht/contended_locks", "dht/entries", "outbox/wire_bytes"]
            );
            let hist = &metrics[2];
            assert_eq!(hist.get("type").and_then(Value::as_str), Some("histogram"));
            assert_eq!(hist.get("count").and_then(Value::as_u64), Some(1));
            let buckets = hist.get("buckets").unwrap().as_arr().unwrap();
            assert_eq!(buckets[0].get("le").and_then(Value::as_u64), Some(8191));
        });
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        with_clean_registry(|| {
            counter_add("sched/steals", 7);
            gauge_set("mem/peak_bytes/kmer-analysis", 1024.0);
            observe("checkpoint/save_nanos", 1000);
            observe("checkpoint/save_nanos", 3000);
            let text = prometheus_text();
            assert!(text.contains("# TYPE sched_steals counter\nsched_steals 7\n"));
            assert!(text.contains("mem_peak_bytes_kmer_analysis 1024\n"));
            assert!(text.contains("# TYPE checkpoint_save_nanos histogram"));
            assert!(text.contains("checkpoint_save_nanos_bucket{le=\"+Inf\"} 2"));
            assert!(text.contains("checkpoint_save_nanos_sum 4000"));
            assert!(text.contains("checkpoint_save_nanos_count 2"));
            // Cumulative bucket counts are monotonic by construction; both
            // observations fall in (1024, 4095] buckets.
            assert!(text.contains("checkpoint_save_nanos_bucket{le=\"1023\"} 1"));
            assert!(text.contains("checkpoint_save_nanos_bucket{le=\"4095\"} 2"));
        });
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("a/b-c.d"), "a_b_c_d");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("ok_name:unit"), "ok_name:unit");
    }

    #[test]
    fn pool_progress_maintains_counters_without_interval() {
        with_clean_registry(|| {
            // No heartbeat interval set: nothing is emitted, but the
            // progress counters still accumulate.
            pool_progress("sched", 10, 100);
            pool_progress("sched", 30, 100);
            let snap = snapshot();
            assert_eq!(
                snap[0],
                MetricSnapshot::Counter("progress/sched/done".into(), 40)
            );
            assert_eq!(
                snap[1],
                MetricSnapshot::Gauge("progress/sched/total".into(), 100.0)
            );
        });
    }

    #[test]
    fn heartbeat_jsonl_sink_appends_records() {
        with_clean_registry(|| {
            let path = std::env::temp_dir().join(format!(
                "hipmer-metrics-hb-{}-{:?}.jsonl",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_file(&path).ok();
            set_heartbeat_interval(Some(Duration::from_secs(0)));
            set_heartbeat_sink(Some(path.clone()));
            heartbeat("stage", 1, 5);
            heartbeat("stage", 2, 5);
            set_heartbeat_sink(None);
            set_heartbeat_interval(None);
            let text = std::fs::read_to_string(&path).unwrap();
            let lines: Vec<_> = text.lines().collect();
            assert_eq!(lines.len(), 2);
            let rec = Value::parse(lines[1]).unwrap();
            assert_eq!(rec.get("pool").and_then(Value::as_str), Some("stage"));
            assert_eq!(rec.get("done").and_then(Value::as_u64), Some(2));
            assert_eq!(rec.get("total").and_then(Value::as_u64), Some(5));
            assert!(rec.get("elapsed_seconds").and_then(Value::as_f64).is_some());
            std::fs::remove_file(&path).ok();
        });
    }

    #[test]
    fn scoped_recording_prefixes_names_and_restores() {
        with_clean_registry(|| {
            counter_add("test/c", 1);
            {
                let _job = scoped("job/7");
                counter_add("test/c", 2);
                gauge_set("test/g", 1.0);
                observe("test/h", 4);
                {
                    let _inner = scoped("stage");
                    counter_add("test/c", 5);
                }
                counter_add("test/c", 10);
            }
            counter_add("test/c", 100);
            let names: Vec<String> = snapshot().iter().map(|m| m.name().to_string()).collect();
            assert_eq!(
                names,
                vec![
                    "job/7/stage/test/c",
                    "job/7/test/c",
                    "job/7/test/g",
                    "job/7/test/h",
                    "test/c",
                ]
            );
            match &snapshot()[..] {
                [MetricSnapshot::Counter(_, nested), MetricSnapshot::Counter(_, scoped), _, _, MetricSnapshot::Counter(_, bare)] =>
                {
                    assert_eq!((*nested, *scoped, *bare), (5, 12, 101));
                }
                other => panic!("unexpected snapshot {other:?}"),
            }
        });
    }

    #[test]
    fn scoped_pool_progress_separates_jobs() {
        with_clean_registry(|| {
            {
                let _a = scoped("job/1");
                pool_progress("stages", 2, 5);
            }
            {
                let _b = scoped("job/2");
                pool_progress("stages", 3, 5);
            }
            let snap = snapshot();
            assert_eq!(
                snap[0],
                MetricSnapshot::Counter("progress/job/1/stages/done".into(), 2)
            );
            assert_eq!(
                snap[2],
                MetricSnapshot::Counter("progress/job/2/stages/done".into(), 3)
            );
        });
    }

    #[test]
    fn inherited_scope_replaces_and_restores() {
        with_clean_registry(|| {
            let captured = {
                let _outer = scoped("job/9");
                current_scope()
            };
            assert_eq!(captured.as_deref(), Some("job/9"));
            {
                let _worker = inherit_scope(captured);
                counter_add("test/c", 1);
            }
            assert!(current_scope().is_none(), "guard restored no-scope");
            assert_eq!(snapshot()[0].name(), "job/9/test/c");
        });
    }

    #[test]
    fn heartbeat_respects_rate_limit() {
        with_clean_registry(|| {
            let path = std::env::temp_dir().join(format!(
                "hipmer-metrics-rl-{}-{:?}.jsonl",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_file(&path).ok();
            set_heartbeat_interval(Some(Duration::from_secs(3600)));
            set_heartbeat_sink(Some(path.clone()));
            for i in 0..10 {
                heartbeat("limited", i, 10);
            }
            set_heartbeat_sink(None);
            set_heartbeat_interval(None);
            let text = std::fs::read_to_string(&path).unwrap();
            assert_eq!(text.lines().count(), 1, "only the first emission lands");
            std::fs::remove_file(&path).ok();
        });
    }
}
