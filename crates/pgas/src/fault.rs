//! Deterministic, seeded fault injection for the PGAS runtime.
//!
//! At the paper's scale (15,360 cores for multiple hours) the dominant
//! operational risks are *transient* network faults — a one-sided access
//! that must be retried — and *hard* rank failures that take a whole stage
//! down. This module supplies the failure model for both, wired into the
//! runtime's classified communication points (every
//! [`RankCtx::comm`](crate::RankCtx::comm) call: `DistHashMap`
//! gets/puts/multi-gets and `AggregatingStores`/`LookupBatch` flushes):
//!
//! * A [`FaultPlan`] deterministically schedules faults from a seed. Each
//!   *remote* communication event of each rank gets an event number; the
//!   fault decision is a pure hash of `(seed, rank, event)`, so a plan
//!   replays identically regardless of how virtual ranks are multiplexed
//!   over OS threads (each rank's own event sequence is deterministic, a
//!   repo-wide invariant).
//! * A **transient fault** forces the message to be re-sent: the retry is
//!   re-accounted in full (latency + bytes) and tallied in
//!   [`CommStats::transient_faults`](crate::CommStats::transient_faults) /
//!   [`CommStats::retries`](crate::CommStats::retries), and a capped
//!   exponential backoff penalty accumulates in
//!   [`CommStats::backoff_units`](crate::CommStats::backoff_units) (priced
//!   by [`CostModel::t_backoff`](crate::CostModel::t_backoff)). A message
//!   whose retry budget is exhausted escalates to a hard failure.
//! * A **hard rank failure** ([`FaultPlan::with_rank_failure`], or an
//!   escalated transient) unwinds the failing rank's phase body with a
//!   [`RankFailure`] payload. [`crate::Team::try_run_named`] catches it and
//!   returns [`StageOutcome::Aborted`]; the plain
//!   [`crate::Team::run_named`] re-raises it as a [`StageAbort`] panic so
//!   drivers that checkpoint (see the `hipmer` crate) can catch the whole
//!   stage with [`catch_stage_abort`] and re-execute it from the last
//!   checkpoint. Injected hard failures are one-shot: the re-executed
//!   stage does not re-fail at the same event.
//!
//! Faults only ever perturb *accounting and control flow*, never data: a
//! retried message re-runs no shard mutation, and an aborted stage is
//! re-executed from scratch, so a faulty run that completes produces
//! byte-identical results to a fault-free run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default per-message retry budget before a transient fault escalates.
pub const DEFAULT_MAX_RETRIES: u32 = 4;

/// Default cap on the backoff exponent: attempt `n` adds
/// `2^min(n-1, cap)` backoff units.
pub const DEFAULT_BACKOFF_CAP: u32 = 6;

/// Why a rank failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// A hard failure scheduled by [`FaultPlan::with_rank_failure`].
    Injected,
    /// A transient fault whose per-message retry budget ran out.
    RetryBudgetExhausted,
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Injected => write!(f, "injected rank failure"),
            FailureCause::RetryBudgetExhausted => write!(f, "retry budget exhausted"),
        }
    }
}

/// Panic payload raised inside a phase body when the acting rank dies.
/// Caught by [`crate::Team::try_run_named`]; never escapes a worker thread.
#[derive(Clone, Copy, Debug)]
pub struct RankFailure {
    /// The rank that died.
    pub rank: usize,
    /// Why it died.
    pub cause: FailureCause,
}

/// Panic payload raised by [`crate::Team::run_named`] when a stage aborts
/// (its structured sibling [`crate::Team::try_run_named`] returns
/// [`StageOutcome::Aborted`] instead). Catch it at a stage boundary with
/// [`catch_stage_abort`].
#[derive(Clone, Debug)]
pub struct StageAbort {
    /// Label of the phase that aborted.
    pub phase: String,
    /// The rank whose failure aborted the stage.
    pub rank: usize,
    /// Why the rank failed.
    pub cause: FailureCause,
}

impl std::fmt::Display for StageAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stage aborted in phase {:?}: rank {} failed ({})",
            self.phase, self.rank, self.cause
        )
    }
}

/// The outcome of one SPMD stage under fault injection (returned by
/// [`crate::Team::try_run_named`]).
pub enum StageOutcome<R> {
    /// Every rank ran to completion.
    Completed(Vec<R>, Vec<crate::CommStats>),
    /// At least one rank died; per-rank results were discarded. The caller
    /// re-executes the stage (counters of the aborted attempt are dropped
    /// with it — see `PipelineReport::rollback_to`).
    Aborted(StageAbort),
}

/// What [`FaultPlan::on_remote_event`] decided for one communication event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The message goes through.
    Delivered,
    /// The message is lost; retry it.
    Transient,
    /// The acting rank dies now.
    Kill,
}

/// A deterministic, seeded schedule of communication faults.
///
/// Attach a plan to a team with [`crate::Team::with_fault_plan`]; every
/// remote (non-local) communication event on every rank then consults it.
/// Construction is cheap; the per-event cost is one atomic increment and
/// one hash.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// `P(transient fault)` per delivery attempt, as a 2^-64 fixed-point
    /// threshold (`u128` so probability 1.0 is representable).
    transient_threshold: u128,
    max_retries: u32,
    backoff_cap: u32,
    /// One-shot hard kill: `(rank, at_event)`.
    kill: Option<(usize, u64)>,
    kill_fired: AtomicBool,
    /// Per-rank remote-communication event counters (whole plan lifetime;
    /// never reset, so a re-executed stage sees fresh event numbers).
    events: Vec<AtomicU64>,
}

impl FaultPlan {
    /// A plan over `ranks` ranks that injects nothing yet.
    pub fn new(seed: u64, ranks: usize) -> Self {
        FaultPlan {
            seed,
            transient_threshold: 0,
            max_retries: DEFAULT_MAX_RETRIES,
            backoff_cap: DEFAULT_BACKOFF_CAP,
            kill: None,
            kill_fired: AtomicBool::new(false),
            events: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Inject transient message faults with probability `prob` per
    /// delivery attempt (clamped to `[0, 1]`).
    pub fn with_transient(mut self, prob: f64) -> Self {
        let p = prob.clamp(0.0, 1.0);
        self.transient_threshold = (p * (u128::from(u64::MAX) + 1) as f64) as u128;
        self
    }

    /// Per-message retry budget before a transient fault escalates to a
    /// hard rank failure (must be ≥ 1).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        assert!(max_retries >= 1);
        self.max_retries = max_retries;
        self
    }

    /// Cap the exponential-backoff exponent (attempt `n` adds
    /// `2^min(n-1, cap)` backoff units).
    pub fn with_backoff_cap(mut self, cap: u32) -> Self {
        self.backoff_cap = cap;
        self
    }

    /// Schedule a one-shot hard failure: `rank` dies at its `at_event`-th
    /// remote communication event. Because event counters persist across
    /// stages, the re-executed stage does not hit the same event again —
    /// and the kill is additionally latched so it can fire at most once
    /// per plan.
    pub fn with_rank_failure(mut self, rank: usize, at_event: u64) -> Self {
        assert!(rank < self.events.len(), "kill rank out of range");
        self.kill = Some((rank, at_event));
        self
    }

    /// The per-message retry budget.
    #[inline]
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The backoff exponent cap.
    #[inline]
    pub fn backoff_cap(&self) -> u32 {
        self.backoff_cap
    }

    /// Total remote communication events each rank has issued so far.
    pub fn events_seen(&self, rank: usize) -> u64 {
        self.events[rank].load(Ordering::Relaxed)
    }

    /// Number of ranks the plan covers.
    pub fn events_len(&self) -> usize {
        self.events.len()
    }

    /// Consult the plan for the next remote communication event on `rank`
    /// (each delivery attempt — including retries — is its own event).
    pub fn on_remote_event(&self, rank: usize) -> FaultEvent {
        let ev = self.events[rank].fetch_add(1, Ordering::Relaxed);
        if let Some((kill_rank, at_event)) = self.kill {
            if kill_rank == rank && ev >= at_event && !self.kill_fired.swap(true, Ordering::Relaxed)
            {
                return FaultEvent::Kill;
            }
        }
        if self.transient_threshold > 0
            && u128::from(mix64(
                self.seed
                    ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ ev.wrapping_mul(0xBF58_476D_1CE4_E5B9),
            )) < self.transient_threshold
        {
            return FaultEvent::Transient;
        }
        FaultEvent::Delivered
    }

    /// Raise a [`RankFailure`] panic for `rank` (used by the runtime when
    /// the plan returns [`FaultEvent::Kill`] or a retry budget runs out).
    pub fn fail_rank(rank: usize, cause: FailureCause) -> ! {
        install_quiet_hook();
        std::panic::panic_any(RankFailure { rank, cause })
    }
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of `x`.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Install (once) a panic hook that stays silent for the runtime's own
/// control-flow payloads ([`RankFailure`], [`StageAbort`]) and delegates to
/// the previous hook for everything else. Without this every injected
/// failure would splatter a "panicked at ..." line on stderr even though
/// the unwind is caught and handled.
fn install_quiet_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.is::<RankFailure>() || p.is::<StageAbort>() {
                return;
            }
            previous(info);
        }));
    });
}

/// Run a stage closure, converting a [`StageAbort`] panic (raised by
/// [`crate::Team::run_named`] when a rank dies) into an `Err`. Any other
/// panic resumes unwinding unchanged.
pub fn catch_stage_abort<T>(f: impl FnOnce() -> T) -> Result<T, StageAbort> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<StageAbort>() {
            Ok(abort) => Err(*abort),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// Raise a [`StageAbort`] panic (used by [`crate::Team::run_named`]; pairs
/// with [`catch_stage_abort`]).
pub fn raise_stage_abort(abort: StageAbort) -> ! {
    install_quiet_hook();
    std::panic::panic_any(abort)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_by_default() {
        let plan = FaultPlan::new(42, 4);
        for _ in 0..10_000 {
            assert_eq!(plan.on_remote_event(1), FaultEvent::Delivered);
        }
    }

    #[test]
    fn transient_rate_tracks_probability() {
        let plan = FaultPlan::new(7, 1).with_transient(0.05);
        let n = 100_000;
        let faults = (0..n)
            .filter(|_| plan.on_remote_event(0) == FaultEvent::Transient)
            .count();
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn decisions_are_deterministic_per_rank_and_event() {
        // Two plans with the same seed agree event-for-event even when the
        // ranks are interrogated in different interleavings.
        let a = FaultPlan::new(99, 2).with_transient(0.2);
        let b = FaultPlan::new(99, 2).with_transient(0.2);
        let mut seq_a = Vec::new();
        for _ in 0..500 {
            seq_a.push(a.on_remote_event(0));
        }
        for _ in 0..500 {
            a.on_remote_event(1);
        }
        // Interleaved on plan b.
        let mut seq_b = Vec::new();
        for _ in 0..500 {
            b.on_remote_event(1);
            seq_b.push(b.on_remote_event(0));
        }
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn seeds_change_the_schedule() {
        let a = FaultPlan::new(1, 1).with_transient(0.1);
        let b = FaultPlan::new(2, 1).with_transient(0.1);
        let seq = |p: &FaultPlan| -> Vec<FaultEvent> {
            (0..2000).map(|_| p.on_remote_event(0)).collect()
        };
        assert_ne!(seq(&a), seq(&b));
    }

    #[test]
    fn kill_fires_once_at_the_scheduled_event() {
        let plan = FaultPlan::new(0, 2).with_rank_failure(1, 3);
        // Rank 0 is never killed.
        for _ in 0..10 {
            assert_eq!(plan.on_remote_event(0), FaultEvent::Delivered);
        }
        assert_eq!(plan.on_remote_event(1), FaultEvent::Delivered); // ev 0
        assert_eq!(plan.on_remote_event(1), FaultEvent::Delivered); // ev 1
        assert_eq!(plan.on_remote_event(1), FaultEvent::Delivered); // ev 2
        assert_eq!(plan.on_remote_event(1), FaultEvent::Kill); // ev 3
        for _ in 0..10 {
            // One-shot: the retried stage must not die again.
            assert_eq!(plan.on_remote_event(1), FaultEvent::Delivered);
        }
        assert_eq!(plan.events_seen(1), 14);
    }

    #[test]
    fn probability_one_always_faults() {
        let plan = FaultPlan::new(3, 1).with_transient(1.0);
        for _ in 0..100 {
            assert_eq!(plan.on_remote_event(0), FaultEvent::Transient);
        }
    }

    #[test]
    fn catch_stage_abort_round_trips() {
        let abort = StageAbort {
            phase: "test/phase".into(),
            rank: 3,
            cause: FailureCause::Injected,
        };
        let err = catch_stage_abort(|| -> () { raise_stage_abort(abort.clone()) }).unwrap_err();
        assert_eq!(err.rank, 3);
        assert_eq!(err.cause, FailureCause::Injected);
        assert_eq!(err.phase, "test/phase");
        assert!(err.to_string().contains("rank 3"));
        // Plain values pass through untouched.
        assert_eq!(catch_stage_abort(|| 5).unwrap(), 5);
    }

    #[test]
    fn unrelated_panics_are_not_swallowed() {
        let res = std::panic::catch_unwind(|| {
            let _ = catch_stage_abort(|| panic!("real bug"));
        });
        assert!(res.is_err(), "ordinary panics must resume unwinding");
    }
}
