//! Aggregating stores (§4.1 of the paper, introduced in \[13\]).
//!
//! Fine-grained remote upserts — one per k-mer, splint, or span — would put
//! one message on the network each. The aggregating-stores optimization
//! buffers updates per destination rank and ships each buffer as a single
//! message when full, cutting the message count along the critical path by
//! the batch factor and reducing synchronization on the destination shard
//! (one lock acquisition per batch instead of per element).
//!
//! The buffered elements still pay bandwidth (bytes are accounted in full);
//! only the per-message latency and per-element lock traffic are saved —
//! the same trade the paper's UPC implementation makes.
//!
//! This module batches the *write* path; [`crate::LookupBatch`] and
//! [`crate::SoftwareCache`] in [`crate::lookup`] are the read-side
//! counterparts, with the same accounting contract.

use crate::dht::DistHashMap;
use crate::team::RankCtx;
use crate::topology::Topology;
use std::hash::Hash;

/// A generic per-destination message aggregator.
///
/// [`AggregatingStores`] covers the common "batched upsert into a
/// [`DistHashMap`]" case; `Outbox` is the underlying pattern for anything
/// else that batches per-destination work (e.g. Bloom-filter insertion in
/// k-mer analysis, where the *owner's* filter must absorb the key). The
/// caller supplies the apply function at flush time; the outbox accounts
/// one message per shipped batch.
pub struct Outbox<T> {
    buffers: Vec<Vec<T>>,
    batch: usize,
    item_bytes: u64,
    topo: Topology,
}

impl<T> Outbox<T> {
    /// An outbox over `topo` shipping batches of `batch` items.
    ///
    /// Bandwidth is billed at `size_of::<T>()` per item by default. Beware
    /// the caveat: that is the item's *in-memory* size, which includes any
    /// alignment padding — a `(Kmer, ExtVotes)` tuple, say, occupies more
    /// bytes in a Rust `Vec` than its fields would occupy packed on the
    /// wire, so padded payloads overstate modeled bandwidth. Real senders
    /// serialize packed; callers with padded item types should declare the
    /// packed wire size via [`Outbox::with_item_bytes`].
    pub fn new(topo: Topology, batch: usize) -> Self {
        assert!(batch >= 1);
        Outbox {
            buffers: (0..topo.ranks()).map(|_| Vec::new()).collect(),
            batch,
            item_bytes: std::mem::size_of::<T>() as u64,
            topo,
        }
    }

    /// Override the modeled wire bytes billed per item (default:
    /// `size_of::<T>()`, which counts struct padding — see [`Outbox::new`]).
    /// Use the packed sum of the fields a real sender would serialize.
    pub fn with_item_bytes(mut self, item_bytes: u64) -> Self {
        assert!(item_bytes >= 1, "an item on the wire has at least one byte");
        self.item_bytes = item_bytes;
        self
    }

    /// Queue `item` for `dest`; ships that buffer through `apply` if full.
    pub fn push<F>(&mut self, ctx: &mut RankCtx, dest: usize, item: T, apply: &mut F)
    where
        F: FnMut(usize, Vec<T>),
    {
        self.buffers[dest].push(item);
        if self.buffers[dest].len() >= self.batch {
            self.ship(ctx, dest, apply);
        }
    }

    fn ship<F>(&mut self, ctx: &mut RankCtx, dest: usize, apply: &mut F)
    where
        F: FnMut(usize, Vec<T>),
    {
        let items = std::mem::take(&mut self.buffers[dest]);
        if items.is_empty() {
            return;
        }
        let topo = self.topo;
        let bytes = items.len() as u64 * self.item_bytes;
        ctx.comm(&topo, dest, bytes);
        crate::metrics::observe("pgas/outbox/wire_bytes", bytes);
        apply(dest, items);
    }

    /// Ship every non-empty buffer.
    pub fn flush_all<F>(&mut self, ctx: &mut RankCtx, apply: &mut F)
    where
        F: FnMut(usize, Vec<T>),
    {
        for dest in 0..self.buffers.len() {
            self.ship(ctx, dest, apply);
        }
    }

    /// Consume the outbox: flush every buffer, then hard-assert nothing is
    /// left pending. Prefer this over a bare [`flush_all`](Self::flush_all)
    /// at the end of a phase — it cannot be silently skipped on an early
    /// return path, and it runs the check in release builds too.
    pub fn finish<F>(mut self, ctx: &mut RankCtx, apply: &mut F)
    where
        F: FnMut(usize, Vec<T>),
    {
        self.flush_all(ctx, apply);
        assert_eq!(self.pending(), 0, "Outbox::finish left items pending");
    }

    /// Items currently buffered.
    pub fn pending(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }

    /// Discard every buffered item without shipping it. The abort-safe
    /// teardown for a stage that failed mid-flight: the un-shipped work is
    /// intentionally thrown away (the stage will be re-executed from
    /// scratch), and the `Drop` drained-buffer assertion is disarmed.
    pub fn abandon(mut self) {
        for buf in &mut self.buffers {
            buf.clear();
        }
    }
}

impl<T> Drop for Outbox<T> {
    fn drop(&mut self) {
        // An injected rank failure unwinds through pending buffers by
        // design; asserting then would turn an orderly stage abort into a
        // double-panic process abort.
        if std::thread::panicking() {
            return;
        }
        debug_assert_eq!(
            self.pending(),
            0,
            "Outbox dropped with un-shipped items; call finish(ctx, ..)"
        );
    }
}

/// Default elements per destination buffer. The paper does not publish its
/// batch size; hundreds-per-destination is the regime where per-message
/// latency stops mattering.
pub const DEFAULT_BATCH: usize = 256;

/// A per-rank buffer set for batched upserts into a [`DistHashMap`].
///
/// One `AggregatingStores` is created per acting rank per phase (it is not
/// shared between ranks). Call [`push`](Self::push) for each update and
/// consume the aggregator with [`finish`](Self::finish) (or at least
/// [`flush_all`](Self::flush_all)) before the phase ends; un-flushed
/// updates are lost (`finish` asserts in all builds, and a `debug_assert`
/// in `Drop` catches aggregators abandoned at phase end). The read-side
/// mirror of this type is [`crate::LookupBatch`].
pub struct AggregatingStores<'a, K, V, M>
where
    M: Fn(&mut V, V),
{
    dht: &'a DistHashMap<K, V>,
    merge: M,
    buffers: Vec<Vec<(K, V)>>,
    batch: usize,
    entry_bytes: u64,
}

impl<'a, K, V, M> AggregatingStores<'a, K, V, M>
where
    K: Hash + Eq + Send,
    V: Send,
    M: Fn(&mut V, V),
{
    /// New buffer set targeting `dht`, combining colliding values with
    /// `merge` (e.g. vote-count addition).
    pub fn new(dht: &'a DistHashMap<K, V>, merge: M) -> Self {
        Self::with_batch(dht, merge, DEFAULT_BATCH)
    }

    /// As [`new`](Self::new) with an explicit batch size (ablation hook).
    pub fn with_batch(dht: &'a DistHashMap<K, V>, merge: M, batch: usize) -> Self {
        assert!(batch >= 1);
        let ranks = dht.topo().ranks();
        AggregatingStores {
            dht,
            merge,
            buffers: (0..ranks).map(|_| Vec::new()).collect(),
            batch,
            entry_bytes: (std::mem::size_of::<K>() + std::mem::size_of::<V>()) as u64,
        }
    }

    /// Queue one upsert; ships the destination's buffer if it is full.
    pub fn push(&mut self, ctx: &mut RankCtx, key: K, value: V) {
        let dest = self.dht.owner(&key);
        self.buffers[dest].push((key, value));
        if self.buffers[dest].len() >= self.batch {
            self.ship(ctx, dest);
        }
    }

    /// Ship one destination's buffer as a single aggregated message.
    fn ship(&mut self, ctx: &mut RankCtx, dest: usize) {
        let entries = std::mem::take(&mut self.buffers[dest]);
        if entries.is_empty() {
            return;
        }
        let bytes = entries.len() as u64 * self.entry_bytes;
        // One message event carrying the whole batch.
        let topo = *self.dht.topo();
        ctx.comm(&topo, dest, bytes);
        crate::metrics::observe("pgas/agg/wire_bytes", bytes);
        self.dht.merge_batch(dest, entries, &self.merge);
    }

    /// Ship every non-empty buffer (call before the phase barrier).
    pub fn flush_all(&mut self, ctx: &mut RankCtx) {
        for dest in 0..self.buffers.len() {
            self.ship(ctx, dest);
        }
    }

    /// Consume the aggregator: flush every buffer, then hard-assert all
    /// buffers drained. Unlike the `Drop` debug assertion this also fires
    /// in release builds, closing the flush-on-drop hole for phases whose
    /// updates must not be silently lost.
    pub fn finish(mut self, ctx: &mut RankCtx) {
        self.flush_all(ctx);
        assert_eq!(
            self.pending(),
            0,
            "AggregatingStores::finish left updates pending"
        );
    }
}

impl<K, V, M> AggregatingStores<'_, K, V, M>
where
    M: Fn(&mut V, V),
{
    /// Elements currently buffered (diagnostics).
    pub fn pending(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }

    /// Discard every buffered update without flushing it — the abort-safe
    /// teardown for a stage that failed mid-flight (the stage re-executes
    /// from scratch, so the pending upserts must *not* land).
    pub fn abandon(mut self) {
        for buf in &mut self.buffers {
            buf.clear();
        }
    }
}

impl<K, V, M> Drop for AggregatingStores<'_, K, V, M>
where
    M: Fn(&mut V, V),
{
    fn drop(&mut self) {
        // See Outbox::drop: never assert while a rank-failure panic is
        // already unwinding through this aggregator.
        if std::thread::panicking() {
            return;
        }
        debug_assert_eq!(
            self.pending(),
            0,
            "AggregatingStores dropped with un-flushed updates; call flush_all"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommStats, Topology};

    #[test]
    fn batched_updates_apply_with_merge() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::with_batch(&dht, |a: &mut u32, b| *a += b, 8);
        for k in 0..100u64 {
            agg.push(&mut ctx, k % 10, 1);
        }
        agg.flush_all(&mut ctx);
        for k in 0..10u64 {
            assert_eq!(dht.get(&mut ctx, &k), Some(10), "key {k}");
        }
    }

    #[test]
    fn aggregation_reduces_message_count() {
        let topo = Topology::new(8, 4);
        let n = 4096u64;

        // Fine-grained: one message per update.
        let dht1: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut fine = RankCtx::new(0, topo);
        for k in 0..n {
            dht1.update(&mut fine, k, || 0, |v| *v += 1);
        }

        // Aggregated.
        let dht2: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut agg_ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::with_batch(&dht2, |a: &mut u32, b| *a += b, 128);
        for k in 0..n {
            agg.push(&mut agg_ctx, k, 1);
        }
        agg.flush_all(&mut agg_ctx);

        assert_eq!(dht1.len(), dht2.len());
        let fine_msgs = fine.stats.remote_msgs();
        let agg_msgs = agg_ctx.stats.remote_msgs();
        assert!(
            agg_msgs * 32 < fine_msgs,
            "batching must slash messages: {agg_msgs} vs {fine_msgs}"
        );
        // Bandwidth is NOT saved — bytes must be comparable.
        let fine_bytes = fine.stats.onnode_bytes + fine.stats.offnode_bytes;
        let agg_bytes = agg_ctx.stats.onnode_bytes + agg_ctx.stats.offnode_bytes;
        assert_eq!(fine_bytes, agg_bytes);
    }

    #[test]
    fn flush_all_empties_buffers() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::new(&dht, |a: &mut u32, b| *a += b);
        for k in 0..5u64 {
            agg.push(&mut ctx, k, 1);
        }
        assert_eq!(agg.pending(), 5);
        agg.flush_all(&mut ctx);
        assert_eq!(agg.pending(), 0);
        assert_eq!(dht.len(), 5);
    }

    #[test]
    fn finish_flushes_and_consumes() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::new(&dht, |a: &mut u32, b| *a += b);
        for k in 0..5u64 {
            agg.push(&mut ctx, k, 1);
        }
        agg.finish(&mut ctx);
        assert_eq!(dht.len(), 5);
    }

    #[test]
    fn abandon_discards_pending_updates() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::new(&dht, |a: &mut u32, b| *a += b);
        for k in 0..5u64 {
            agg.push(&mut ctx, k, 1);
        }
        agg.abandon(); // no drop assertion, and nothing lands
        assert_eq!(dht.len(), 0);
    }

    #[test]
    fn service_ops_still_counted_at_owner() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::with_batch(&dht, |a: &mut u32, b| *a += b, 16);
        for k in 0..64u64 {
            agg.push(&mut ctx, k, 1);
        }
        agg.flush_all(&mut ctx);
        let mut stats = vec![CommStats::new(); 4];
        dht.drain_service_into(&mut stats);
        let total: u64 = stats.iter().map(|s| s.service_ops).sum();
        assert_eq!(total, 64);
    }
}

#[cfg(test)]
mod outbox_tests {
    use super::*;
    use crate::Topology;
    use std::collections::HashMap;

    #[test]
    fn outbox_batches_and_applies() {
        let topo = Topology::new(4, 2);
        let mut ctx = RankCtx::new(0, topo);
        let mut outbox: Outbox<u64> = Outbox::new(topo, 10);
        let mut landed: HashMap<usize, Vec<u64>> = HashMap::new();
        let mut apply = |dest: usize, items: Vec<u64>| {
            landed.entry(dest).or_default().extend(items);
        };
        for i in 0..95u64 {
            outbox.push(&mut ctx, (i % 4) as usize, i, &mut apply);
        }
        outbox.flush_all(&mut ctx, &mut apply);
        assert_eq!(outbox.pending(), 0);
        let total: usize = landed.values().map(Vec::len).sum();
        assert_eq!(total, 95);
        // 95 items over 4 dests in batches of 10 -> far fewer messages than
        // items; rank 0 messages are local ops.
        let msgs = ctx.stats.total_accesses();
        assert!(msgs <= 12, "messages {msgs}");
    }

    #[test]
    fn item_bytes_override_replaces_padded_default() {
        // A padded payload: (u64, u8) occupies 16 in-memory bytes but only
        // 9 packed wire bytes.
        let topo = Topology::new(2, 1);
        assert_eq!(std::mem::size_of::<(u64, u8)>(), 16);
        let run = |outbox: &mut Outbox<(u64, u8)>| {
            let mut ctx = RankCtx::new(0, topo);
            let mut apply = |_dest: usize, _items: Vec<(u64, u8)>| {};
            for i in 0..50u64 {
                outbox.push(&mut ctx, 1, (i, 0), &mut apply);
            }
            outbox.flush_all(&mut ctx, &mut apply);
            ctx.stats.onnode_bytes + ctx.stats.offnode_bytes
        };
        let mut padded: Outbox<(u64, u8)> = Outbox::new(topo, 8);
        let mut packed: Outbox<(u64, u8)> = Outbox::new(topo, 8).with_item_bytes(9);
        assert_eq!(run(&mut padded), 50 * 16);
        assert_eq!(run(&mut packed), 50 * 9);
    }

    #[test]
    fn outbox_abandon_discards_pending() {
        let topo = Topology::new(4, 2);
        let mut ctx = RankCtx::new(0, topo);
        let mut outbox: Outbox<u64> = Outbox::new(topo, 100);
        let mut apply = |_dest: usize, _items: Vec<u64>| panic!("nothing may ship");
        for i in 0..7u64 {
            outbox.push(&mut ctx, (i % 4) as usize, i, &mut apply);
        }
        assert_eq!(outbox.pending(), 7);
        outbox.abandon();
    }
}
