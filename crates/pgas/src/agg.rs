//! Aggregating stores (§4.1 of the paper, introduced in \[13\]).
//!
//! Fine-grained remote upserts — one per k-mer, splint, or span — would put
//! one message on the network each. The aggregating-stores optimization
//! buffers updates per destination rank and ships each buffer as a single
//! message when full, cutting the message count along the critical path by
//! the batch factor and reducing synchronization on the destination shard
//! (one lock acquisition per batch instead of per element).
//!
//! The buffered elements still pay bandwidth (bytes are accounted in full);
//! only the per-message latency and per-element lock traffic are saved —
//! the same trade the paper's UPC implementation makes.
//!
//! Since the measured-parallelism engine (DESIGN.md §12) sends are
//! **non-blocking**: a full buffer is attempted with the destination
//! table's `try_*` path, and a batch behind a contended sub-shard lock is
//! parked instead of stalling the sending worker — see [`crate::comp`] for
//! the completion-drain lifecycle. Buffers are recycled through a
//! [`BufferPool`] so a steady phase allocates nothing per batch.
//!
//! This module batches the *write* path; [`crate::LookupBatch`] and
//! [`crate::SoftwareCache`] in [`crate::lookup`] are the read-side
//! counterparts, with the same accounting contract.

use crate::arena::BufferPool;
use crate::comp::Completion;
use crate::dht::DistHashMap;
use crate::team::RankCtx;
use crate::topology::Topology;
use std::hash::Hash;

/// A generic per-destination message aggregator.
///
/// [`AggregatingStores`] covers the common "batched upsert into a
/// [`DistHashMap`]" case; `Outbox` is the underlying pattern for anything
/// else that batches per-destination work (e.g. Bloom-filter insertion in
/// k-mer analysis, where the *owner's* filter must absorb the key). The
/// caller supplies the apply function at flush time; the outbox accounts
/// one message per shipped batch.
///
/// Two apply styles exist: the blocking [`push`](Self::push) /
/// [`flush_all`](Self::flush_all) / [`finish`](Self::finish) family takes
/// an infallible `FnMut(usize, Vec<T>)`, and the non-blocking
/// [`push_async`](Self::push_async) / [`flush_async`](Self::flush_async) /
/// [`finish_async`](Self::finish_async) family takes a *fallible* closure
/// returning `Result<Vec<T>, Vec<T>>` — `Ok(drained_carrier)` when the
/// batch landed (the emptied buffer is recycled), `Err(items)` when the
/// destination was contended (the batch is parked until
/// [`drain`](Self::drain)). [`DistHashMap::try_merge_batch`] has exactly
/// this signature shape, so table-backed outboxes pass it straight through.
pub struct Outbox<T> {
    buffers: Vec<Vec<T>>,
    deferred: Vec<(usize, Vec<T>)>,
    pool: BufferPool<T>,
    completion: Completion,
    batch: usize,
    item_bytes: u64,
    topo: Topology,
}

impl<T> Outbox<T> {
    /// An outbox over `topo` shipping batches of `batch` items.
    ///
    /// Bandwidth is billed at `size_of::<T>()` per item by default. Beware
    /// the caveat: that is the item's *in-memory* size, which includes any
    /// alignment padding — a `(Kmer, ExtVotes)` tuple, say, occupies more
    /// bytes in a Rust `Vec` than its fields would occupy packed on the
    /// wire, so padded payloads overstate modeled bandwidth. Real senders
    /// serialize packed; callers with padded item types should declare the
    /// packed wire size via [`Outbox::with_item_bytes`].
    pub fn new(topo: Topology, batch: usize) -> Self {
        assert!(batch >= 1);
        Outbox {
            buffers: (0..topo.ranks()).map(|_| Vec::new()).collect(),
            deferred: Vec::new(),
            pool: BufferPool::default_bound(),
            completion: Completion::new(),
            batch,
            item_bytes: std::mem::size_of::<T>() as u64,
            topo,
        }
    }

    /// Override the modeled wire bytes billed per item (default:
    /// `size_of::<T>()`, which counts struct padding — see [`Outbox::new`]).
    /// Use the packed sum of the fields a real sender would serialize.
    pub fn with_item_bytes(mut self, item_bytes: u64) -> Self {
        assert!(item_bytes >= 1, "an item on the wire has at least one byte");
        self.item_bytes = item_bytes;
        self
    }

    /// Account one shipped batch: message + bytes at first attempt. Parked
    /// batches are **not** re-accounted at drain time, so per-rank counters
    /// depend only on the push sequence, never on lock contention.
    fn account(&self, ctx: &mut RankCtx, dest: usize, items: usize) {
        let topo = self.topo;
        let bytes = items as u64 * self.item_bytes;
        ctx.comm(&topo, dest, bytes);
        crate::metrics::observe("pgas/outbox/wire_bytes", bytes);
    }

    /// Queue `item` for `dest`; ships that buffer through `apply` if full.
    pub fn push<F>(&mut self, ctx: &mut RankCtx, dest: usize, item: T, apply: &mut F)
    where
        F: FnMut(usize, Vec<T>),
    {
        self.buffers[dest].push(item);
        if self.buffers[dest].len() >= self.batch {
            self.ship(ctx, dest, apply);
        }
    }

    /// Queue `item` for `dest`; a full buffer is *attempted* through
    /// `try_apply` and parked if the destination is contended (see the
    /// type-level docs for the closure contract).
    pub fn push_async<F>(&mut self, ctx: &mut RankCtx, dest: usize, item: T, try_apply: &mut F)
    where
        F: FnMut(usize, Vec<T>) -> Result<Vec<T>, Vec<T>>,
    {
        self.buffers[dest].push(item);
        if self.buffers[dest].len() >= self.batch {
            self.ship_async(ctx, dest, try_apply);
        }
    }

    fn ship<F>(&mut self, ctx: &mut RankCtx, dest: usize, apply: &mut F)
    where
        F: FnMut(usize, Vec<T>),
    {
        if self.buffers[dest].is_empty() {
            return;
        }
        let fresh = self.pool.take();
        let items = std::mem::replace(&mut self.buffers[dest], fresh);
        self.account(ctx, dest, items.len());
        self.completion.record_shipped();
        apply(dest, items);
    }

    fn ship_async<F>(&mut self, ctx: &mut RankCtx, dest: usize, try_apply: &mut F)
    where
        F: FnMut(usize, Vec<T>) -> Result<Vec<T>, Vec<T>>,
    {
        if self.buffers[dest].is_empty() {
            return;
        }
        let fresh = self.pool.take();
        let items = std::mem::replace(&mut self.buffers[dest], fresh);
        self.account(ctx, dest, items.len());
        match try_apply(dest, items) {
            Ok(carrier) => {
                self.completion.record_shipped();
                self.pool.put(carrier);
            }
            Err(items) => {
                self.completion.record_deferred();
                self.deferred.push((dest, items));
            }
        }
    }

    /// Ship every non-empty buffer, then drain anything parked — on return
    /// every queued item has been applied.
    pub fn flush_all<F>(&mut self, ctx: &mut RankCtx, apply: &mut F)
    where
        F: FnMut(usize, Vec<T>),
    {
        for dest in 0..self.buffers.len() {
            self.ship(ctx, dest, apply);
        }
        self.drain(apply);
    }

    /// Non-blocking flush: attempt every non-empty buffer through
    /// `try_apply`, parking contended batches instead of waiting. Returns
    /// this outbox's cumulative [`Completion`]; call [`drain`](Self::drain)
    /// (or [`finish_async`](Self::finish_async)) before the phase barrier.
    pub fn flush_async<F>(&mut self, ctx: &mut RankCtx, try_apply: &mut F) -> Completion
    where
        F: FnMut(usize, Vec<T>) -> Result<Vec<T>, Vec<T>>,
    {
        for dest in 0..self.buffers.len() {
            self.ship_async(ctx, dest, try_apply);
        }
        self.completion
    }

    /// Apply every parked batch with the blocking `apply`. Already-shipped
    /// accounting is **not** repeated. Must run before the phase barrier;
    /// `flush_all` and the `finish` variants call it for you.
    pub fn drain<F>(&mut self, apply: &mut F)
    where
        F: FnMut(usize, Vec<T>),
    {
        for (dest, items) in std::mem::take(&mut self.deferred) {
            apply(dest, items);
        }
    }

    /// Consume the outbox: flush every buffer, then hard-assert nothing is
    /// left pending. Prefer this over a bare [`flush_all`](Self::flush_all)
    /// at the end of a phase — it cannot be silently skipped on an early
    /// return path, and it runs the check in release builds too.
    pub fn finish<F>(mut self, ctx: &mut RankCtx, apply: &mut F)
    where
        F: FnMut(usize, Vec<T>),
    {
        self.flush_all(ctx, apply);
        assert_eq!(self.pending(), 0, "Outbox::finish left items pending");
    }

    /// Consume the outbox on the async path: attempt remaining buffers via
    /// `try_apply`, drain parked batches via the blocking `apply`, and
    /// hard-assert nothing is left. Returns the final [`Completion`] so the
    /// caller can log how much of the phase's traffic overlapped compute.
    pub fn finish_async<TF, F>(
        mut self,
        ctx: &mut RankCtx,
        try_apply: &mut TF,
        apply: &mut F,
    ) -> Completion
    where
        TF: FnMut(usize, Vec<T>) -> Result<Vec<T>, Vec<T>>,
        F: FnMut(usize, Vec<T>),
    {
        let completion = self.flush_async(ctx, try_apply);
        self.drain(apply);
        assert_eq!(self.pending(), 0, "Outbox::finish_async left items pending");
        completion
    }

    /// Items currently buffered or parked awaiting a drain.
    pub fn pending(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum::<usize>()
            + self.deferred.iter().map(|(_, b)| b.len()).sum::<usize>()
    }

    /// Cumulative completion summary of every ship attempt so far.
    pub fn completion(&self) -> Completion {
        self.completion
    }

    /// Discard every buffered and parked item without shipping it. The
    /// abort-safe teardown for a stage that failed mid-flight: the
    /// un-shipped work is intentionally thrown away (the stage will be
    /// re-executed from scratch), and the `Drop` drained-buffer assertion
    /// is disarmed.
    pub fn abandon(mut self) {
        for buf in &mut self.buffers {
            buf.clear();
        }
        self.deferred.clear();
    }
}

impl<T> Drop for Outbox<T> {
    fn drop(&mut self) {
        // An injected rank failure unwinds through pending buffers by
        // design; asserting then would turn an orderly stage abort into a
        // double-panic process abort.
        if std::thread::panicking() {
            return;
        }
        debug_assert_eq!(
            self.pending(),
            0,
            "Outbox dropped with un-shipped items; call finish(ctx, ..)"
        );
    }
}

/// Default elements per destination buffer. The paper does not publish its
/// batch size; hundreds-per-destination is the regime where per-message
/// latency stops mattering.
pub const DEFAULT_BATCH: usize = 256;

/// A per-rank buffer set for batched upserts into a [`DistHashMap`].
///
/// One `AggregatingStores` is created per acting rank per phase (it is not
/// shared between ranks). Call [`push`](Self::push) for each update and
/// consume the aggregator with [`finish`](Self::finish) (or at least
/// [`flush_all`](Self::flush_all)) before the phase ends; un-flushed
/// updates are lost (`finish` asserts in all builds, and a `debug_assert`
/// in `Drop` catches aggregators abandoned at phase end). The read-side
/// mirror of this type is [`crate::LookupBatch`].
///
/// Sends are non-blocking ([`crate::comp`]): a full buffer is attempted
/// with [`DistHashMap::try_merge_batch`] and parked when the owner
/// sub-shard is contended; parked batches land at the next
/// [`drain`](Self::drain) / [`flush_all`](Self::flush_all) /
/// [`finish`](Self::finish). This is output-safe for the same reason
/// concurrent ranks already are: merge application order across batches is
/// only ever observable to commutative merges (see DESIGN.md §12).
pub struct AggregatingStores<'a, K, V, M>
where
    M: Fn(&mut V, V),
{
    dht: &'a DistHashMap<K, V>,
    merge: M,
    buffers: Vec<Vec<(K, V)>>,
    deferred: Vec<(usize, Vec<(K, V)>)>,
    pool: BufferPool<(K, V)>,
    completion: Completion,
    batch: usize,
    entry_bytes: u64,
}

impl<'a, K, V, M> AggregatingStores<'a, K, V, M>
where
    K: Hash + Eq + Send,
    V: Send,
    M: Fn(&mut V, V),
{
    /// New buffer set targeting `dht`, combining colliding values with
    /// `merge` (e.g. vote-count addition).
    pub fn new(dht: &'a DistHashMap<K, V>, merge: M) -> Self {
        Self::with_batch(dht, merge, DEFAULT_BATCH)
    }

    /// As [`new`](Self::new) with an explicit batch size (ablation hook).
    pub fn with_batch(dht: &'a DistHashMap<K, V>, merge: M, batch: usize) -> Self {
        assert!(batch >= 1);
        let ranks = dht.topo().ranks();
        AggregatingStores {
            dht,
            merge,
            buffers: (0..ranks).map(|_| Vec::new()).collect(),
            deferred: Vec::new(),
            pool: BufferPool::default_bound(),
            completion: Completion::new(),
            batch,
            entry_bytes: (std::mem::size_of::<K>() + std::mem::size_of::<V>()) as u64,
        }
    }

    /// Queue one upsert; a full destination buffer is shipped
    /// (non-blocking: contended batches park until the next drain point).
    pub fn push(&mut self, ctx: &mut RankCtx, key: K, value: V) {
        let dest = self.dht.owner(&key);
        self.buffers[dest].push((key, value));
        if self.buffers[dest].len() >= self.batch {
            self.ship(ctx, dest);
        }
    }

    /// Ship one destination's buffer as a single aggregated message,
    /// attempted through the table's non-blocking path.
    fn ship(&mut self, ctx: &mut RankCtx, dest: usize) {
        if self.buffers[dest].is_empty() {
            return;
        }
        let fresh = self.pool.take();
        let entries = std::mem::replace(&mut self.buffers[dest], fresh);
        let bytes = entries.len() as u64 * self.entry_bytes;
        // One message event carrying the whole batch, charged at first
        // attempt; a parked batch is not re-charged when it drains.
        let topo = *self.dht.topo();
        ctx.comm(&topo, dest, bytes);
        crate::metrics::observe("pgas/agg/wire_bytes", bytes);
        match self.dht.try_merge_batch(dest, entries, &self.merge) {
            Ok(carrier) => {
                self.completion.record_shipped();
                self.pool.put(carrier);
            }
            Err(leftovers) => {
                self.completion.record_deferred();
                self.deferred.push((dest, leftovers));
            }
        }
    }

    /// Apply every parked batch with the blocking path (no re-accounting).
    /// Runs implicitly from [`flush_all`](Self::flush_all) and
    /// [`finish`](Self::finish); call it directly at intra-phase sync
    /// points when using [`flush_async`](Self::flush_async).
    pub fn drain(&mut self) {
        for (dest, entries) in std::mem::take(&mut self.deferred) {
            let carrier = self.dht.apply_batch(dest, entries, &self.merge, false);
            self.pool.put(carrier);
        }
    }

    /// Ship every non-empty buffer and drain parked batches — on return
    /// every queued upsert has landed (call before the phase barrier).
    pub fn flush_all(&mut self, ctx: &mut RankCtx) {
        for dest in 0..self.buffers.len() {
            self.ship(ctx, dest);
        }
        self.drain();
    }

    /// Non-blocking flush: attempt every non-empty buffer, parking
    /// contended batches instead of waiting, and return the cumulative
    /// [`Completion`]. The caller owns the obligation to
    /// [`drain`](Self::drain) (or `flush_all`/`finish`) before the phase
    /// barrier — [`finish`](Self::finish) and the `Drop` assertion both
    /// enforce it.
    pub fn flush_async(&mut self, ctx: &mut RankCtx) -> Completion {
        for dest in 0..self.buffers.len() {
            self.ship(ctx, dest);
        }
        self.completion
    }

    /// Consume the aggregator: flush every buffer, then hard-assert all
    /// buffers drained. Unlike the `Drop` debug assertion this also fires
    /// in release builds, closing the flush-on-drop hole for phases whose
    /// updates must not be silently lost.
    pub fn finish(mut self, ctx: &mut RankCtx) {
        self.flush_all(ctx);
        assert_eq!(
            self.pending(),
            0,
            "AggregatingStores::finish left updates pending"
        );
    }
}

impl<K, V, M> AggregatingStores<'_, K, V, M>
where
    M: Fn(&mut V, V),
{
    /// Elements currently buffered or parked awaiting a drain.
    pub fn pending(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum::<usize>()
            + self.deferred.iter().map(|(_, b)| b.len()).sum::<usize>()
    }

    /// Cumulative completion summary of every ship attempt so far.
    pub fn completion(&self) -> Completion {
        self.completion
    }

    /// Discard every buffered and parked update without flushing it — the
    /// abort-safe teardown for a stage that failed mid-flight (the stage
    /// re-executes from scratch, so the pending upserts must *not* land).
    pub fn abandon(mut self) {
        for buf in &mut self.buffers {
            buf.clear();
        }
        self.deferred.clear();
    }
}

impl<K, V, M> Drop for AggregatingStores<'_, K, V, M>
where
    M: Fn(&mut V, V),
{
    fn drop(&mut self) {
        // See Outbox::drop: never assert while a rank-failure panic is
        // already unwinding through this aggregator.
        if std::thread::panicking() {
            return;
        }
        debug_assert_eq!(
            self.pending(),
            0,
            "AggregatingStores dropped with un-flushed updates; call flush_all"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommStats, Topology};

    #[test]
    fn batched_updates_apply_with_merge() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::with_batch(&dht, |a: &mut u32, b| *a += b, 8);
        for k in 0..100u64 {
            agg.push(&mut ctx, k % 10, 1);
        }
        agg.flush_all(&mut ctx);
        for k in 0..10u64 {
            assert_eq!(dht.get(&mut ctx, &k), Some(10), "key {k}");
        }
    }

    #[test]
    fn aggregation_reduces_message_count() {
        let topo = Topology::new(8, 4);
        let n = 4096u64;

        // Fine-grained: one message per update.
        let dht1: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut fine = RankCtx::new(0, topo);
        for k in 0..n {
            dht1.update(&mut fine, k, || 0, |v| *v += 1);
        }

        // Aggregated.
        let dht2: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut agg_ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::with_batch(&dht2, |a: &mut u32, b| *a += b, 128);
        for k in 0..n {
            agg.push(&mut agg_ctx, k, 1);
        }
        agg.flush_all(&mut agg_ctx);

        assert_eq!(dht1.len(), dht2.len());
        let fine_msgs = fine.stats.remote_msgs();
        let agg_msgs = agg_ctx.stats.remote_msgs();
        assert!(
            agg_msgs * 32 < fine_msgs,
            "batching must slash messages: {agg_msgs} vs {fine_msgs}"
        );
        // Bandwidth is NOT saved — bytes must be comparable.
        let fine_bytes = fine.stats.onnode_bytes + fine.stats.offnode_bytes;
        let agg_bytes = agg_ctx.stats.onnode_bytes + agg_ctx.stats.offnode_bytes;
        assert_eq!(fine_bytes, agg_bytes);
    }

    #[test]
    fn flush_all_empties_buffers() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::new(&dht, |a: &mut u32, b| *a += b);
        for k in 0..5u64 {
            agg.push(&mut ctx, k, 1);
        }
        assert_eq!(agg.pending(), 5);
        agg.flush_all(&mut ctx);
        assert_eq!(agg.pending(), 0);
        assert_eq!(dht.len(), 5);
    }

    #[test]
    fn finish_flushes_and_consumes() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::new(&dht, |a: &mut u32, b| *a += b);
        for k in 0..5u64 {
            agg.push(&mut ctx, k, 1);
        }
        agg.finish(&mut ctx);
        assert_eq!(dht.len(), 5);
    }

    #[test]
    fn abandon_discards_pending_updates() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::new(&dht, |a: &mut u32, b| *a += b);
        for k in 0..5u64 {
            agg.push(&mut ctx, k, 1);
        }
        agg.abandon(); // no drop assertion, and nothing lands
        assert_eq!(dht.len(), 0);
    }

    #[test]
    fn service_ops_still_counted_at_owner() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::with_batch(&dht, |a: &mut u32, b| *a += b, 16);
        for k in 0..64u64 {
            agg.push(&mut ctx, k, 1);
        }
        agg.flush_all(&mut ctx);
        let mut stats = vec![CommStats::new(); 4];
        dht.drain_service_into(&mut stats);
        let total: u64 = stats.iter().map(|s| s.service_ops).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn uncontended_sends_complete_without_parking() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::with_batch(&dht, |a: &mut u32, b| *a += b, 16);
        for k in 0..256u64 {
            agg.push(&mut ctx, k, 1);
        }
        let completion = agg.flush_async(&mut ctx);
        assert!(completion.shipped() > 0);
        assert!(
            completion.all_shipped(),
            "single-threaded sends never contend: {completion:?}"
        );
        agg.drain(); // no-op here, but part of the contract
        assert_eq!(agg.pending(), 0);
        assert_eq!(dht.len(), 256);
        drop(agg);
    }

    #[test]
    fn contended_sends_park_and_drain_converges() {
        // Hold one sub-shard lock while flushing: the batch for that
        // sub-shard parks; drain() applies it after release. Counters and
        // table state must match the uncontended run exactly.
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::with_batch(&dht, |a: &mut u32, b| *a += b, 1024);
        for k in 0..512u64 {
            agg.push(&mut ctx, k, 1);
        }
        let held = dht.lock_shard_of_key_for_test(&0);
        let completion = agg.flush_async(&mut ctx);
        assert!(completion.deferred() > 0, "held lock must park a batch");
        let parked = agg.pending();
        assert!(parked > 0);
        drop(held);
        agg.drain();
        assert_eq!(agg.pending(), 0);
        assert_eq!(dht.len(), 512, "parked entries land on drain");
        // Accounting happened at first attempt only: bytes equal the
        // uncontended equivalent.
        let mut ctx2 = RankCtx::new(0, topo);
        let dht2: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut agg2 = AggregatingStores::with_batch(&dht2, |a: &mut u32, b| *a += b, 1024);
        for k in 0..512u64 {
            agg2.push(&mut ctx2, k, 1);
        }
        agg2.finish(&mut ctx2);
        assert_eq!(
            ctx.stats.onnode_bytes + ctx.stats.offnode_bytes,
            ctx2.stats.onnode_bytes + ctx2.stats.offnode_bytes
        );
        assert_eq!(ctx.stats.total_accesses(), ctx2.stats.total_accesses());
        drop(agg);
    }

    #[test]
    fn abandon_discards_parked_batches_too() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        let mut agg = AggregatingStores::with_batch(&dht, |a: &mut u32, b| *a += b, 1024);
        for k in 0..64u64 {
            agg.push(&mut ctx, k, 1);
        }
        let held = dht.lock_shard_of_key_for_test(&0);
        agg.flush_async(&mut ctx);
        drop(held);
        let before = dht.len();
        agg.abandon(); // parked batches must not land afterwards
        assert_eq!(dht.len(), before);
    }
}

#[cfg(test)]
mod outbox_tests {
    use super::*;
    use crate::Topology;
    use std::collections::HashMap;

    #[test]
    fn outbox_batches_and_applies() {
        let topo = Topology::new(4, 2);
        let mut ctx = RankCtx::new(0, topo);
        let mut outbox: Outbox<u64> = Outbox::new(topo, 10);
        let mut landed: HashMap<usize, Vec<u64>> = HashMap::new();
        let mut apply = |dest: usize, items: Vec<u64>| {
            landed.entry(dest).or_default().extend(items);
        };
        for i in 0..95u64 {
            outbox.push(&mut ctx, (i % 4) as usize, i, &mut apply);
        }
        outbox.flush_all(&mut ctx, &mut apply);
        assert_eq!(outbox.pending(), 0);
        let total: usize = landed.values().map(Vec::len).sum();
        assert_eq!(total, 95);
        // 95 items over 4 dests in batches of 10 -> far fewer messages than
        // items; rank 0 messages are local ops.
        let msgs = ctx.stats.total_accesses();
        assert!(msgs <= 12, "messages {msgs}");
    }

    #[test]
    fn item_bytes_override_replaces_padded_default() {
        // A padded payload: (u64, u8) occupies 16 in-memory bytes but only
        // 9 packed wire bytes.
        let topo = Topology::new(2, 1);
        assert_eq!(std::mem::size_of::<(u64, u8)>(), 16);
        let run = |outbox: &mut Outbox<(u64, u8)>| {
            let mut ctx = RankCtx::new(0, topo);
            let mut apply = |_dest: usize, _items: Vec<(u64, u8)>| {};
            for i in 0..50u64 {
                outbox.push(&mut ctx, 1, (i, 0), &mut apply);
            }
            outbox.flush_all(&mut ctx, &mut apply);
            ctx.stats.onnode_bytes + ctx.stats.offnode_bytes
        };
        let mut padded: Outbox<(u64, u8)> = Outbox::new(topo, 8);
        let mut packed: Outbox<(u64, u8)> = Outbox::new(topo, 8).with_item_bytes(9);
        assert_eq!(run(&mut padded), 50 * 16);
        assert_eq!(run(&mut packed), 50 * 9);
    }

    #[test]
    fn outbox_abandon_discards_pending() {
        let topo = Topology::new(4, 2);
        let mut ctx = RankCtx::new(0, topo);
        let mut outbox: Outbox<u64> = Outbox::new(topo, 100);
        let mut apply = |_dest: usize, _items: Vec<u64>| panic!("nothing may ship");
        for i in 0..7u64 {
            outbox.push(&mut ctx, (i % 4) as usize, i, &mut apply);
        }
        assert_eq!(outbox.pending(), 7);
        outbox.abandon();
    }

    #[test]
    fn async_outbox_parks_on_err_and_drains() {
        let topo = Topology::new(2, 1);
        let mut ctx = RankCtx::new(0, topo);
        let mut outbox: Outbox<u64> = Outbox::new(topo, 4);
        // Destination 1 refuses every attempt (simulated contention);
        // destination 0 accepts and returns the drained carrier.
        let mut accepted: Vec<u64> = Vec::new();
        let mut try_apply = |dest: usize, mut items: Vec<u64>| {
            if dest == 1 {
                Err(items)
            } else {
                accepted.append(&mut items);
                Ok(items)
            }
        };
        for i in 0..16u64 {
            outbox.push_async(&mut ctx, (i % 2) as usize, i, &mut try_apply);
        }
        let completion = outbox.flush_async(&mut ctx, &mut try_apply);
        assert!(completion.shipped() >= 1);
        assert!(completion.deferred() >= 1);
        assert_eq!(accepted.len(), 8, "dest-0 items landed");
        assert_eq!(outbox.pending(), 8, "dest-1 items parked");
        let msgs_after_flush = ctx.stats.total_accesses();
        let mut drained: Vec<u64> = Vec::new();
        let mut apply = |_dest: usize, items: Vec<u64>| drained.extend(items);
        outbox.drain(&mut apply);
        assert_eq!(drained.len(), 8, "parked items delivered in drain");
        assert_eq!(outbox.pending(), 0);
        assert_eq!(
            ctx.stats.total_accesses(),
            msgs_after_flush,
            "drain never re-accounts messages"
        );
        drop(outbox);
    }

    #[test]
    fn finish_async_lands_everything() {
        let topo = Topology::new(2, 1);
        let mut ctx = RankCtx::new(0, topo);
        let mut outbox: Outbox<u64> = Outbox::new(topo, 64);
        let mut first_attempt = true;
        let mut landed: Vec<u64> = Vec::new();
        for i in 0..10u64 {
            outbox.push_async(&mut ctx, 1, i, &mut |_d, items| {
                let _ = &items;
                Err(items) // buffers smaller than batch: never called here
            });
        }
        let completion = outbox.finish_async(
            &mut ctx,
            &mut |_d, items| {
                // Refuse the first attempt to force the drain path.
                if std::mem::take(&mut first_attempt) {
                    Err(items)
                } else {
                    Ok(items)
                }
            },
            &mut |_d, items| landed.extend(items),
        );
        assert_eq!(completion.deferred(), 1);
        landed.sort_unstable();
        assert_eq!(landed, (0..10u64).collect::<Vec<_>>());
    }
}
