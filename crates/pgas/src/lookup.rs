//! Read-side communication avoidance: batched multi-gets and per-rank
//! software caching.
//!
//! [`crate::AggregatingStores`] batches the *store* path; the lookup path —
//! de Bruijn traversal probes, merAligner seed lookups, scaffolding bucket
//! reads — is just as irregular and, un-batched, pays one message of
//! latency per key. This module provides the two levers the paper (§4.4)
//! and its follow-ups use to close that gap:
//!
//! * [`LookupBatch`] — an [`Outbox`](crate::Outbox)-shaped buffer of key
//!   requests per destination rank. Each full buffer ships as **one**
//!   message (answered by [`DistHashMap::fetch_batch`]) and results are
//!   delivered through a per-key callback. Per-message latency and
//!   per-key shard-lock traffic are divided by the batch factor; bytes are
//!   accounted in full — batching never saves bandwidth.
//! * [`SoftwareCache`] — a bounded per-rank read-only cache (CLOCK
//!   replacement) for tables that are **immutable after build** (seed
//!   index, contig lookup, oracle partition map). A hit avoids the remote
//!   access entirely — latency *and* bandwidth — at the price of a local
//!   probe ([`CostModel::t_cache`](crate::CostModel::t_cache)).
//!
//! Cache coherence contract: the cache holds snapshots and is never
//! invalidated, so it may only front tables that no rank mutates while the
//! cache is live. Callers that read a mutable field (e.g. a traversal
//! `visited` flag) must bypass the cache and use [`DistHashMap::get`]
//! directly. The contract is also **per table**: a cache primed through one
//! map must never be re-pointed at another — the second map may hold
//! different values for the same keys *and*, now that tables can carry
//! per-partitioner locality hashes ([`crate::Partitioner`]), may not even
//! agree on who owns a key, so stale hits would silently bypass the second
//! table entirely. [`SoftwareCache::get_through`] binds the cache to the
//! first table's [`DistHashMap::table_id`] and `debug_assert`s every later
//! call against it. Hits and misses are tallied into
//! [`CommStats::cache_hits`](crate::CommStats::cache_hits) /
//! [`CommStats::cache_misses`](crate::CommStats::cache_misses) so cache
//! effectiveness is visible in `--report-json` (schema v2).

use crate::arena::BufferPool;
use crate::comp::Completion;
use crate::dht::DistHashMap;
use crate::team::RankCtx;
use std::collections::HashMap;
use std::hash::Hash;

/// A per-destination buffer set for batched one-sided reads from a
/// [`DistHashMap`] — the read-side mirror of [`crate::AggregatingStores`].
///
/// Each queued key carries a caller-supplied *tag* (e.g. a read index or
/// sequence position) handed back to the delivery callback alongside the
/// looked-up value, so streaming call sites can route results without
/// holding their own key→context map. One `LookupBatch` is created per
/// acting rank per phase; it is not shared between ranks.
///
/// Unlike the write-side aggregator, un-flushed lookups are not merely
/// *lost* — the caller never observes its results — so the batch must be
/// consumed with [`finish`](Self::finish) (which hard-asserts all buffers
/// drained) or explicitly [`flush_all`](Self::flush_all)ed; a
/// `debug_assert` in `Drop` catches batches abandoned at phase end.
///
/// Ships are non-blocking ([`crate::comp`]): a full buffer is attempted
/// with [`DistHashMap::try_fetch_batch`] and **parked** when any needed
/// owner sub-shard is contended; parked requests resolve at the next
/// [`drain`](Self::drain) / [`flush_all`](Self::flush_all) /
/// [`finish`](Self::finish). Delivery order across batches therefore
/// depends on contention — callers must route results by tag (as every
/// call site in this repo does), never by arrival order. Values are
/// unaffected: the coherence contract already forbids mutating a table
/// with reads in flight, and
/// [`DistHashMap::version_stamp`] makes that checkable.
pub struct LookupBatch<'a, K, V, T> {
    dht: &'a DistHashMap<K, V>,
    buffers: Vec<Vec<(K, T)>>,
    deferred: Vec<(usize, Vec<(K, T)>)>,
    pool: BufferPool<(K, T)>,
    completion: Completion,
    batch: usize,
}

impl<'a, K, V, T> LookupBatch<'a, K, V, T>
where
    K: Hash + Eq + Send,
    V: Clone + Send,
{
    /// New buffer set reading from `dht` with the default batch size
    /// ([`crate::agg::DEFAULT_BATCH`]).
    pub fn new(dht: &'a DistHashMap<K, V>) -> Self {
        Self::with_batch(dht, crate::agg::DEFAULT_BATCH)
    }

    /// As [`new`](Self::new) with an explicit batch size (ablation hook).
    pub fn with_batch(dht: &'a DistHashMap<K, V>, batch: usize) -> Self {
        assert!(batch >= 1);
        let ranks = dht.topo().ranks();
        LookupBatch {
            dht,
            buffers: (0..ranks).map(|_| Vec::new()).collect(),
            deferred: Vec::new(),
            pool: BufferPool::default_bound(),
            completion: Completion::new(),
            batch,
        }
    }

    /// Queue a lookup of `key`, remembering `tag`; if the owner's buffer is
    /// full it ships as one message and `deliver` is called once per
    /// resolved key (in queue order) with the tag and the value clone.
    pub fn push<F>(&mut self, ctx: &mut RankCtx, key: K, tag: T, deliver: &mut F)
    where
        F: FnMut(&mut RankCtx, T, Option<V>),
    {
        let dest = self.dht.owner(&key);
        self.buffers[dest].push((key, tag));
        if self.buffers[dest].len() >= self.batch {
            self.ship(ctx, dest, deliver);
        }
    }

    /// Ship one destination's buffer as a single multi-get message,
    /// attempted through the table's non-blocking read path.
    fn ship<F>(&mut self, ctx: &mut RankCtx, dest: usize, deliver: &mut F)
    where
        F: FnMut(&mut RankCtx, T, Option<V>),
    {
        if self.buffers[dest].is_empty() {
            return;
        }
        let fresh = self.pool.take();
        let mut entries = std::mem::replace(&mut self.buffers[dest], fresh);
        // One message event carrying the whole request batch; bytes in
        // full, exactly like the write-side Outbox. Charged at first
        // attempt; a parked batch is not re-charged when it drains.
        let topo = *self.dht.topo();
        let bytes = entries.len() as u64 * self.dht.entry_bytes();
        ctx.comm(&topo, dest, bytes);
        crate::metrics::observe("pgas/lookup/wire_bytes", bytes);
        ctx.stats.lookup_batches += 1;
        let keys: Vec<&K> = entries.iter().map(|(k, _)| k).collect();
        match self.dht.try_fetch_batch(dest, &keys) {
            Some(values) => {
                self.completion.record_shipped();
                for ((_, tag), value) in entries.drain(..).zip(values) {
                    deliver(ctx, tag, value);
                }
                self.pool.put(entries);
            }
            None => {
                self.completion.record_deferred();
                self.deferred.push((dest, entries));
            }
        }
    }

    /// Resolve every parked request with the blocking read path (no
    /// re-accounting) and deliver the results. Runs implicitly from
    /// [`flush_all`](Self::flush_all) and [`finish`](Self::finish); call it
    /// directly at intra-phase sync points when using
    /// [`flush_async`](Self::flush_async).
    pub fn drain<F>(&mut self, ctx: &mut RankCtx, deliver: &mut F)
    where
        F: FnMut(&mut RankCtx, T, Option<V>),
    {
        for (dest, mut entries) in std::mem::take(&mut self.deferred) {
            let keys: Vec<&K> = entries.iter().map(|(k, _)| k).collect();
            let values = self.dht.fetch_batch(dest, &keys);
            for ((_, tag), value) in entries.drain(..).zip(values) {
                deliver(ctx, tag, value);
            }
            self.pool.put(entries);
        }
    }

    /// Ship every non-empty buffer and drain parked requests — on return
    /// every queued lookup has been delivered (call before the phase
    /// barrier).
    pub fn flush_all<F>(&mut self, ctx: &mut RankCtx, deliver: &mut F)
    where
        F: FnMut(&mut RankCtx, T, Option<V>),
    {
        for dest in 0..self.buffers.len() {
            self.ship(ctx, dest, deliver);
        }
        self.drain(ctx, deliver);
    }

    /// Non-blocking flush: attempt every non-empty buffer, parking batches
    /// behind contended owners instead of waiting, and return the
    /// cumulative [`Completion`]. The caller owns the obligation to
    /// [`drain`](Self::drain) (or `flush_all`/`finish`) before the phase
    /// barrier — un-drained requests are unanswered, and both
    /// [`finish`](Self::finish) and the `Drop` assertion enforce it.
    pub fn flush_async<F>(&mut self, ctx: &mut RankCtx, deliver: &mut F) -> Completion
    where
        F: FnMut(&mut RankCtx, T, Option<V>),
    {
        for dest in 0..self.buffers.len() {
            self.ship(ctx, dest, deliver);
        }
        self.completion
    }

    /// Consume the batch: flush every buffer, then hard-assert nothing is
    /// left pending. Prefer this over a bare [`flush_all`](Self::flush_all)
    /// at the end of a phase — it cannot be silently skipped on an early
    /// return path.
    pub fn finish<F>(mut self, ctx: &mut RankCtx, deliver: &mut F)
    where
        F: FnMut(&mut RankCtx, T, Option<V>),
    {
        self.flush_all(ctx, deliver);
        assert_eq!(
            self.pending(),
            0,
            "LookupBatch::finish left requests pending"
        );
    }
}

impl<K, V, T> LookupBatch<'_, K, V, T> {
    /// Requests currently buffered or parked awaiting a drain.
    pub fn pending(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum::<usize>()
            + self.deferred.iter().map(|(_, b)| b.len()).sum::<usize>()
    }

    /// Cumulative completion summary of every ship attempt so far.
    pub fn completion(&self) -> Completion {
        self.completion
    }

    /// Discard every queued and parked request without resolving it — the
    /// abort-safe teardown for a stage that failed mid-flight (the stage
    /// re-executes from scratch, so the unanswered lookups are moot).
    pub fn abandon(mut self) {
        for buf in &mut self.buffers {
            buf.clear();
        }
        self.deferred.clear();
    }
}

impl<K, V, T> Drop for LookupBatch<'_, K, V, T> {
    fn drop(&mut self) {
        // An injected rank failure unwinds through pending requests by
        // design; asserting then would turn an orderly stage abort into a
        // double-panic process abort.
        if std::thread::panicking() {
            return;
        }
        debug_assert_eq!(
            self.pending(),
            0,
            "LookupBatch dropped with unresolved requests; call finish(ctx, ..)"
        );
    }
}

/// A bounded per-rank read-only cache with CLOCK (second-chance)
/// replacement.
///
/// Fronting a [`DistHashMap`] whose contents are immutable for the
/// lifetime of the cache (see the coherence contract in the
/// [module docs](crate::lookup)), a hit returns a local clone and records
/// [`CommStats::cache_hits`](crate::CommStats::cache_hits) — no message,
/// no bytes. A miss records
/// [`CommStats::cache_misses`](crate::CommStats::cache_misses); the
/// fall-through lookup (if any) is accounted by whoever performs it.
///
/// CLOCK is chosen over LRU for the same reason production caches choose
/// it: eviction is O(1) amortized with no list splicing, and one bit of
/// recency per slot is enough when the working set is streaming (seed
/// lookups from overlapping reads, contig replicas under high coverage).
///
/// The value type is arbitrary: call sites that want *negative* caching
/// (remembering that a key is absent) simply use `V = Option<..>` and
/// [`insert`](Self::insert) the `None`s too. The
/// [`get_through`](Self::get_through) convenience does **positive caching
/// only** — absent keys are re-fetched on every probe, the right trade
/// when misses are dominated by unique erroneous k-mers that would only
/// pollute the cache.
pub struct SoftwareCache<K, V> {
    /// `(key, value, referenced)` slots; the clock hand sweeps these.
    slots: Vec<(K, V, bool)>,
    /// Key → slot index.
    index: HashMap<K, usize>,
    hand: usize,
    capacity: usize,
    /// [`DistHashMap::table_id`] of the table this cache was first read
    /// through, if any — reuse against a different table (different values
    /// for the same keys, possibly a different partitioner deciding
    /// ownership) is a coherence violation, caught in debug builds.
    bound: Option<u64>,
}

impl<K, V> SoftwareCache<K, V>
where
    K: Hash + Eq + Clone,
    V: Clone,
{
    /// An empty cache holding at most `capacity` entries (must be ≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "SoftwareCache capacity must be >= 1");
        SoftwareCache {
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            index: HashMap::new(),
            hand: 0,
            capacity,
            bound: None,
        }
    }

    /// Probe the cache, tallying a hit or miss into `ctx.stats`. A hit
    /// sets the slot's reference bit and returns a clone.
    pub fn get(&mut self, ctx: &mut RankCtx, key: &K) -> Option<V> {
        match self.index.get(key) {
            Some(&slot) => {
                ctx.stats.cache_hits += 1;
                self.slots[slot].2 = true;
                Some(self.slots[slot].1.clone())
            }
            None => {
                ctx.stats.cache_misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting via the clock hand when at
    /// capacity. Insertion is a local operation and is not accounted —
    /// the fetch that produced the value already was.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&slot) = self.index.get(&key) {
            self.slots[slot] = (key, value, true);
            return;
        }
        if self.slots.len() < self.capacity {
            self.index.insert(key.clone(), self.slots.len());
            self.slots.push((key, value, false));
            return;
        }
        // Sweep: clear reference bits until an unreferenced victim appears.
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.2 {
                slot.2 = false;
                self.hand = (self.hand + 1) % self.capacity;
            } else {
                break;
            }
        }
        let victim = self.hand;
        self.index.remove(&self.slots[victim].0);
        self.index.insert(key.clone(), victim);
        self.slots[victim] = (key, value, false);
        self.hand = (victim + 1) % self.capacity;
    }

    /// Read-through probe: a hit is served locally; a miss falls through
    /// to [`DistHashMap::get`] (which accounts the remote access as usual)
    /// and caches `Some` results. Absent keys are **not** negatively
    /// cached — see the type-level docs.
    pub fn get_through(&mut self, ctx: &mut RankCtx, dht: &DistHashMap<K, V>, key: &K) -> Option<V>
    where
        K: Send,
        V: Send,
    {
        // Bind to the first table read through and refuse any other: a
        // cache holds that table's snapshots, and another table — even one
        // with identical contents — may partition keys differently, so a
        // stale hit would silently stand in for the wrong table's answer.
        match self.bound {
            None => self.bound = Some(dht.table_id()),
            Some(id) => debug_assert_eq!(
                id,
                dht.table_id(),
                "SoftwareCache reused across distinct tables; one cache per table"
            ),
        }
        if let Some(v) = self.get(ctx, key) {
            return Some(v);
        }
        let fetched = dht.get(ctx, key);
        if let Some(v) = &fetched {
            self.insert(key.clone(), v.clone());
        }
        fetched
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommStats, Topology};

    fn ctx(rank: usize, topo: Topology) -> RankCtx {
        RankCtx::new(rank, topo)
    }

    #[test]
    fn lookup_batch_matches_sequential_gets_with_fewer_messages() {
        let topo = Topology::new(8, 4);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut setup = ctx(0, topo);
        for k in 0..500u64 {
            dht.insert(&mut setup, k, (k * 3) as u32);
        }

        // Fine-grained baseline (also probes absent keys).
        let mut fine = ctx(0, topo);
        let keys: Vec<u64> = (0..600).collect();
        let fine_vals: Vec<Option<u32>> = keys.iter().map(|k| dht.get(&mut fine, k)).collect();

        // Batched.
        let mut bat = ctx(0, topo);
        let mut got: Vec<(u64, Option<u32>)> = Vec::new();
        let mut deliver = |_: &mut RankCtx, tag: u64, v: Option<u32>| got.push((tag, v));
        let mut lb = LookupBatch::with_batch(&dht, 64);
        for &k in &keys {
            lb.push(&mut bat, k, k, &mut deliver);
        }
        lb.finish(&mut bat, &mut deliver);

        got.sort_by_key(|(tag, _)| *tag);
        let batch_vals: Vec<Option<u32>> = got.into_iter().map(|(_, v)| v).collect();
        assert_eq!(fine_vals, batch_vals);
        assert!(bat.stats.remote_msgs() * 16 < fine.stats.remote_msgs());
        // Bandwidth is NOT saved.
        assert_eq!(
            fine.stats.onnode_bytes + fine.stats.offnode_bytes,
            bat.stats.onnode_bytes + bat.stats.offnode_bytes
        );
        assert!(bat.stats.lookup_batches > 0);
        // Reads never count service work at the owner.
        let mut svc = vec![CommStats::new(); 8];
        dht.drain_service_into(&mut svc);
        let total: u64 = svc.iter().map(|s| s.service_ops).sum();
        assert_eq!(total, 500, "only the setup inserts service the shards");
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let topo = Topology::new(2, 2);
        let mut c = ctx(0, topo);
        let mut cache: SoftwareCache<u64, u32> = SoftwareCache::new(4);
        assert_eq!(cache.get(&mut c, &1), None);
        cache.insert(1, 10);
        assert_eq!(cache.get(&mut c, &1), Some(10));
        assert_eq!(cache.get(&mut c, &1), Some(10));
        assert_eq!(c.stats.cache_hits, 2);
        assert_eq!(c.stats.cache_misses, 1);
    }

    #[test]
    fn clock_evicts_unreferenced_first() {
        let topo = Topology::new(1, 1);
        let mut c = ctx(0, topo);
        let mut cache: SoftwareCache<u64, u32> = SoftwareCache::new(3);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.insert(3, 3);
        // Touch 1 and 3 so their reference bits are set; 2 is the victim.
        cache.get(&mut c, &1);
        cache.get(&mut c, &3);
        cache.insert(4, 4);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&mut c, &2), None, "unreferenced entry evicted");
        assert_eq!(cache.get(&mut c, &1), Some(1));
        assert_eq!(cache.get(&mut c, &3), Some(3));
        assert_eq!(cache.get(&mut c, &4), Some(4));
    }

    #[test]
    fn clock_hand_eventually_evicts_referenced_entries() {
        let topo = Topology::new(1, 1);
        let mut c = ctx(0, topo);
        let mut cache: SoftwareCache<u64, u32> = SoftwareCache::new(2);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.get(&mut c, &1);
        cache.get(&mut c, &2);
        // All referenced: the sweep must clear bits and still find a victim.
        cache.insert(3, 3);
        assert_eq!(cache.len(), 2);
        assert!(cache.capacity() == 2);
        let survivors = [1u64, 2, 3]
            .iter()
            .filter(|k| cache.get(&mut c, k).is_some())
            .count();
        assert_eq!(survivors, 2);
        assert_eq!(cache.get(&mut c, &3), Some(3), "new entry resident");
    }

    #[test]
    fn get_through_saves_messages_on_repeats() {
        let topo = Topology::new(8, 4);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut setup = ctx(0, topo);
        for k in 0..64u64 {
            dht.insert(&mut setup, k, k as u32);
        }
        let mut c = ctx(0, topo);
        let mut cache: SoftwareCache<u64, u32> = SoftwareCache::new(128);
        for _round in 0..10 {
            for k in 0..64u64 {
                assert_eq!(cache.get_through(&mut c, &dht, &k), Some(k as u32));
            }
        }
        assert_eq!(c.stats.cache_hits, 64 * 9);
        assert_eq!(c.stats.cache_misses, 64);
        // Only the first round touched owners.
        assert_eq!(c.stats.total_accesses(), 64);
        // Absent keys are never cached: every probe falls through.
        let before = c.stats.total_accesses();
        for _ in 0..5 {
            assert_eq!(cache.get_through(&mut c, &dht, &9999), None);
        }
        assert_eq!(c.stats.total_accesses(), before + 5);
    }

    #[test]
    #[should_panic(expected = "reused across distinct tables")]
    #[cfg(debug_assertions)]
    fn cache_reuse_across_tables_panics_in_debug() {
        let topo = Topology::new(4, 2);
        let a: DistHashMap<u64, u32> = DistHashMap::new(topo);
        // Same key type and contents, but a different table — which may
        // also partition differently (e.g. a minimizer locality hash).
        let b: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        a.insert(&mut c, 1, 10);
        b.insert(&mut c, 1, 99);
        let mut cache: SoftwareCache<u64, u32> = SoftwareCache::new(8);
        assert_eq!(cache.get_through(&mut c, &a, &1), Some(10));
        let _ = cache.get_through(&mut c, &b, &1);
    }

    #[test]
    fn contended_lookups_park_and_drain_delivers_same_results() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut setup = ctx(0, topo);
        for k in 0..200u64 {
            dht.insert(&mut setup, k, k as u32 + 1);
        }
        let mut c = ctx(0, topo);
        let mut got: Vec<(u64, Option<u32>)> = Vec::new();
        let mut deliver = |_: &mut RankCtx, tag: u64, v: Option<u32>| got.push((tag, v));
        let mut lb = LookupBatch::with_batch(&dht, 1024);
        for k in 0..200u64 {
            lb.push(&mut c, k, k, &mut deliver);
        }
        let held = dht.lock_shard_of_key_for_test(&0);
        let completion = lb.flush_async(&mut c, &mut deliver);
        assert!(completion.deferred() > 0, "held sub-shard must park");
        assert!(lb.pending() > 0, "parked requests still pending");
        let msgs_after_flush = c.stats.total_accesses();
        let batches_after_flush = c.stats.lookup_batches;
        drop(held);
        lb.finish(&mut c, &mut deliver);
        assert_eq!(
            c.stats.total_accesses(),
            msgs_after_flush,
            "drain never re-accounts messages"
        );
        assert_eq!(c.stats.lookup_batches, batches_after_flush);
        got.sort_by_key(|(tag, _)| *tag);
        assert_eq!(got.len(), 200);
        for (tag, v) in got {
            assert_eq!(v, Some(tag as u32 + 1));
        }
    }

    #[test]
    fn abandon_disarms_the_drop_assertion() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        let mut sink = |_: &mut RankCtx, _t: u64, _v: Option<u32>| panic!("nothing may resolve");
        let mut lb = LookupBatch::with_batch(&dht, 100);
        lb.push(&mut c, 7, 7, &mut sink);
        assert_eq!(lb.pending(), 1);
        lb.abandon();
    }

    #[test]
    #[should_panic(expected = "unresolved requests")]
    #[cfg(debug_assertions)]
    fn dropping_pending_lookups_panics_in_debug() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        let mut sink = |_: &mut RankCtx, _t: u64, _v: Option<u32>| {};
        let mut lb = LookupBatch::new(&dht);
        lb.push(&mut c, 7, 7, &mut sink);
        drop(lb);
    }
}
