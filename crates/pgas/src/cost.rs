//! The machine cost model: per-rank counters → modeled seconds.
//!
//! A finished phase yields one [`CommStats`] per virtual rank. In a bulk-
//! synchronous SPMD phase the wall time is set by the slowest rank, so the
//! modeled phase time is the **maximum over ranks** of each rank's priced
//! work, plus barrier overhead, plus a shared-filesystem I/O term whose
//! aggregate bandwidth saturates (on Edison the Lustre scratch system is
//! saturated from ~960 cores on; the paper leans on this to explain the
//! flat I/O segments of Figs. 6–8 and Table 3).
//!
//! Constants are calibrated to Edison-era magnitudes (§5 of the paper):
//! ~2.4 GHz cores, ~1 µs intra-node and ~3 µs inter-node one-sided access
//! latency on Aries, 72 GB/s aggregate Lustre bandwidth. Absolute seconds
//! are not expected to match the paper (our genomes are megabase-scale);
//! ratios and curve shapes are what the experiments check.

use crate::json::Value;
use crate::stats::CommStats;
use crate::topology::Topology;

/// Schema version of the fitted-constants JSON written by [`CostModel::to_json`].
pub const COST_MODEL_SCHEMA_VERSION: u64 = 1;

/// The constants' names in struct-declaration order — the canonical key
/// order of the serialized form, and the accessor table `from_json` checks
/// against.
const FIELDS: [&str; 14] = [
    "t_compute",
    "t_local",
    "t_onnode",
    "t_offnode",
    "bw_onnode",
    "bw_offnode",
    "t_service",
    "t_cache",
    "t_steal",
    "t_backoff",
    "t_barrier_base",
    "io_bw_per_rank",
    "io_bw_aggregate",
    "io_latency",
];

/// Modeled execution time of a phase, broken into components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ModeledTime {
    /// Critical-path compute + communication seconds (max over ranks).
    pub critical_path: f64,
    /// Barrier/synchronization seconds.
    pub sync: f64,
    /// Shared-I/O seconds.
    pub io: f64,
    /// Serial (non-parallelized) seconds added by the stage, if any.
    pub serial: f64,
}

impl ModeledTime {
    /// Total modeled seconds.
    pub fn total(&self) -> f64 {
        self.critical_path + self.sync + self.io + self.serial
    }

    /// Component-wise sum.
    pub fn add(&mut self, o: &ModeledTime) {
        self.critical_path += o.critical_path;
        self.sync += o.sync;
        self.io += o.io;
        self.serial += o.serial;
    }
}

/// One rank's priced non-I/O seconds, split by mechanism: time spent
/// doing work, time spent paying per-message latency, and time spent
/// moving payload bytes. `compute + latency + bandwidth` is the rank's
/// contribution to the phase critical path.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankBreakdown {
    /// Computation + local accesses + service work, seconds.
    pub compute: f64,
    /// Per-message latency (on-node + off-node), seconds.
    pub latency: f64,
    /// Payload bytes over on-node and network bandwidth, seconds.
    pub bandwidth: f64,
}

impl RankBreakdown {
    /// Total priced seconds for the rank.
    pub fn total(&self) -> f64 {
        self.compute + self.latency + self.bandwidth
    }
}

/// Prices for the events counted in [`CommStats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Seconds per pure computation step.
    pub t_compute: f64,
    /// Seconds per local hash-table access.
    pub t_local: f64,
    /// Latency of an on-node remote access (shared memory, cross-process).
    pub t_onnode: f64,
    /// Latency of an off-node one-sided access (network).
    pub t_offnode: f64,
    /// Per-rank on-node bandwidth, bytes/second.
    pub bw_onnode: f64,
    /// Per-rank off-node (injection) bandwidth, bytes/second.
    pub bw_offnode: f64,
    /// Seconds of service work at the owner per remotely-landed update.
    pub t_service: f64,
    /// Seconds per [`SoftwareCache`](crate::SoftwareCache) probe (hit *or*
    /// miss): a local hash lookup with no shard lock, cheaper than
    /// `t_local`. Batched lookups need no price of their own — a shipped
    /// batch is one message (priced by `t_onnode`/`t_offnode`) carrying
    /// full bytes (priced by the bandwidth terms), so the saving falls out
    /// of the existing terms.
    pub t_cache: f64,
    /// Seconds per dynamic-scheduling chunk acquisition (see
    /// [`CommStats::steal_ops`]): one remote atomic fetch-add on the shared
    /// work counter, typically living on one rank — dearer than an on-node
    /// access, cheaper than a full off-node round trip since the payload is
    /// a single word and the operation needs no service work at the owner.
    pub t_steal: f64,
    /// Seconds per exponential-backoff unit accumulated while waiting to
    /// re-deliver a transiently-faulted message (see
    /// [`CommStats::backoff_units`]): attempt `n` waits
    /// `2^min(n-1, cap) * t_backoff` seconds.
    pub t_backoff: f64,
    /// Barrier cost: `t_barrier_base * log2(ranks)` per barrier.
    pub t_barrier_base: f64,
    /// Per-rank storage bandwidth, bytes/second (before saturation).
    pub io_bw_per_rank: f64,
    /// Aggregate storage bandwidth cap, bytes/second.
    pub io_bw_aggregate: f64,
    /// Fixed per-phase I/O overhead (metadata, open/close), seconds.
    pub io_latency: f64,
}

impl CostModel {
    /// Edison-like calibration (see module docs).
    pub fn edison() -> Self {
        CostModel {
            t_compute: 1.0e-9,
            t_local: 1.0e-7,
            t_onnode: 1.0e-6,
            t_offnode: 3.0e-6,
            bw_onnode: 4.0e9,
            bw_offnode: 1.0e9,
            t_service: 1.5e-7,
            t_cache: 2.0e-8,
            t_steal: 2.5e-6,
            t_backoff: 1.0e-4,
            t_barrier_base: 5.0e-6,
            io_bw_per_rank: 8.0e7,
            io_bw_aggregate: 7.2e10,
            io_latency: 1.0e-3,
        }
    }

    /// A "serial machine" calibration used for the single-node baseline
    /// comparators (§5.6): no network, one rank, local memory prices only.
    pub fn single_node() -> Self {
        CostModel {
            t_offnode: 1.0e-6, // everything is at worst cross-socket
            t_steal: 1.0e-6,   // the work counter is in shared memory
            io_bw_aggregate: 5.0e8,
            io_bw_per_rank: 5.0e8,
            ..Self::edison()
        }
    }

    /// Price one rank's non-I/O work, split by mechanism.
    pub fn rank_breakdown(&self, s: &CommStats) -> RankBreakdown {
        RankBreakdown {
            compute: s.compute_ops as f64 * self.t_compute
                + s.local_ops as f64 * self.t_local
                + s.service_ops as f64 * self.t_service
                + (s.cache_hits + s.cache_misses) as f64 * self.t_cache,
            latency: s.onnode_msgs as f64 * self.t_onnode
                + s.offnode_msgs as f64 * self.t_offnode
                + s.steal_ops as f64 * self.t_steal
                + s.backoff_units as f64 * self.t_backoff,
            bandwidth: s.onnode_bytes as f64 / self.bw_onnode
                + s.offnode_bytes as f64 / self.bw_offnode,
        }
    }

    /// The [`RankBreakdown`] of the critical (slowest-priced) rank — the
    /// rank whose work sets the phase's critical path. Zero for no ranks.
    pub fn critical_rank_breakdown(&self, stats: &[CommStats]) -> RankBreakdown {
        stats
            .iter()
            .map(|s| self.rank_breakdown(s))
            .max_by(|a, b| a.total().total_cmp(&b.total()))
            .unwrap_or_default()
    }

    /// Price one rank's non-I/O work.
    fn rank_seconds(&self, s: &CommStats) -> f64 {
        self.rank_breakdown(s).total()
    }

    /// Shared-filesystem time for the phase: total bytes moved divided by
    /// the effective bandwidth, which grows with ranks until the aggregate
    /// cap saturates it.
    pub fn io_seconds(&self, topo: &Topology, stats: &[CommStats]) -> f64 {
        let bytes: u64 = stats
            .iter()
            .map(|s| s.io_read_bytes + s.io_write_bytes)
            .sum();
        if bytes == 0 {
            return 0.0;
        }
        let effective_bw = (self.io_bw_per_rank * topo.ranks() as f64).min(self.io_bw_aggregate);
        self.io_latency + bytes as f64 / effective_bw
    }

    /// The constants as an array in [`FIELDS`] order.
    fn field_values(&self) -> [f64; 14] {
        [
            self.t_compute,
            self.t_local,
            self.t_onnode,
            self.t_offnode,
            self.bw_onnode,
            self.bw_offnode,
            self.t_service,
            self.t_cache,
            self.t_steal,
            self.t_backoff,
            self.t_barrier_base,
            self.io_bw_per_rank,
            self.io_bw_aggregate,
            self.io_latency,
        ]
    }

    /// Serialize the constants as a JSON object with
    /// `cost_model_schema_version` followed by the fourteen constants in
    /// struct-declaration order. The writer emits shortest-round-trip
    /// float literals, so `to_json` → [`from_json`](Self::from_json) →
    /// `to_json` is byte-identical.
    pub fn to_json(&self) -> String {
        let mut doc = Value::obj();
        doc.set("cost_model_schema_version", COST_MODEL_SCHEMA_VERSION);
        for (name, value) in FIELDS.iter().zip(self.field_values()) {
            doc.set(*name, value);
        }
        doc.to_json()
    }

    /// Parse a constants document written by [`to_json`](Self::to_json).
    /// Rejects wrong schema versions, missing constants, and non-numeric
    /// or non-finite values; unknown extra keys are rejected too so a
    /// typo'd constant name cannot silently fall back to a default.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Value::parse(text).map_err(|e| format!("cost model JSON: {e}"))?;
        let Value::Obj(pairs) = &doc else {
            return Err("cost model JSON: not an object".to_string());
        };
        match doc.get("cost_model_schema_version").and_then(Value::as_u64) {
            Some(COST_MODEL_SCHEMA_VERSION) => {}
            Some(v) => {
                return Err(format!(
                    "cost model JSON: unsupported schema version {v} (expected {COST_MODEL_SCHEMA_VERSION})"
                ))
            }
            None => return Err("cost model JSON: missing cost_model_schema_version".to_string()),
        }
        for (key, _) in pairs {
            if key != "cost_model_schema_version" && !FIELDS.contains(&key.as_str()) {
                return Err(format!("cost model JSON: unknown key {key:?}"));
            }
        }
        let mut values = [0.0f64; 14];
        for (name, slot) in FIELDS.iter().zip(values.iter_mut()) {
            let v = doc
                .get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("cost model JSON: missing or non-numeric {name:?}"))?;
            if !v.is_finite() {
                return Err(format!("cost model JSON: non-finite {name:?}"));
            }
            *slot = v;
        }
        let [t_compute, t_local, t_onnode, t_offnode, bw_onnode, bw_offnode, t_service, t_cache, t_steal, t_backoff, t_barrier_base, io_bw_per_rank, io_bw_aggregate, io_latency] =
            values;
        Ok(CostModel {
            t_compute,
            t_local,
            t_onnode,
            t_offnode,
            bw_onnode,
            bw_offnode,
            t_service,
            t_cache,
            t_steal,
            t_backoff,
            t_barrier_base,
            io_bw_per_rank,
            io_bw_aggregate,
            io_latency,
        })
    }

    /// Model a whole phase. `stats` must have one entry per rank.
    pub fn phase_time(&self, topo: &Topology, stats: &[CommStats]) -> ModeledTime {
        assert_eq!(stats.len(), topo.ranks(), "one CommStats per rank");
        let critical_path = stats
            .iter()
            .map(|s| self.rank_seconds(s))
            .fold(0.0, f64::max);
        let max_barriers = stats.iter().map(|s| s.barriers).max().unwrap_or(0);
        let sync =
            max_barriers as f64 * self.t_barrier_base * (topo.ranks() as f64).log2().max(1.0);
        ModeledTime {
            critical_path,
            sync,
            io: self.io_seconds(topo, stats),
            serial: 0.0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::edison()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(p: usize) -> Topology {
        Topology::new(p, 24)
    }

    #[test]
    fn critical_path_is_max_over_ranks() {
        let model = CostModel::edison();
        let mut fast = CommStats::new();
        fast.compute(1_000);
        let mut slow = CommStats::new();
        slow.compute(1_000_000);
        let t = model.phase_time(&topo(2), &[fast, slow]);
        let solo = model.phase_time(&topo(1), &[slow]);
        assert!((t.critical_path - solo.critical_path).abs() < 1e-12);
    }

    #[test]
    fn offnode_costs_more_than_onnode_than_local() {
        let model = CostModel::edison();
        assert!(model.t_offnode > model.t_onnode);
        assert!(model.t_onnode > model.t_local);
    }

    #[test]
    fn cache_probe_is_cheaper_than_any_access() {
        let model = CostModel::edison();
        assert!(model.t_cache < model.t_local);
        // A workload served from cache must price below the same workload
        // hitting remote owners.
        let cached = CommStats {
            cache_hits: 10_000,
            ..CommStats::default()
        };
        let remote = CommStats {
            offnode_msgs: 10_000,
            offnode_bytes: 160_000,
            ..CommStats::default()
        };
        assert!(
            model.rank_breakdown(&cached).total() * 10.0 < model.rank_breakdown(&remote).total()
        );
    }

    #[test]
    fn backoff_units_price_into_latency() {
        let model = CostModel::edison();
        let clean = CommStats {
            offnode_msgs: 100,
            ..CommStats::default()
        };
        let faulted = CommStats {
            offnode_msgs: 100,
            backoff_units: 7, // e.g. retries at attempts 1..=3: 1+2+4
            ..CommStats::default()
        };
        let delta = model.rank_breakdown(&faulted).latency - model.rank_breakdown(&clean).latency;
        assert!((delta - 7.0 * model.t_backoff).abs() < 1e-12);
    }

    #[test]
    fn steal_ops_price_into_latency_between_onnode_and_offnode() {
        let model = CostModel::edison();
        assert!(model.t_onnode < model.t_steal && model.t_steal < model.t_offnode);
        let clean = CommStats::new();
        let stealing = CommStats {
            steal_ops: 1_000,
            ..CommStats::default()
        };
        let delta = model.rank_breakdown(&stealing).latency - model.rank_breakdown(&clean).latency;
        assert!((delta - 1_000.0 * model.t_steal).abs() < 1e-12);
    }

    #[test]
    fn io_saturates_with_ranks() {
        let model = CostModel::edison();
        // Enough ranks that per-rank bandwidth would exceed the aggregate cap.
        let saturation_ranks = (model.io_bw_aggregate / model.io_bw_per_rank).ceil() as usize;
        let bytes_per_rank = 1 << 20;

        let time_at = |p: usize| {
            let stats: Vec<CommStats> = (0..p)
                .map(|_| CommStats {
                    io_read_bytes: bytes_per_rank,
                    ..CommStats::default()
                })
                .collect();
            model.io_seconds(&topo(p), &stats)
        };
        // Below saturation, doubling ranks with fixed total bytes is served
        // faster; here bytes grow with p, so time is ~constant before
        // saturation and grows after.
        let t1 = time_at(saturation_ranks);
        let t2 = time_at(saturation_ranks * 2);
        assert!(
            t2 > t1 * 1.5,
            "beyond saturation, more data cannot be absorbed: {t1} vs {t2}"
        );
    }

    #[test]
    fn strong_scaling_io_goes_flat() {
        // Fixed total bytes spread over more ranks: time falls until the
        // aggregate cap, then goes flat (the paper's Figs. 6-8 observation).
        let model = CostModel::edison();
        let total_bytes: u64 = 1 << 34;
        let time_at = |p: usize| {
            let per = total_bytes / p as u64;
            let stats: Vec<CommStats> = (0..p)
                .map(|_| CommStats {
                    io_read_bytes: per,
                    ..CommStats::default()
                })
                .collect();
            model.io_seconds(&topo(p), &stats)
        };
        let t480 = time_at(480);
        let t960 = time_at(960);
        let t1920 = time_at(1920);
        assert!(t960 < t480, "scaling before saturation");
        let rel = (t1920 - t960).abs() / t960;
        assert!(rel < 0.05, "flat beyond saturation: {t960} vs {t1920}");
    }

    #[test]
    fn barrier_cost_grows_with_log_ranks() {
        let model = CostModel::edison();
        let mk = |p: usize| {
            let stats: Vec<CommStats> = (0..p)
                .map(|_| CommStats {
                    barriers: 4,
                    ..CommStats::default()
                })
                .collect();
            model.phase_time(&topo(p), &stats).sync
        };
        assert!(mk(1024) > mk(32));
    }

    #[test]
    #[should_panic(expected = "one CommStats per rank")]
    fn phase_time_checks_arity() {
        let model = CostModel::edison();
        model.phase_time(&topo(2), &[CommStats::new()]);
    }

    #[test]
    fn cost_model_json_round_trips_byte_identically() {
        for model in [CostModel::edison(), CostModel::single_node()] {
            let text = model.to_json();
            let parsed = CostModel::from_json(&text).expect("round trip");
            assert_eq!(parsed, model);
            assert_eq!(parsed.to_json(), text, "byte-identical re-serialization");
        }
        // Awkward fitted values (subnormal-ish, huge, zero) must survive too.
        let fitted = CostModel {
            t_compute: 1.2345678901234567e-9,
            t_backoff: 0.0,
            bw_offnode: 9.87654321e11,
            ..CostModel::edison()
        };
        let text = fitted.to_json();
        let parsed = CostModel::from_json(&text).expect("round trip");
        assert_eq!(parsed, fitted);
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn cost_model_from_json_rejects_bad_documents() {
        assert!(CostModel::from_json("[]").is_err(), "not an object");
        assert!(CostModel::from_json("{").is_err(), "not JSON");
        assert!(
            CostModel::from_json("{\"t_compute\":1e-9}").is_err(),
            "missing schema version"
        );
        let good = CostModel::edison().to_json();
        assert!(
            CostModel::from_json(&good.replace(
                "\"cost_model_schema_version\":1",
                "\"cost_model_schema_version\":99"
            ))
            .is_err(),
            "wrong schema version"
        );
        assert!(
            CostModel::from_json(&good.replace("t_steal", "t_stale")).is_err(),
            "unknown key and missing constant"
        );
        let mut doc = Value::parse(&good).unwrap();
        if let Value::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "t_cache" {
                    *v = Value::from("fast");
                }
            }
        }
        assert!(
            CostModel::from_json(&doc.to_json()).is_err(),
            "non-numeric constant"
        );
    }

    #[test]
    fn modeled_time_total_and_add() {
        let mut a = ModeledTime {
            critical_path: 1.0,
            sync: 0.5,
            io: 0.25,
            serial: 0.25,
        };
        assert!((a.total() - 2.0).abs() < 1e-12);
        let b = a;
        a.add(&b);
        assert!((a.total() - 4.0).abs() < 1e-12);
    }
}
