//! Phase and pipeline reports: measured counters plus modeled time.
//!
//! Every pipeline stage produces a [`PhaseReport`]; a [`PipelineReport`]
//! collects them and renders the per-stage breakdowns the paper's figures
//! plot (k-mer analysis / contig generation / scaffolding / overall, and
//! within scaffolding: merAligner / gap closing / rest).

use crate::cost::{CostModel, ModeledTime};
use crate::json::Value;
use crate::stats::{total, CommStats};
use crate::topology::Topology;

/// The record of one finished SPMD phase.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Stage name, e.g. `"kmer-analysis"`.
    pub name: String,
    /// Topology the phase ran on.
    pub topo: Topology,
    /// Per-rank counters (indexed by rank).
    pub stats: Vec<CommStats>,
    /// Real wall-clock seconds the simulation took (diagnostics only).
    /// Derived automatically from the per-rank [`CommStats::exec_nanos`]
    /// that [`crate::Team::run`] stamps (max over ranks, i.e. the slowest
    /// rank's measured time); [`PhaseReport::with_wall`] overrides it.
    pub wall_seconds: f64,
    /// Inherently serial seconds this stage adds (e.g. the serial tie
    /// traversal of §4.7), already priced by the stage.
    pub serial_seconds: f64,
    /// Heavy-hitter key hashes observed by this phase's hash-table service
    /// operations, as `(key_hash, estimated_count)` sorted by descending
    /// count. Empty unless hot-key tracking was enabled
    /// ([`crate::trace::set_hotkey_capacity`]) and the stage attached them.
    pub hot_keys: Vec<(u64, u64)>,
}

/// The measured wall time of a phase: its slowest rank's execution time.
fn derived_wall_seconds(stats: &[CommStats]) -> f64 {
    stats.iter().map(|s| s.exec_nanos).max().unwrap_or(0) as f64 / 1e9
}

impl PhaseReport {
    /// Build a report from a finished [`crate::Team::run`] invocation.
    /// `wall_seconds` is derived from the stamped per-rank execution times.
    pub fn new(name: impl Into<String>, topo: Topology, stats: Vec<CommStats>) -> Self {
        let wall_seconds = derived_wall_seconds(&stats);
        PhaseReport {
            name: name.into(),
            topo,
            stats,
            wall_seconds,
            serial_seconds: 0.0,
            hot_keys: Vec::new(),
        }
    }

    /// Override the derived measured wall time.
    pub fn with_wall(mut self, seconds: f64) -> Self {
        self.wall_seconds = seconds;
        self
    }

    /// Attach serial seconds.
    pub fn with_serial(mut self, seconds: f64) -> Self {
        self.serial_seconds = seconds;
        self
    }

    /// Attach heavy-hitter keys (`(key_hash, estimated_count)`, sorted by
    /// descending count).
    pub fn with_hot_keys(mut self, hot_keys: Vec<(u64, u64)>) -> Self {
        self.hot_keys = hot_keys;
        self
    }

    /// Fold additional per-rank counters into this report (for stages made
    /// of several `Team::run` calls over the same topology). Re-derives
    /// `wall_seconds` from the merged execution times.
    pub fn absorb(&mut self, more: &[CommStats]) {
        assert_eq!(more.len(), self.stats.len());
        for (mine, extra) in self.stats.iter_mut().zip(more) {
            mine.merge(extra);
        }
        self.wall_seconds = derived_wall_seconds(&self.stats);
    }

    /// Modeled execution time under `model`.
    pub fn modeled(&self, model: &CostModel) -> ModeledTime {
        let mut t = model.phase_time(&self.topo, &self.stats);
        t.serial = self.serial_seconds;
        t
    }

    /// Machine-wide counter totals.
    pub fn totals(&self) -> CommStats {
        total(&self.stats)
    }

    /// Fraction of hash-table accesses that went off-node (Table 2's metric).
    pub fn offnode_fraction(&self) -> f64 {
        self.totals().offnode_fraction().unwrap_or(0.0)
    }

    /// Load imbalance: max over ranks of (work) divided by mean work, where
    /// work is priced rank seconds. 1.0 is perfectly balanced.
    ///
    /// Each rank is priced by [`CostModel::rank_breakdown`] on its own
    /// counters, which were classified local/on-node/off-node under the
    /// phase's real topology when they were recorded — so a comm-skewed
    /// rank (all traffic off-node) weighs its full network cost here. An
    /// earlier revision detoured through
    /// `phase_time(&Topology::new(1, 1), ..)` per rank, which *looked*
    /// like it re-classified everything as local; the pricing only stayed
    /// correct because classification happens at record time, and any
    /// future topology-dependent price term would have silently broken it.
    pub fn imbalance(&self, model: &CostModel) -> f64 {
        let times: Vec<f64> = self
            .stats
            .iter()
            .map(|s| model.rank_breakdown(s).total())
            .collect();
        let max = times.iter().copied().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// One pipeline stage's execution bookkeeping under fault injection and
/// checkpoint/restart: how many times the stage body ran, how many of
/// those attempts aborted (injected rank failure or retry-budget
/// exhaustion), and whether it was skipped entirely by `--resume`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageAttempt {
    /// Stage name, e.g. `"contig-generation"`.
    pub stage: String,
    /// Times the stage body was executed (0 when resumed from checkpoint).
    pub executions: u64,
    /// Executions that ended in a stage abort and were rolled back.
    pub aborted: u64,
    /// Whether the stage was satisfied from a checkpoint instead of run.
    pub resumed: bool,
}

/// One checkpoint interaction: an artifact saved after a stage completed,
/// or loaded to satisfy a `--resume`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointEvent {
    /// Stage the artifact belongs to.
    pub stage: String,
    /// `"save"` or `"load"`.
    pub action: String,
    /// Serialized artifact size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 checksum of the artifact bytes.
    pub checksum: u64,
}

/// An ordered collection of phase reports for one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// The phases in execution order.
    pub phases: Vec<PhaseReport>,
    /// Per-stage execution bookkeeping (empty unless the run used the
    /// fault/checkpoint machinery).
    pub stage_attempts: Vec<StageAttempt>,
    /// Checkpoint saves and loads performed during the run.
    pub checkpoints: Vec<CheckpointEvent>,
}

impl PipelineReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a finished phase.
    pub fn push(&mut self, phase: PhaseReport) {
        self.phases.push(phase);
    }

    /// A rollback marker: the current phase count. Take one before running
    /// a stage that may abort, and pass it to
    /// [`rollback_to`](Self::rollback_to) if it does.
    pub fn mark(&self) -> usize {
        self.phases.len()
    }

    /// Discard every phase appended after `mark` was taken. This is how a
    /// re-executed stage *replaces* its aborted attempt: without the
    /// rollback, the aborted attempt's phases would double-count their
    /// wall seconds (and counters) in the pipeline totals.
    pub fn rollback_to(&mut self, mark: usize) {
        self.phases.truncate(mark);
    }

    /// Modeled total time across all phases.
    pub fn total_modeled(&self, model: &CostModel) -> ModeledTime {
        let mut acc = ModeledTime::default();
        for p in &self.phases {
            acc.add(&p.modeled(model));
        }
        acc
    }

    /// Modeled seconds of the phases whose name contains `needle`.
    pub fn modeled_matching(&self, model: &CostModel, needle: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .map(|p| p.modeled(model).total())
            .sum()
    }

    /// Render a per-phase table (name, modeled seconds, % of total,
    /// off-node fraction).
    pub fn render(&self, model: &CostModel) -> String {
        let total = self.total_modeled(model).total().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>7} {:>9}\n",
            "phase", "modeled (s)", "%", "off-node"
        ));
        for p in &self.phases {
            let t = p.modeled(model).total();
            out.push_str(&format!(
                "{:<28} {:>12.4} {:>6.1}% {:>8.1}%\n",
                p.name,
                t,
                100.0 * t / total,
                100.0 * p.offnode_fraction()
            ));
        }
        out.push_str(&format!("{:<28} {:>12.4}\n", "TOTAL", total));
        out
    }

    /// Serialize the whole pipeline report as a machine-readable JSON
    /// document (schema version 4; see `DESIGN.md` §"Observability").
    ///
    /// Per phase it carries the measured wall seconds, the modeled-time
    /// breakdown, the critical rank's compute/latency/bandwidth split, the
    /// off-node fraction and load imbalance (exactly the values the
    /// [`PhaseReport`] methods return), the machine-wide counter totals,
    /// and any heavy-hitter keys the stage attached.
    ///
    /// Schema v2 added three read-path counters to each phase's `totals`
    /// object: `lookup_batches` ([`CommStats::lookup_batches`]),
    /// `cache_hits` and `cache_misses`.
    ///
    /// Schema v3 adds the fault/recovery surface: per-phase `totals` gain
    /// `transient_faults`, `retries` and `backoff_units`
    /// ([`CommStats::transient_faults`], [`CommStats::retries`],
    /// [`CommStats::backoff_units`]), and the document gains two top-level
    /// arrays — `stage_attempts` ([`StageAttempt`]: execution/abort/resume
    /// bookkeeping per pipeline stage) and `checkpoints`
    /// ([`CheckpointEvent`]: artifact saves and loads with byte counts and
    /// checksums). Consumers that indexed by key name are unaffected;
    /// consumers that enumerated keys must accept the new ones.
    ///
    /// Schema v4 (this PR) adds the dynamic-scheduling surface: per-phase
    /// `totals` gain `steal_ops` ([`CommStats::steal_ops`], the chunk
    /// acquisitions of [`crate::RankCtx::for_each_dynamic`]). The per-phase
    /// `imbalance` key — present since v1 — is now computed by pricing each
    /// rank under the phase's real topology via
    /// [`CostModel::rank_breakdown`] (see [`PhaseReport::imbalance`]), so
    /// static-vs-dynamic schedule ablations can read per-stage balance
    /// straight from the report.
    pub fn to_json(&self, model: &CostModel) -> String {
        let mut doc = Value::obj();
        doc.set("schema_version", 4u64)
            .set("generator", "hipmer-pgas");
        if let Some(p) = self.phases.first() {
            let mut topo = Value::obj();
            topo.set("ranks", p.topo.ranks())
                .set("ranks_per_node", p.topo.ranks_per_node())
                .set("nodes", p.topo.nodes());
            doc.set("topology", topo);
        }
        doc.set("modeled_total", modeled_json(&self.total_modeled(model)));
        doc.set(
            "wall_seconds",
            self.phases.iter().map(|p| p.wall_seconds).sum::<f64>(),
        );
        let attempts: Vec<Value> = self
            .stage_attempts
            .iter()
            .map(|a| {
                let mut v = Value::obj();
                v.set("stage", a.stage.as_str())
                    .set("executions", a.executions)
                    .set("aborted", a.aborted)
                    .set("resumed", a.resumed);
                v
            })
            .collect();
        doc.set("stage_attempts", Value::Arr(attempts));
        let ckpts: Vec<Value> = self
            .checkpoints
            .iter()
            .map(|c| {
                let mut v = Value::obj();
                v.set("stage", c.stage.as_str())
                    .set("action", c.action.as_str())
                    .set("bytes", c.bytes)
                    .set("checksum", format!("{:#018x}", c.checksum));
                v
            })
            .collect();
        doc.set("checkpoints", Value::Arr(ckpts));
        let phases: Vec<Value> = self.phases.iter().map(|p| phase_json(p, model)).collect();
        doc.set("phases", Value::Arr(phases));
        doc.to_json()
    }
}

fn modeled_json(t: &ModeledTime) -> Value {
    let mut v = Value::obj();
    v.set("critical_path_seconds", t.critical_path)
        .set("sync_seconds", t.sync)
        .set("io_seconds", t.io)
        .set("serial_seconds", t.serial)
        .set("total_seconds", t.total());
    v
}

fn phase_json(p: &PhaseReport, model: &CostModel) -> Value {
    let totals = p.totals();
    let breakdown = model.critical_rank_breakdown(&p.stats);

    let mut v = Value::obj();
    v.set("name", p.name.as_str())
        .set("ranks", p.topo.ranks())
        .set("wall_seconds", p.wall_seconds)
        .set("modeled", modeled_json(&p.modeled(model)));

    let mut crit = Value::obj();
    crit.set("compute_seconds", breakdown.compute)
        .set("latency_seconds", breakdown.latency)
        .set("bandwidth_seconds", breakdown.bandwidth);
    v.set("critical_rank", crit)
        .set("offnode_fraction", p.offnode_fraction())
        .set("imbalance", p.imbalance(model));

    let mut t = Value::obj();
    t.set("compute_ops", totals.compute_ops)
        .set("local_ops", totals.local_ops)
        .set("onnode_msgs", totals.onnode_msgs)
        .set("offnode_msgs", totals.offnode_msgs)
        .set("onnode_bytes", totals.onnode_bytes)
        .set("offnode_bytes", totals.offnode_bytes)
        .set("service_ops", totals.service_ops)
        .set("lookup_batches", totals.lookup_batches)
        .set("cache_hits", totals.cache_hits)
        .set("cache_misses", totals.cache_misses)
        .set("transient_faults", totals.transient_faults)
        .set("retries", totals.retries)
        .set("backoff_units", totals.backoff_units)
        .set("io_read_bytes", totals.io_read_bytes)
        .set("io_write_bytes", totals.io_write_bytes)
        .set("steal_ops", totals.steal_ops)
        .set("barriers", totals.barriers)
        .set("exec_nanos", totals.exec_nanos);
    v.set("totals", t);

    let hot: Vec<Value> = p
        .hot_keys
        .iter()
        .map(|&(hash, count)| {
            let mut h = Value::obj();
            h.set("key_hash", format!("{hash:#018x}"))
                .set("estimated_count", count);
            h
        })
        .collect();
    v.set("hot_keys", Value::Arr(hot));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase_with(compute: &[u64]) -> PhaseReport {
        let topo = Topology::new(compute.len(), 24);
        let stats = compute
            .iter()
            .map(|&c| CommStats {
                compute_ops: c,
                ..CommStats::default()
            })
            .collect();
        PhaseReport::new("test", topo, stats)
    }

    #[test]
    fn modeled_uses_serial_seconds() {
        let model = CostModel::edison();
        let p = phase_with(&[100, 100]).with_serial(1.5);
        let t = p.modeled(&model);
        assert!((t.serial - 1.5).abs() < 1e-12);
        assert!(t.total() >= 1.5);
    }

    #[test]
    fn imbalance_detects_skew() {
        let model = CostModel::edison();
        let balanced = phase_with(&[100, 100, 100, 100]);
        let skewed = phase_with(&[100, 100, 100, 10_000]);
        assert!((balanced.imbalance(&model) - 1.0).abs() < 1e-9);
        assert!(skewed.imbalance(&model) > 3.0);
    }

    #[test]
    fn imbalance_detects_comm_skew() {
        // Regression for the old per-rank `phase_time(&Topology::new(1,1))`
        // detour: the skewed rank here does NO compute — its entire load is
        // off-node messages and bytes — so an implementation that dropped
        // or re-priced communication for the per-rank term would report
        // ~1.0 (balanced) for a phase whose network-bound rank is the
        // critical path.
        let model = CostModel::edison();
        let topo = Topology::new(4, 2);
        let mut stats = vec![
            CommStats {
                compute_ops: 1_000,
                ..CommStats::default()
            };
            4
        ];
        stats[3] = CommStats {
            offnode_msgs: 100_000,
            offnode_bytes: 100_000 * 64,
            ..CommStats::default()
        };
        let p = PhaseReport::new("comm-skew", topo, stats.clone());
        let imb = p.imbalance(&model);
        assert!(imb > 3.0, "comm-skewed rank must dominate: {imb}");
        // The per-rank prices must be exactly the real-topology breakdown.
        let times: Vec<f64> = stats
            .iter()
            .map(|s| model.rank_breakdown(s).total())
            .collect();
        let max = times.iter().copied().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        assert!((imb - max / mean).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_counters() {
        let mut p = phase_with(&[10, 20]);
        let extra = vec![
            CommStats {
                compute_ops: 5,
                ..CommStats::default()
            },
            CommStats {
                compute_ops: 5,
                ..CommStats::default()
            },
        ];
        p.absorb(&extra);
        assert_eq!(p.stats[0].compute_ops, 15);
        assert_eq!(p.stats[1].compute_ops, 25);
    }

    /// A two-phase pipeline with enough counter variety to exercise every
    /// field of the JSON serialization.
    fn busy_pipeline() -> PipelineReport {
        let topo = Topology::new(4, 2);
        let stats: Vec<CommStats> = (0..4u64)
            .map(|r| CommStats {
                compute_ops: 1_000 * (r + 1),
                local_ops: 500,
                onnode_msgs: 40,
                offnode_msgs: 60 + 10 * r,
                onnode_bytes: 4_000,
                offnode_bytes: 9_000,
                service_ops: 700,
                lookup_batches: 12,
                cache_hits: 300 + 5 * r,
                cache_misses: 44,
                transient_faults: 3 + r,
                retries: 3,
                backoff_units: 7,
                io_read_bytes: 1 << 20,
                steal_ops: 9 + r,
                barriers: 2,
                exec_nanos: 1_000_000 * (r + 1),
                ..CommStats::default()
            })
            .collect();
        let mut pr = PipelineReport::new();
        pr.push(
            PhaseReport::new("kmer-analysis/count", topo, stats.clone())
                .with_hot_keys(vec![(0xdead_beef, 41), (0x1234, 7)]),
        );
        pr.push(PhaseReport::new("contig/traversal", topo, stats).with_serial(0.125));
        pr.stage_attempts.push(StageAttempt {
            stage: "kmer-analysis".to_string(),
            executions: 2,
            aborted: 1,
            resumed: false,
        });
        pr.stage_attempts.push(StageAttempt {
            stage: "contig-generation".to_string(),
            executions: 0,
            aborted: 0,
            resumed: true,
        });
        pr.checkpoints.push(CheckpointEvent {
            stage: "kmer-analysis".to_string(),
            action: "save".to_string(),
            bytes: 4096,
            checksum: 0xfeed_f00d,
        });
        pr
    }

    #[test]
    fn json_report_round_trips() {
        let model = CostModel::edison();
        let text = busy_pipeline().to_json(&model);
        let parsed = Value::parse(&text).expect("report must be valid JSON");
        // Serializing the parsed document reproduces the original text
        // byte-for-byte (ordered object pairs make this deterministic).
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn json_report_schema_is_stable() {
        // Guards the field names downstream tooling depends on; renaming
        // any of these is a schema break and must bump `schema_version`.
        let model = CostModel::edison();
        let doc = Value::parse(&busy_pipeline().to_json(&model)).unwrap();
        assert_eq!(doc.get("schema_version").and_then(Value::as_u64), Some(4));
        assert_eq!(
            doc.keys(),
            vec![
                "schema_version",
                "generator",
                "topology",
                "modeled_total",
                "wall_seconds",
                "stage_attempts",
                "checkpoints",
                "phases"
            ]
        );
        let attempts = doc.get("stage_attempts").unwrap().as_arr().unwrap();
        assert_eq!(attempts.len(), 2);
        assert_eq!(
            attempts[0].keys(),
            vec!["stage", "executions", "aborted", "resumed"]
        );
        assert_eq!(
            attempts[0].get("stage").and_then(Value::as_str),
            Some("kmer-analysis")
        );
        assert_eq!(attempts[0].get("aborted").and_then(Value::as_u64), Some(1));
        assert_eq!(
            attempts[1].get("resumed").and_then(Value::as_bool),
            Some(true)
        );
        let ckpts = doc.get("checkpoints").unwrap().as_arr().unwrap();
        assert_eq!(ckpts.len(), 1);
        assert_eq!(
            ckpts[0].keys(),
            vec!["stage", "action", "bytes", "checksum"]
        );
        assert_eq!(ckpts[0].get("action").and_then(Value::as_str), Some("save"));
        assert_eq!(ckpts[0].get("bytes").and_then(Value::as_u64), Some(4096));
        assert_eq!(
            ckpts[0].get("checksum").and_then(Value::as_str),
            Some("0x00000000feedf00d")
        );
        let topo = doc.get("topology").unwrap();
        assert_eq!(topo.keys(), vec!["ranks", "ranks_per_node", "nodes"]);
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases.len(), 2);
        let p = &phases[0];
        assert_eq!(
            p.keys(),
            vec![
                "name",
                "ranks",
                "wall_seconds",
                "modeled",
                "critical_rank",
                "offnode_fraction",
                "imbalance",
                "totals",
                "hot_keys"
            ]
        );
        assert_eq!(
            p.get("modeled").unwrap().keys(),
            vec![
                "critical_path_seconds",
                "sync_seconds",
                "io_seconds",
                "serial_seconds",
                "total_seconds"
            ]
        );
        assert_eq!(
            p.get("critical_rank").unwrap().keys(),
            vec!["compute_seconds", "latency_seconds", "bandwidth_seconds"]
        );
        assert_eq!(
            p.get("totals").unwrap().keys(),
            vec![
                "compute_ops",
                "local_ops",
                "onnode_msgs",
                "offnode_msgs",
                "onnode_bytes",
                "offnode_bytes",
                "service_ops",
                "lookup_batches",
                "cache_hits",
                "cache_misses",
                "transient_faults",
                "retries",
                "backoff_units",
                "io_read_bytes",
                "io_write_bytes",
                "steal_ops",
                "barriers",
                "exec_nanos"
            ]
        );
        let hot = p.get("hot_keys").unwrap().as_arr().unwrap();
        assert_eq!(hot.len(), 2);
        assert_eq!(
            hot[0].get("key_hash").and_then(Value::as_str),
            Some("0x00000000deadbeef")
        );
        assert_eq!(
            hot[0].get("estimated_count").and_then(Value::as_u64),
            Some(41)
        );
    }

    #[test]
    fn json_report_matches_phase_methods() {
        // Golden check: the serialized metrics are exactly what the
        // `PhaseReport` accessors compute, not a parallel implementation.
        let model = CostModel::edison();
        let pr = busy_pipeline();
        let doc = Value::parse(&pr.to_json(&model)).unwrap();
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        for (p, v) in pr.phases.iter().zip(phases) {
            assert_eq!(v.get("name").and_then(Value::as_str), Some(p.name.as_str()));
            let off = v.get("offnode_fraction").and_then(Value::as_f64).unwrap();
            assert!((off - p.offnode_fraction()).abs() < 1e-12);
            assert!(off > 0.0, "fixture must exercise a nonzero fraction");
            let imb = v.get("imbalance").and_then(Value::as_f64).unwrap();
            assert!((imb - p.imbalance(&model)).abs() < 1e-12);
            assert!(imb > 1.0, "fixture must exercise real skew");
            let wall = v.get("wall_seconds").and_then(Value::as_f64).unwrap();
            assert!((wall - p.wall_seconds).abs() < 1e-12);
            let modeled = v.get("modeled").unwrap();
            let total = modeled
                .get("total_seconds")
                .and_then(Value::as_f64)
                .unwrap();
            assert!((total - p.modeled(&model).total()).abs() < 1e-12);
            let totals = v.get("totals").unwrap();
            let exec = totals.get("exec_nanos").and_then(Value::as_u64).unwrap();
            assert_eq!(exec, p.totals().exec_nanos);
            // Schema-v2 read-path counters carry the merged CommStats values.
            let hits = totals.get("cache_hits").and_then(Value::as_u64).unwrap();
            assert_eq!(hits, p.totals().cache_hits);
            assert!(hits > 0, "fixture must exercise cache accounting");
            let batches = totals
                .get("lookup_batches")
                .and_then(Value::as_u64)
                .unwrap();
            assert_eq!(batches, p.totals().lookup_batches);
            assert!(batches > 0, "fixture must exercise batch accounting");
            assert_eq!(
                totals.get("cache_misses").and_then(Value::as_u64).unwrap(),
                p.totals().cache_misses
            );
            // Schema-v3 fault counters carry the merged CommStats values.
            let faults = totals
                .get("transient_faults")
                .and_then(Value::as_u64)
                .unwrap();
            assert_eq!(faults, p.totals().transient_faults);
            assert!(faults > 0, "fixture must exercise fault accounting");
            assert_eq!(
                totals.get("retries").and_then(Value::as_u64).unwrap(),
                p.totals().retries
            );
            assert_eq!(
                totals.get("backoff_units").and_then(Value::as_u64).unwrap(),
                p.totals().backoff_units
            );
            // Schema-v4 dynamic-scheduling counter.
            let steals = totals.get("steal_ops").and_then(Value::as_u64).unwrap();
            assert_eq!(steals, p.totals().steal_ops);
            assert!(steals > 0, "fixture must exercise steal accounting");
        }
        // Pipeline-level sums.
        let wall = doc.get("wall_seconds").and_then(Value::as_f64).unwrap();
        let expect: f64 = pr.phases.iter().map(|p| p.wall_seconds).sum();
        assert!((wall - expect).abs() < 1e-12);
    }

    #[test]
    fn rollback_replaces_aborted_attempt() {
        // A stage runs, aborts, and re-runs: the re-execution must replace
        // the aborted attempt's phases, not pile on top of them.
        let mut pr = PipelineReport::new();
        pr.push(phase_with(&[10, 10]).with_wall(1.0)); // upstream stage A
        let mark = pr.mark();
        pr.push(phase_with(&[20, 20]).with_wall(5.0)); // stage B, attempt 1 (aborts)
        pr.push(phase_with(&[5, 5]).with_wall(2.0)); // partial sub-phase of attempt 1
        pr.rollback_to(mark);
        pr.push(phase_with(&[20, 20]).with_wall(5.5)); // stage B, attempt 2
        let wall: f64 = pr.phases.iter().map(|p| p.wall_seconds).sum();
        assert_eq!(pr.phases.len(), 2);
        assert!((wall - 6.5).abs() < 1e-12, "A + B2 only, got {wall}");
    }

    #[test]
    fn pipeline_totals_and_render() {
        let model = CostModel::edison();
        let mut pr = PipelineReport::new();
        pr.push(phase_with(&[1_000_000, 1_000_000]));
        pr.push(phase_with(&[500_000, 500_000]).with_serial(0.25));
        let total = pr.total_modeled(&model).total();
        assert!(total > 0.25);
        let text = pr.render(&model);
        assert!(text.contains("TOTAL"));
        assert!(text.lines().count() >= 4);
        assert!(pr.modeled_matching(&model, "test") > 0.0);
        assert_eq!(pr.modeled_matching(&model, "nope"), 0.0);
    }
}
