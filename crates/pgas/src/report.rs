//! Phase and pipeline reports: measured counters plus modeled time.
//!
//! Every pipeline stage produces a [`PhaseReport`]; a [`PipelineReport`]
//! collects them and renders the per-stage breakdowns the paper's figures
//! plot (k-mer analysis / contig generation / scaffolding / overall, and
//! within scaffolding: merAligner / gap closing / rest).

use crate::cost::{CostModel, ModeledTime};
use crate::json::Value;
use crate::stats::{total, CommStats};
use crate::topology::Topology;

/// The record of one finished SPMD phase.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Stage name, e.g. `"kmer-analysis"`.
    pub name: String,
    /// Topology the phase ran on.
    pub topo: Topology,
    /// Per-rank counters (indexed by rank).
    pub stats: Vec<CommStats>,
    /// Real wall-clock seconds the simulation took (diagnostics only).
    /// Derived automatically from the per-rank [`CommStats::exec_nanos`]
    /// that [`crate::Team::run`] stamps (max over ranks, i.e. the slowest
    /// rank's measured time); [`PhaseReport::with_wall`] overrides it.
    pub wall_seconds: f64,
    /// Inherently serial seconds this stage adds (e.g. the serial tie
    /// traversal of §4.7), already priced by the stage.
    pub serial_seconds: f64,
    /// Heavy-hitter key hashes observed by this phase's hash-table service
    /// operations, as `(key_hash, estimated_count)` sorted by descending
    /// count. Empty unless hot-key tracking was enabled
    /// ([`crate::trace::set_hotkey_capacity`]) and the stage attached them.
    pub hot_keys: Vec<(u64, u64)>,
    /// Placement label of the phase's dominant hash table — a
    /// [`crate::Partitioner::label`] string such as `"uniform"` or
    /// `"minimizer(w=25,m=7)"`, or `"oracle"` for contig-oracle placement.
    /// `None` for phases that own no table (I/O, serial passes). Drives
    /// the report's `offnode_by_placement` split, so partition ablations
    /// can read per-placement traffic straight from one document.
    pub placement: Option<String>,
}

/// The measured wall time of a phase: its slowest rank's execution time.
fn derived_wall_seconds(stats: &[CommStats]) -> f64 {
    stats.iter().map(|s| s.exec_nanos).max().unwrap_or(0) as f64 / 1e9
}

impl PhaseReport {
    /// Build a report from a finished [`crate::Team::run`] invocation.
    /// `wall_seconds` is derived from the stamped per-rank execution times.
    pub fn new(name: impl Into<String>, topo: Topology, stats: Vec<CommStats>) -> Self {
        let wall_seconds = derived_wall_seconds(&stats);
        PhaseReport {
            name: name.into(),
            topo,
            stats,
            wall_seconds,
            serial_seconds: 0.0,
            hot_keys: Vec::new(),
            placement: None,
        }
    }

    /// Override the derived measured wall time.
    pub fn with_wall(mut self, seconds: f64) -> Self {
        self.wall_seconds = seconds;
        self
    }

    /// Attach serial seconds.
    pub fn with_serial(mut self, seconds: f64) -> Self {
        self.serial_seconds = seconds;
        self
    }

    /// Attach heavy-hitter keys (`(key_hash, estimated_count)`, sorted by
    /// descending count).
    pub fn with_hot_keys(mut self, hot_keys: Vec<(u64, u64)>) -> Self {
        self.hot_keys = hot_keys;
        self
    }

    /// Attach the placement label of the phase's dominant hash table (see
    /// [`PhaseReport::placement`]).
    pub fn with_placement(mut self, label: impl Into<String>) -> Self {
        self.placement = Some(label.into());
        self
    }

    /// Fold additional per-rank counters into this report (for stages made
    /// of several `Team::run` calls over the same topology). Re-derives
    /// `wall_seconds` from the merged execution times.
    pub fn absorb(&mut self, more: &[CommStats]) {
        assert_eq!(more.len(), self.stats.len());
        for (mine, extra) in self.stats.iter_mut().zip(more) {
            mine.merge(extra);
        }
        self.wall_seconds = derived_wall_seconds(&self.stats);
    }

    /// Modeled execution time under `model`.
    pub fn modeled(&self, model: &CostModel) -> ModeledTime {
        let mut t = model.phase_time(&self.topo, &self.stats);
        t.serial = self.serial_seconds;
        t
    }

    /// Machine-wide counter totals.
    pub fn totals(&self) -> CommStats {
        total(&self.stats)
    }

    /// Fraction of hash-table accesses that went off-node (Table 2's metric).
    pub fn offnode_fraction(&self) -> f64 {
        self.totals().offnode_fraction().unwrap_or(0.0)
    }

    /// The slowest rank's measured execution seconds (from the
    /// [`CommStats::exec_nanos`] stamps). Because virtual ranks are
    /// multiplexed over a few OS threads, this — not the phase's host wall
    /// time — is the measured analog of the modeled critical path: both
    /// are "the slowest rank's own work", independent of how many ranks
    /// ran concurrently.
    pub fn max_rank_seconds(&self) -> f64 {
        derived_wall_seconds(&self.stats)
    }

    /// Mean over ranks of measured execution seconds.
    pub fn mean_rank_seconds(&self) -> f64 {
        if self.stats.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.stats.iter().map(|s| s.exec_nanos).sum();
        sum as f64 / 1e9 / self.stats.len() as f64
    }

    /// Load imbalance: max over ranks of (work) divided by mean work, where
    /// work is priced rank seconds. 1.0 is perfectly balanced.
    ///
    /// Each rank is priced by [`CostModel::rank_breakdown`] on its own
    /// counters, which were classified local/on-node/off-node under the
    /// phase's real topology when they were recorded — so a comm-skewed
    /// rank (all traffic off-node) weighs its full network cost here. An
    /// earlier revision detoured through
    /// `phase_time(&Topology::new(1, 1), ..)` per rank, which *looked*
    /// like it re-classified everything as local; the pricing only stayed
    /// correct because classification happens at record time, and any
    /// future topology-dependent price term would have silently broken it.
    pub fn imbalance(&self, model: &CostModel) -> f64 {
        let times: Vec<f64> = self
            .stats
            .iter()
            .map(|s| model.rank_breakdown(s).total())
            .collect();
        let max = times.iter().copied().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// One pipeline stage's execution bookkeeping under fault injection and
/// checkpoint/restart: how many times the stage body ran, how many of
/// those attempts aborted (injected rank failure or retry-budget
/// exhaustion), and whether it was skipped entirely by `--resume`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageAttempt {
    /// Stage name, e.g. `"contig-generation"`.
    pub stage: String,
    /// Times the stage body was executed (0 when resumed from checkpoint).
    pub executions: u64,
    /// Executions that ended in a stage abort and were rolled back.
    pub aborted: u64,
    /// Whether the stage was satisfied from a checkpoint instead of run.
    pub resumed: bool,
}

/// One checkpoint interaction: an artifact saved after a stage completed,
/// or loaded to satisfy a `--resume`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointEvent {
    /// Stage the artifact belongs to.
    pub stage: String,
    /// `"save"` or `"load"`.
    pub action: String,
    /// Serialized artifact size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 checksum of the artifact bytes.
    pub checksum: u64,
}

/// One MetaHipMer multi-k round's summary, serialized as an entry of the
/// schema-v7 top-level `rounds` array. Classic single-k runs have an
/// empty `rounds` array.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundReport {
    /// 1-based round number in multi-k order.
    pub round: usize,
    /// The k this round's kanalysis/contig stages ran at.
    pub k: usize,
    /// Contigs the round emitted (after any hair/tip pruning).
    pub contigs: u64,
    /// Pseudo-reads injected *into* this round from the previous round's
    /// contigs (0 for round 1).
    pub pseudo_reads: u64,
    /// Access-weighted off-node fraction over the round's phases.
    pub offnode_fraction: f64,
}

/// One phase's measured-vs-modeled comparison (see
/// [`PipelineReport::model_errors`]).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseModelError {
    /// Phase name.
    pub name: String,
    /// Measured seconds: the slowest rank's stamped execution time, or —
    /// for phases with no per-rank stamps (synthetic I/O phases) — the
    /// recorded wall time.
    pub measured_seconds: f64,
    /// Modeled seconds for the same quantity: the critical path for
    /// stamped phases, the full modeled total for I/O phases.
    pub modeled_seconds: f64,
    /// `|modeled - measured| / measured`.
    pub rel_error: f64,
    /// Fraction of the critical rank's priced seconds that is compute
    /// (1.0 = pure compute). Calibration quality is only meaningful for
    /// compute-dominated phases; gates should filter on this.
    pub compute_fraction: f64,
}

/// An ordered collection of phase reports for one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// The phases in execution order.
    pub phases: Vec<PhaseReport>,
    /// Per-stage execution bookkeeping (empty unless the run used the
    /// fault/checkpoint machinery).
    pub stage_attempts: Vec<StageAttempt>,
    /// Checkpoint saves and loads performed during the run.
    pub checkpoints: Vec<CheckpointEvent>,
    /// Partition-scheme label for the run's k-mer tables (the
    /// `PartitionScheme`'s `Display` string, `"uniform"` or
    /// `"minimizer"`). `None` when the producer predates partition-aware
    /// reporting; serialized as the schema-v6 `partition` header.
    pub partition: Option<String>,
    /// Per-round summaries of a MetaHipMer multi-k run (empty for classic
    /// single-k runs); serialized as the schema-v7 `rounds` array.
    pub rounds: Vec<RoundReport>,
}

impl PipelineReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamp the run's partition-scheme label (see
    /// [`PipelineReport::partition`]).
    pub fn with_partition(mut self, label: impl Into<String>) -> Self {
        self.partition = Some(label.into());
        self
    }

    /// Off-node traffic split by table placement: for each distinct
    /// [`PhaseReport::placement`] label, the off-node fraction over the
    /// combined counters of every phase carrying that label (phases with
    /// no label are skipped — they own no table). Ordered by first
    /// appearance. This is the partition ablation's headline number: under
    /// minimizer bucketing the labeled stages' fractions drop while the
    /// unlabeled ones are untouched.
    pub fn offnode_by_placement(&self) -> Vec<(String, f64)> {
        let mut order: Vec<String> = Vec::new();
        let mut acc: std::collections::HashMap<String, CommStats> =
            std::collections::HashMap::new();
        for p in &self.phases {
            let Some(label) = &p.placement else { continue };
            if !acc.contains_key(label) {
                order.push(label.clone());
            }
            acc.entry(label.clone()).or_default().merge(&p.totals());
        }
        order
            .into_iter()
            .map(|label| {
                let frac = acc[&label].offnode_fraction().unwrap_or(0.0);
                (label, frac)
            })
            .collect()
    }

    /// Append a finished phase.
    pub fn push(&mut self, phase: PhaseReport) {
        self.phases.push(phase);
    }

    /// A rollback marker: the current phase count. Take one before running
    /// a stage that may abort, and pass it to
    /// [`rollback_to`](Self::rollback_to) if it does.
    pub fn mark(&self) -> usize {
        self.phases.len()
    }

    /// Discard every phase appended after `mark` was taken. This is how a
    /// re-executed stage *replaces* its aborted attempt: without the
    /// rollback, the aborted attempt's phases would double-count their
    /// wall seconds (and counters) in the pipeline totals.
    pub fn rollback_to(&mut self, mark: usize) {
        self.phases.truncate(mark);
    }

    /// Modeled total time across all phases.
    pub fn total_modeled(&self, model: &CostModel) -> ModeledTime {
        let mut acc = ModeledTime::default();
        for p in &self.phases {
            acc.add(&p.modeled(model));
        }
        acc
    }

    /// Modeled seconds of the phases whose name contains `needle`.
    pub fn modeled_matching(&self, model: &CostModel, needle: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .map(|p| p.modeled(model).total())
            .sum()
    }

    /// Compare measured and modeled time phase by phase. For phases whose
    /// ranks carry [`CommStats::exec_nanos`] stamps, the measured quantity
    /// is the slowest rank's execution seconds and the modeled one is the
    /// critical path (both are "the slowest rank's own work" — the
    /// apples-to-apples pair under virtual-rank multiplexing, where host
    /// wall time reflects thread count, not rank count). For synthetic
    /// phases with no stamps (e.g. the I/O phases the pipeline
    /// fabricates), measured is the recorded wall time and modeled is the
    /// phase's full modeled total. Phases that measured ≤ 0 seconds are
    /// skipped — there is nothing to compare against.
    pub fn model_errors(&self, model: &CostModel) -> Vec<PhaseModelError> {
        self.phases
            .iter()
            .filter_map(|p| {
                let stamped = p.stats.iter().any(|s| s.exec_nanos > 0);
                let (measured, modeled) = if stamped {
                    (p.max_rank_seconds(), p.modeled(model).critical_path)
                } else {
                    (p.wall_seconds, p.modeled(model).total())
                };
                if measured <= 0.0 {
                    return None;
                }
                let breakdown = model.critical_rank_breakdown(&p.stats);
                let priced = breakdown.total();
                Some(PhaseModelError {
                    name: p.name.clone(),
                    measured_seconds: measured,
                    modeled_seconds: modeled,
                    rel_error: (modeled - measured).abs() / measured,
                    compute_fraction: if priced > 0.0 {
                        breakdown.compute / priced
                    } else {
                        0.0
                    },
                })
            })
            .collect()
    }

    /// The worst (largest) relative model error among phases whose priced
    /// time is at least `min_compute_fraction` compute. Calibration gates
    /// and the measured-scaling bench summarize a whole run with this one
    /// number; `None` when no phase qualifies.
    pub fn worst_model_error(
        &self,
        model: &CostModel,
        min_compute_fraction: f64,
    ) -> Option<PhaseModelError> {
        self.model_errors(model)
            .into_iter()
            .filter(|e| e.compute_fraction >= min_compute_fraction)
            .max_by(|a, b| a.rel_error.total_cmp(&b.rel_error))
    }

    /// Render a per-phase table (name, modeled seconds, % of total,
    /// off-node fraction).
    pub fn render(&self, model: &CostModel) -> String {
        let total = self.total_modeled(model).total().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>7} {:>9}\n",
            "phase", "modeled (s)", "%", "off-node"
        ));
        for p in &self.phases {
            let t = p.modeled(model).total();
            out.push_str(&format!(
                "{:<28} {:>12.4} {:>6.1}% {:>8.1}%\n",
                p.name,
                t,
                100.0 * t / total,
                100.0 * p.offnode_fraction()
            ));
        }
        out.push_str(&format!("{:<28} {:>12.4}\n", "TOTAL", total));
        out
    }

    /// Serialize the whole pipeline report as a machine-readable JSON
    /// document (schema version 4; see `DESIGN.md` §"Observability").
    ///
    /// Per phase it carries the measured wall seconds, the modeled-time
    /// breakdown, the critical rank's compute/latency/bandwidth split, the
    /// off-node fraction and load imbalance (exactly the values the
    /// [`PhaseReport`] methods return), the machine-wide counter totals,
    /// and any heavy-hitter keys the stage attached.
    ///
    /// Schema v2 added three read-path counters to each phase's `totals`
    /// object: `lookup_batches` ([`CommStats::lookup_batches`]),
    /// `cache_hits` and `cache_misses`.
    ///
    /// Schema v3 adds the fault/recovery surface: per-phase `totals` gain
    /// `transient_faults`, `retries` and `backoff_units`
    /// ([`CommStats::transient_faults`], [`CommStats::retries`],
    /// [`CommStats::backoff_units`]), and the document gains two top-level
    /// arrays — `stage_attempts` ([`StageAttempt`]: execution/abort/resume
    /// bookkeeping per pipeline stage) and `checkpoints`
    /// ([`CheckpointEvent`]: artifact saves and loads with byte counts and
    /// checksums). Consumers that indexed by key name are unaffected;
    /// consumers that enumerated keys must accept the new ones.
    ///
    /// Schema v4 adds the dynamic-scheduling surface: per-phase `totals`
    /// gain `steal_ops` ([`CommStats::steal_ops`], the chunk acquisitions
    /// of [`crate::RankCtx::for_each_dynamic`]). The per-phase `imbalance`
    /// key — present since v1 — is now computed by pricing each rank under
    /// the phase's real topology via [`CostModel::rank_breakdown`] (see
    /// [`PhaseReport::imbalance`]), so static-vs-dynamic schedule
    /// ablations can read per-stage balance straight from the report.
    ///
    /// Schema v5 adds the measured-vs-modeled surface: a
    /// top-level `cost_model` label naming the constants the document was
    /// priced under (`"default"`, `"calibrated"`, …), a top-level
    /// `model_error` block (per-phase measured/modeled seconds, relative
    /// error and compute fraction — see
    /// [`model_errors`](Self::model_errors) — plus mean/max summaries),
    /// and a per-phase `measured` object carrying `wall_seconds`,
    /// `max_rank_seconds` and `mean_rank_seconds` from the per-rank
    /// execution stamps.
    ///
    /// Schema v6 (this PR) adds the partition surface: a top-level
    /// `partition` header naming the run's k-mer partition scheme
    /// (`"uniform"` / `"minimizer"`, or `null` for partition-unaware
    /// producers), a top-level `offnode_by_placement` object mapping each
    /// table placement label to the off-node fraction over all phases
    /// using it (see [`offnode_by_placement`](Self::offnode_by_placement)),
    /// and a per-phase `placement` key carrying the phase's table
    /// placement label (`null` for table-less phases).
    ///
    /// Schema v7 (this PR) adds the multi-k surface: a top-level `rounds`
    /// array ([`RoundReport`]) with one entry per MetaHipMer round —
    /// `round`, `k`, `contigs`, `pseudo_reads` and the round's
    /// access-weighted `offnode_fraction`. Classic single-k runs serialize
    /// an empty array, so key-enumerating consumers see a fixed key set.
    pub fn to_json(&self, model: &CostModel) -> String {
        self.to_json_labeled(model, "default")
    }

    /// [`to_json`](Self::to_json) with an explicit `cost_model` label —
    /// use `"calibrated"` when pricing under constants fitted by
    /// [`crate::calib`].
    pub fn to_json_labeled(&self, model: &CostModel, cost_model_label: &str) -> String {
        let mut doc = Value::obj();
        doc.set("schema_version", 7u64)
            .set("generator", "hipmer-pgas")
            .set("cost_model", cost_model_label)
            .set(
                "partition",
                match &self.partition {
                    Some(label) => Value::from(label.as_str()),
                    None => Value::Null,
                },
            );
        let rounds: Vec<Value> = self
            .rounds
            .iter()
            .map(|r| {
                let mut v = Value::obj();
                v.set("round", r.round)
                    .set("k", r.k)
                    .set("contigs", r.contigs)
                    .set("pseudo_reads", r.pseudo_reads)
                    .set("offnode_fraction", r.offnode_fraction);
                v
            })
            .collect();
        doc.set("rounds", Value::Arr(rounds));
        if let Some(p) = self.phases.first() {
            let mut topo = Value::obj();
            topo.set("ranks", p.topo.ranks())
                .set("ranks_per_node", p.topo.ranks_per_node())
                .set("nodes", p.topo.nodes());
            doc.set("topology", topo);
        }
        doc.set("modeled_total", modeled_json(&self.total_modeled(model)));
        doc.set(
            "wall_seconds",
            self.phases.iter().map(|p| p.wall_seconds).sum::<f64>(),
        );
        let mut by_placement = Value::obj();
        for (label, frac) in self.offnode_by_placement() {
            by_placement.set(label, frac);
        }
        doc.set("offnode_by_placement", by_placement);
        let errors = self.model_errors(model);
        let mut err_obj = Value::obj();
        let entries: Vec<Value> = errors
            .iter()
            .map(|e| {
                let mut v = Value::obj();
                v.set("name", e.name.as_str())
                    .set("measured_seconds", e.measured_seconds)
                    .set("modeled_seconds", e.modeled_seconds)
                    .set("rel_error", e.rel_error)
                    .set("compute_fraction", e.compute_fraction);
                v
            })
            .collect();
        err_obj.set("phases", Value::Arr(entries));
        let mean = if errors.is_empty() {
            0.0
        } else {
            errors.iter().map(|e| e.rel_error).sum::<f64>() / errors.len() as f64
        };
        let max = errors.iter().map(|e| e.rel_error).fold(0.0, f64::max);
        err_obj
            .set("mean_rel_error", mean)
            .set("max_rel_error", max);
        doc.set("model_error", err_obj);
        let attempts: Vec<Value> = self
            .stage_attempts
            .iter()
            .map(|a| {
                let mut v = Value::obj();
                v.set("stage", a.stage.as_str())
                    .set("executions", a.executions)
                    .set("aborted", a.aborted)
                    .set("resumed", a.resumed);
                v
            })
            .collect();
        doc.set("stage_attempts", Value::Arr(attempts));
        let ckpts: Vec<Value> = self
            .checkpoints
            .iter()
            .map(|c| {
                let mut v = Value::obj();
                v.set("stage", c.stage.as_str())
                    .set("action", c.action.as_str())
                    .set("bytes", c.bytes)
                    .set("checksum", format!("{:#018x}", c.checksum));
                v
            })
            .collect();
        doc.set("checkpoints", Value::Arr(ckpts));
        let phases: Vec<Value> = self.phases.iter().map(|p| phase_json(p, model)).collect();
        doc.set("phases", Value::Arr(phases));
        doc.to_json()
    }
}

fn modeled_json(t: &ModeledTime) -> Value {
    let mut v = Value::obj();
    v.set("critical_path_seconds", t.critical_path)
        .set("sync_seconds", t.sync)
        .set("io_seconds", t.io)
        .set("serial_seconds", t.serial)
        .set("total_seconds", t.total());
    v
}

fn phase_json(p: &PhaseReport, model: &CostModel) -> Value {
    let totals = p.totals();
    let breakdown = model.critical_rank_breakdown(&p.stats);

    let mut v = Value::obj();
    v.set("name", p.name.as_str())
        .set("ranks", p.topo.ranks())
        .set("wall_seconds", p.wall_seconds);

    let mut measured = Value::obj();
    measured
        .set("wall_seconds", p.wall_seconds)
        .set("max_rank_seconds", p.max_rank_seconds())
        .set("mean_rank_seconds", p.mean_rank_seconds());
    v.set("measured", measured)
        .set("modeled", modeled_json(&p.modeled(model)));

    let mut crit = Value::obj();
    crit.set("compute_seconds", breakdown.compute)
        .set("latency_seconds", breakdown.latency)
        .set("bandwidth_seconds", breakdown.bandwidth);
    v.set("critical_rank", crit)
        .set("offnode_fraction", p.offnode_fraction())
        .set(
            "placement",
            match &p.placement {
                Some(label) => Value::from(label.as_str()),
                None => Value::Null,
            },
        )
        .set("imbalance", p.imbalance(model));

    let mut t = Value::obj();
    t.set("compute_ops", totals.compute_ops)
        .set("local_ops", totals.local_ops)
        .set("onnode_msgs", totals.onnode_msgs)
        .set("offnode_msgs", totals.offnode_msgs)
        .set("onnode_bytes", totals.onnode_bytes)
        .set("offnode_bytes", totals.offnode_bytes)
        .set("service_ops", totals.service_ops)
        .set("lookup_batches", totals.lookup_batches)
        .set("cache_hits", totals.cache_hits)
        .set("cache_misses", totals.cache_misses)
        .set("transient_faults", totals.transient_faults)
        .set("retries", totals.retries)
        .set("backoff_units", totals.backoff_units)
        .set("io_read_bytes", totals.io_read_bytes)
        .set("io_write_bytes", totals.io_write_bytes)
        .set("steal_ops", totals.steal_ops)
        .set("barriers", totals.barriers)
        .set("exec_nanos", totals.exec_nanos);
    v.set("totals", t);

    let hot: Vec<Value> = p
        .hot_keys
        .iter()
        .map(|&(hash, count)| {
            let mut h = Value::obj();
            h.set("key_hash", format!("{hash:#018x}"))
                .set("estimated_count", count);
            h
        })
        .collect();
    v.set("hot_keys", Value::Arr(hot));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk a `/`-separated path through the document: object keys by
    /// name, array elements by decimal index. Panics with the full path on
    /// a missing step, so golden tests read as one-liners instead of
    /// `get(..).unwrap().as_arr().unwrap()` ladders.
    fn get_path<'a>(doc: &'a Value, path: &str) -> &'a Value {
        let mut cur = doc;
        for seg in path.split('/') {
            cur = if let Ok(idx) = seg.parse::<usize>() {
                cur.as_arr()
                    .unwrap_or_else(|| panic!("{path}: {seg} indexes a non-array"))
                    .get(idx)
                    .unwrap_or_else(|| panic!("{path}: index {idx} out of bounds"))
            } else {
                cur.get(seg)
                    .unwrap_or_else(|| panic!("{path}: missing key {seg:?}"))
            };
        }
        cur
    }

    /// Assert an object's keys are exactly `expect`, in order.
    fn assert_keys(v: &Value, expect: &[&str]) {
        assert_eq!(v.keys(), expect);
    }

    fn str_at<'a>(doc: &'a Value, path: &str) -> &'a str {
        get_path(doc, path)
            .as_str()
            .unwrap_or_else(|| panic!("{path}: not a string"))
    }

    fn u64_at(doc: &Value, path: &str) -> u64 {
        get_path(doc, path)
            .as_u64()
            .unwrap_or_else(|| panic!("{path}: not a u64"))
    }

    fn f64_at(doc: &Value, path: &str) -> f64 {
        get_path(doc, path)
            .as_f64()
            .unwrap_or_else(|| panic!("{path}: not a number"))
    }

    fn phase_with(compute: &[u64]) -> PhaseReport {
        let topo = Topology::new(compute.len(), 24);
        let stats = compute
            .iter()
            .map(|&c| CommStats {
                compute_ops: c,
                ..CommStats::default()
            })
            .collect();
        PhaseReport::new("test", topo, stats)
    }

    #[test]
    fn modeled_uses_serial_seconds() {
        let model = CostModel::edison();
        let p = phase_with(&[100, 100]).with_serial(1.5);
        let t = p.modeled(&model);
        assert!((t.serial - 1.5).abs() < 1e-12);
        assert!(t.total() >= 1.5);
    }

    #[test]
    fn imbalance_detects_skew() {
        let model = CostModel::edison();
        let balanced = phase_with(&[100, 100, 100, 100]);
        let skewed = phase_with(&[100, 100, 100, 10_000]);
        assert!((balanced.imbalance(&model) - 1.0).abs() < 1e-9);
        assert!(skewed.imbalance(&model) > 3.0);
    }

    #[test]
    fn imbalance_detects_comm_skew() {
        // Regression for the old per-rank `phase_time(&Topology::new(1,1))`
        // detour: the skewed rank here does NO compute — its entire load is
        // off-node messages and bytes — so an implementation that dropped
        // or re-priced communication for the per-rank term would report
        // ~1.0 (balanced) for a phase whose network-bound rank is the
        // critical path.
        let model = CostModel::edison();
        let topo = Topology::new(4, 2);
        let mut stats = vec![
            CommStats {
                compute_ops: 1_000,
                ..CommStats::default()
            };
            4
        ];
        stats[3] = CommStats {
            offnode_msgs: 100_000,
            offnode_bytes: 100_000 * 64,
            ..CommStats::default()
        };
        let p = PhaseReport::new("comm-skew", topo, stats.clone());
        let imb = p.imbalance(&model);
        assert!(imb > 3.0, "comm-skewed rank must dominate: {imb}");
        // The per-rank prices must be exactly the real-topology breakdown.
        let times: Vec<f64> = stats
            .iter()
            .map(|s| model.rank_breakdown(s).total())
            .collect();
        let max = times.iter().copied().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        assert!((imb - max / mean).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_counters() {
        let mut p = phase_with(&[10, 20]);
        let extra = vec![
            CommStats {
                compute_ops: 5,
                ..CommStats::default()
            },
            CommStats {
                compute_ops: 5,
                ..CommStats::default()
            },
        ];
        p.absorb(&extra);
        assert_eq!(p.stats[0].compute_ops, 15);
        assert_eq!(p.stats[1].compute_ops, 25);
    }

    /// A two-phase pipeline with enough counter variety to exercise every
    /// field of the JSON serialization.
    fn busy_pipeline() -> PipelineReport {
        let topo = Topology::new(4, 2);
        let stats: Vec<CommStats> = (0..4u64)
            .map(|r| CommStats {
                compute_ops: 1_000 * (r + 1),
                local_ops: 500,
                onnode_msgs: 40,
                offnode_msgs: 60 + 10 * r,
                onnode_bytes: 4_000,
                offnode_bytes: 9_000,
                service_ops: 700,
                lookup_batches: 12,
                cache_hits: 300 + 5 * r,
                cache_misses: 44,
                transient_faults: 3 + r,
                retries: 3,
                backoff_units: 7,
                io_read_bytes: 1 << 20,
                steal_ops: 9 + r,
                barriers: 2,
                exec_nanos: 1_000_000 * (r + 1),
                ..CommStats::default()
            })
            .collect();
        let mut pr = PipelineReport::new().with_partition("minimizer");
        pr.push(
            PhaseReport::new("kmer-analysis/count", topo, stats.clone())
                .with_hot_keys(vec![(0xdead_beef, 41), (0x1234, 7)])
                .with_placement("minimizer(w=17,m=7)"),
        );
        pr.push(PhaseReport::new("contig/traversal", topo, stats).with_serial(0.125));
        pr.stage_attempts.push(StageAttempt {
            stage: "kmer-analysis".to_string(),
            executions: 2,
            aborted: 1,
            resumed: false,
        });
        pr.stage_attempts.push(StageAttempt {
            stage: "contig-generation".to_string(),
            executions: 0,
            aborted: 0,
            resumed: true,
        });
        pr.checkpoints.push(CheckpointEvent {
            stage: "kmer-analysis".to_string(),
            action: "save".to_string(),
            bytes: 4096,
            checksum: 0xfeed_f00d,
        });
        pr.rounds.push(RoundReport {
            round: 1,
            k: 21,
            contigs: 100,
            pseudo_reads: 0,
            offnode_fraction: 0.25,
        });
        pr
    }

    #[test]
    fn json_report_round_trips() {
        let model = CostModel::edison();
        let text = busy_pipeline().to_json(&model);
        let parsed = Value::parse(&text).expect("report must be valid JSON");
        // Serializing the parsed document reproduces the original text
        // byte-for-byte (ordered object pairs make this deterministic).
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn json_report_schema_is_stable() {
        // Guards the field names downstream tooling depends on; renaming
        // any of these is a schema break and must bump `schema_version`.
        let model = CostModel::edison();
        let doc = Value::parse(&busy_pipeline().to_json(&model)).unwrap();
        assert_eq!(u64_at(&doc, "schema_version"), 7);
        assert_eq!(str_at(&doc, "cost_model"), "default");
        assert_eq!(str_at(&doc, "partition"), "minimizer");
        assert_keys(
            &doc,
            &[
                "schema_version",
                "generator",
                "cost_model",
                "partition",
                "rounds",
                "topology",
                "modeled_total",
                "wall_seconds",
                "offnode_by_placement",
                "model_error",
                "stage_attempts",
                "checkpoints",
                "phases",
            ],
        );
        let rounds = get_path(&doc, "rounds").as_arr().unwrap();
        assert_eq!(rounds.len(), 1);
        assert_keys(
            &rounds[0],
            &["round", "k", "contigs", "pseudo_reads", "offnode_fraction"],
        );
        assert_eq!(u64_at(&doc, "rounds/0/k"), 21);
        assert_eq!(u64_at(&doc, "rounds/0/contigs"), 100);
        // The placement split carries exactly the labeled phase's label;
        // the unlabeled (table-less) phase contributes nothing.
        assert_keys(
            get_path(&doc, "offnode_by_placement"),
            &["minimizer(w=17,m=7)"],
        );
        assert_keys(
            get_path(&doc, "model_error"),
            &["phases", "mean_rel_error", "max_rel_error"],
        );
        assert_keys(
            get_path(&doc, "model_error/phases/0"),
            &[
                "name",
                "measured_seconds",
                "modeled_seconds",
                "rel_error",
                "compute_fraction",
            ],
        );
        let attempts = get_path(&doc, "stage_attempts").as_arr().unwrap();
        assert_eq!(attempts.len(), 2);
        assert_keys(&attempts[0], &["stage", "executions", "aborted", "resumed"]);
        assert_eq!(str_at(&doc, "stage_attempts/0/stage"), "kmer-analysis");
        assert_eq!(u64_at(&doc, "stage_attempts/0/aborted"), 1);
        assert_eq!(
            get_path(&doc, "stage_attempts/1/resumed").as_bool(),
            Some(true)
        );
        let ckpts = get_path(&doc, "checkpoints").as_arr().unwrap();
        assert_eq!(ckpts.len(), 1);
        assert_keys(&ckpts[0], &["stage", "action", "bytes", "checksum"]);
        assert_eq!(str_at(&doc, "checkpoints/0/action"), "save");
        assert_eq!(u64_at(&doc, "checkpoints/0/bytes"), 4096);
        assert_eq!(str_at(&doc, "checkpoints/0/checksum"), "0x00000000feedf00d");
        assert_keys(
            get_path(&doc, "topology"),
            &["ranks", "ranks_per_node", "nodes"],
        );
        let phases = get_path(&doc, "phases").as_arr().unwrap();
        assert_eq!(phases.len(), 2);
        let p = get_path(&doc, "phases/0");
        assert_keys(
            p,
            &[
                "name",
                "ranks",
                "wall_seconds",
                "measured",
                "modeled",
                "critical_rank",
                "offnode_fraction",
                "placement",
                "imbalance",
                "totals",
                "hot_keys",
            ],
        );
        assert_eq!(str_at(p, "placement"), "minimizer(w=17,m=7)");
        assert!(matches!(get_path(&doc, "phases/1/placement"), Value::Null));
        assert_keys(
            get_path(p, "measured"),
            &["wall_seconds", "max_rank_seconds", "mean_rank_seconds"],
        );
        assert_keys(
            get_path(p, "modeled"),
            &[
                "critical_path_seconds",
                "sync_seconds",
                "io_seconds",
                "serial_seconds",
                "total_seconds",
            ],
        );
        assert_keys(
            get_path(p, "critical_rank"),
            &["compute_seconds", "latency_seconds", "bandwidth_seconds"],
        );
        assert_keys(
            get_path(p, "totals"),
            &[
                "compute_ops",
                "local_ops",
                "onnode_msgs",
                "offnode_msgs",
                "onnode_bytes",
                "offnode_bytes",
                "service_ops",
                "lookup_batches",
                "cache_hits",
                "cache_misses",
                "transient_faults",
                "retries",
                "backoff_units",
                "io_read_bytes",
                "io_write_bytes",
                "steal_ops",
                "barriers",
                "exec_nanos",
            ],
        );
        let hot = get_path(p, "hot_keys").as_arr().unwrap();
        assert_eq!(hot.len(), 2);
        assert_eq!(str_at(p, "hot_keys/0/key_hash"), "0x00000000deadbeef");
        assert_eq!(u64_at(p, "hot_keys/0/estimated_count"), 41);
    }

    #[test]
    fn offnode_by_placement_aggregates_labeled_phases() {
        let pr = busy_pipeline();
        let split = pr.offnode_by_placement();
        // One labeled phase: its fraction verbatim.
        assert_eq!(split.len(), 1);
        assert_eq!(split[0].0, "minimizer(w=17,m=7)");
        assert!((split[0].1 - pr.phases[0].offnode_fraction()).abs() < 1e-12);

        // Two phases sharing a label pool their counters (the pooled
        // fraction is accesses-weighted, not a mean of fractions).
        let mut pr2 = PipelineReport::new();
        let topo = Topology::new(2, 1);
        let mostly_off = vec![
            CommStats {
                local_ops: 10,
                offnode_msgs: 90,
                ..CommStats::default()
            };
            2
        ];
        let mostly_local = vec![
            CommStats {
                local_ops: 300,
                offnode_msgs: 100,
                ..CommStats::default()
            };
            2
        ];
        pr2.push(PhaseReport::new("a", topo, mostly_off).with_placement("uniform"));
        pr2.push(PhaseReport::new("b", topo, mostly_local).with_placement("uniform"));
        pr2.push(phase_with(&[10, 10])); // unlabeled: excluded
        let split2 = pr2.offnode_by_placement();
        assert_eq!(split2.len(), 1);
        let expect = (90.0 + 100.0) * 2.0 / ((10.0 + 90.0 + 300.0 + 100.0) * 2.0);
        assert!((split2[0].1 - expect).abs() < 1e-12, "{}", split2[0].1);
    }

    #[test]
    fn json_report_cost_model_label_flows_through() {
        let model = CostModel::edison();
        let doc = Value::parse(&busy_pipeline().to_json_labeled(&model, "calibrated")).unwrap();
        assert_eq!(str_at(&doc, "cost_model"), "calibrated");
    }

    #[test]
    fn model_errors_compare_the_right_quantities() {
        let model = CostModel::edison();
        let pr = busy_pipeline();
        let errors = pr.model_errors(&model);
        assert_eq!(errors.len(), 2, "both fixture phases are stamped");
        for (e, p) in errors.iter().zip(&pr.phases) {
            assert_eq!(e.name, p.name);
            // Stamped phases compare max-rank seconds vs critical path.
            assert!((e.measured_seconds - p.max_rank_seconds()).abs() < 1e-12);
            assert!((e.modeled_seconds - p.modeled(&model).critical_path).abs() < 1e-12);
            let expect = (e.modeled_seconds - e.measured_seconds).abs() / e.measured_seconds;
            assert!((e.rel_error - expect).abs() < 1e-12);
            assert!(e.compute_fraction > 0.0 && e.compute_fraction <= 1.0);
        }

        // An unstamped (synthetic I/O) phase compares wall vs modeled total,
        // and a zero-measured phase is skipped.
        let topo = Topology::new(2, 2);
        let io_stats = vec![
            CommStats {
                io_read_bytes: 1 << 20,
                ..CommStats::default()
            };
            2
        ];
        let mut pr2 = PipelineReport::new();
        pr2.push(PhaseReport::new("io/fastq", topo, io_stats).with_wall(0.5));
        pr2.push(phase_with(&[1_000, 1_000])); // no exec stamps, wall 0
        let errors2 = pr2.model_errors(&model);
        assert_eq!(errors2.len(), 1, "zero-measured phase skipped");
        let e = &errors2[0];
        assert!((e.measured_seconds - 0.5).abs() < 1e-12);
        let expect_modeled = pr2.phases[0].modeled(&model).total();
        assert!((e.modeled_seconds - expect_modeled).abs() < 1e-12);
        assert_eq!(e.compute_fraction, 0.0, "pure-I/O critical rank");
    }

    #[test]
    fn json_report_matches_phase_methods() {
        // Golden check: the serialized metrics are exactly what the
        // `PhaseReport` accessors compute, not a parallel implementation.
        let model = CostModel::edison();
        let pr = busy_pipeline();
        let doc = Value::parse(&pr.to_json(&model)).unwrap();
        let phases = get_path(&doc, "phases").as_arr().unwrap();
        for (p, v) in pr.phases.iter().zip(phases) {
            assert_eq!(str_at(v, "name"), p.name.as_str());
            let off = f64_at(v, "offnode_fraction");
            assert!((off - p.offnode_fraction()).abs() < 1e-12);
            assert!(off > 0.0, "fixture must exercise a nonzero fraction");
            let imb = f64_at(v, "imbalance");
            assert!((imb - p.imbalance(&model)).abs() < 1e-12);
            assert!(imb > 1.0, "fixture must exercise real skew");
            assert!((f64_at(v, "wall_seconds") - p.wall_seconds).abs() < 1e-12);
            // Schema-v5 measured block carries the exec-stamp aggregates.
            let max_rank = f64_at(v, "measured/max_rank_seconds");
            assert!((max_rank - p.max_rank_seconds()).abs() < 1e-12);
            assert!(max_rank > 0.0, "fixture must exercise exec stamps");
            let mean_rank = f64_at(v, "measured/mean_rank_seconds");
            assert!((mean_rank - p.mean_rank_seconds()).abs() < 1e-12);
            assert!(mean_rank < max_rank, "fixture's stamps are skewed");
            let total = f64_at(v, "modeled/total_seconds");
            assert!((total - p.modeled(&model).total()).abs() < 1e-12);
            assert_eq!(u64_at(v, "totals/exec_nanos"), p.totals().exec_nanos);
            // Schema-v2 read-path counters carry the merged CommStats values.
            let hits = u64_at(v, "totals/cache_hits");
            assert_eq!(hits, p.totals().cache_hits);
            assert!(hits > 0, "fixture must exercise cache accounting");
            let batches = u64_at(v, "totals/lookup_batches");
            assert_eq!(batches, p.totals().lookup_batches);
            assert!(batches > 0, "fixture must exercise batch accounting");
            assert_eq!(u64_at(v, "totals/cache_misses"), p.totals().cache_misses);
            // Schema-v3 fault counters carry the merged CommStats values.
            let faults = u64_at(v, "totals/transient_faults");
            assert_eq!(faults, p.totals().transient_faults);
            assert!(faults > 0, "fixture must exercise fault accounting");
            assert_eq!(u64_at(v, "totals/retries"), p.totals().retries);
            assert_eq!(u64_at(v, "totals/backoff_units"), p.totals().backoff_units);
            // Schema-v4 dynamic-scheduling counter.
            let steals = u64_at(v, "totals/steal_ops");
            assert_eq!(steals, p.totals().steal_ops);
            assert!(steals > 0, "fixture must exercise steal accounting");
        }
        // Pipeline-level sums.
        let wall = f64_at(&doc, "wall_seconds");
        let expect: f64 = pr.phases.iter().map(|p| p.wall_seconds).sum();
        assert!((wall - expect).abs() < 1e-12);
        // The model_error block agrees with the accessor.
        let errors = pr.model_errors(&model);
        for (i, e) in errors.iter().enumerate() {
            let base = format!("model_error/phases/{i}");
            assert_eq!(str_at(&doc, &format!("{base}/name")), e.name.as_str());
            assert!((f64_at(&doc, &format!("{base}/rel_error")) - e.rel_error).abs() < 1e-12);
        }
    }

    #[test]
    fn rollback_replaces_aborted_attempt() {
        // A stage runs, aborts, and re-runs: the re-execution must replace
        // the aborted attempt's phases, not pile on top of them.
        let mut pr = PipelineReport::new();
        pr.push(phase_with(&[10, 10]).with_wall(1.0)); // upstream stage A
        let mark = pr.mark();
        pr.push(phase_with(&[20, 20]).with_wall(5.0)); // stage B, attempt 1 (aborts)
        pr.push(phase_with(&[5, 5]).with_wall(2.0)); // partial sub-phase of attempt 1
        pr.rollback_to(mark);
        pr.push(phase_with(&[20, 20]).with_wall(5.5)); // stage B, attempt 2
        let wall: f64 = pr.phases.iter().map(|p| p.wall_seconds).sum();
        assert_eq!(pr.phases.len(), 2);
        assert!((wall - 6.5).abs() < 1e-12, "A + B2 only, got {wall}");
    }

    #[test]
    fn pipeline_totals_and_render() {
        let model = CostModel::edison();
        let mut pr = PipelineReport::new();
        pr.push(phase_with(&[1_000_000, 1_000_000]));
        pr.push(phase_with(&[500_000, 500_000]).with_serial(0.25));
        let total = pr.total_modeled(&model).total();
        assert!(total > 0.25);
        let text = pr.render(&model);
        assert!(text.contains("TOTAL"));
        assert!(text.lines().count() >= 4);
        assert!(pr.modeled_matching(&model, "test") > 0.0);
        assert_eq!(pr.modeled_matching(&model, "nope"), 0.0);
    }
}
