//! Phase and pipeline reports: measured counters plus modeled time.
//!
//! Every pipeline stage produces a [`PhaseReport`]; a [`PipelineReport`]
//! collects them and renders the per-stage breakdowns the paper's figures
//! plot (k-mer analysis / contig generation / scaffolding / overall, and
//! within scaffolding: merAligner / gap closing / rest).

use crate::cost::{CostModel, ModeledTime};
use crate::stats::{total, CommStats};
use crate::topology::Topology;

/// The record of one finished SPMD phase.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Stage name, e.g. `"kmer-analysis"`.
    pub name: String,
    /// Topology the phase ran on.
    pub topo: Topology,
    /// Per-rank counters (indexed by rank).
    pub stats: Vec<CommStats>,
    /// Real wall-clock seconds the simulation took (diagnostics only).
    pub wall_seconds: f64,
    /// Inherently serial seconds this stage adds (e.g. the serial tie
    /// traversal of §4.7), already priced by the stage.
    pub serial_seconds: f64,
}

impl PhaseReport {
    /// Build a report from a finished [`crate::Team::run`] invocation.
    pub fn new(name: impl Into<String>, topo: Topology, stats: Vec<CommStats>) -> Self {
        PhaseReport {
            name: name.into(),
            topo,
            stats,
            wall_seconds: 0.0,
            serial_seconds: 0.0,
        }
    }

    /// Attach measured wall time.
    pub fn with_wall(mut self, seconds: f64) -> Self {
        self.wall_seconds = seconds;
        self
    }

    /// Attach serial seconds.
    pub fn with_serial(mut self, seconds: f64) -> Self {
        self.serial_seconds = seconds;
        self
    }

    /// Fold additional per-rank counters into this report (for stages made
    /// of several `Team::run` calls over the same topology).
    pub fn absorb(&mut self, more: &[CommStats]) {
        assert_eq!(more.len(), self.stats.len());
        for (mine, extra) in self.stats.iter_mut().zip(more) {
            mine.merge(extra);
        }
    }

    /// Modeled execution time under `model`.
    pub fn modeled(&self, model: &CostModel) -> ModeledTime {
        let mut t = model.phase_time(&self.topo, &self.stats);
        t.serial = self.serial_seconds;
        t
    }

    /// Machine-wide counter totals.
    pub fn totals(&self) -> CommStats {
        total(&self.stats)
    }

    /// Fraction of hash-table accesses that went off-node (Table 2's metric).
    pub fn offnode_fraction(&self) -> f64 {
        self.totals().offnode_fraction().unwrap_or(0.0)
    }

    /// Load imbalance: max over ranks of (work) divided by mean work, where
    /// work is priced rank seconds. 1.0 is perfectly balanced.
    pub fn imbalance(&self, model: &CostModel) -> f64 {
        let times: Vec<f64> = self
            .stats
            .iter()
            .map(|s| {
                let one = model.phase_time(&Topology::new(1, 1), std::slice::from_ref(s));
                one.critical_path
            })
            .collect();
        let max = times.iter().copied().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// An ordered collection of phase reports for one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// The phases in execution order.
    pub phases: Vec<PhaseReport>,
}

impl PipelineReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a finished phase.
    pub fn push(&mut self, phase: PhaseReport) {
        self.phases.push(phase);
    }

    /// Modeled total time across all phases.
    pub fn total_modeled(&self, model: &CostModel) -> ModeledTime {
        let mut acc = ModeledTime::default();
        for p in &self.phases {
            acc.add(&p.modeled(model));
        }
        acc
    }

    /// Modeled seconds of the phases whose name contains `needle`.
    pub fn modeled_matching(&self, model: &CostModel, needle: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .map(|p| p.modeled(model).total())
            .sum()
    }

    /// Render a per-phase table (name, modeled seconds, % of total,
    /// off-node fraction).
    pub fn render(&self, model: &CostModel) -> String {
        let total = self.total_modeled(model).total().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>7} {:>9}\n",
            "phase", "modeled (s)", "%", "off-node"
        ));
        for p in &self.phases {
            let t = p.modeled(model).total();
            out.push_str(&format!(
                "{:<28} {:>12.4} {:>6.1}% {:>8.1}%\n",
                p.name,
                t,
                100.0 * t / total,
                100.0 * p.offnode_fraction()
            ));
        }
        out.push_str(&format!("{:<28} {:>12.4}\n", "TOTAL", total));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase_with(compute: &[u64]) -> PhaseReport {
        let topo = Topology::new(compute.len(), 24);
        let stats = compute
            .iter()
            .map(|&c| CommStats {
                compute_ops: c,
                ..CommStats::default()
            })
            .collect();
        PhaseReport::new("test", topo, stats)
    }

    #[test]
    fn modeled_uses_serial_seconds() {
        let model = CostModel::edison();
        let p = phase_with(&[100, 100]).with_serial(1.5);
        let t = p.modeled(&model);
        assert!((t.serial - 1.5).abs() < 1e-12);
        assert!(t.total() >= 1.5);
    }

    #[test]
    fn imbalance_detects_skew() {
        let model = CostModel::edison();
        let balanced = phase_with(&[100, 100, 100, 100]);
        let skewed = phase_with(&[100, 100, 100, 10_000]);
        assert!((balanced.imbalance(&model) - 1.0).abs() < 1e-9);
        assert!(skewed.imbalance(&model) > 3.0);
    }

    #[test]
    fn absorb_merges_counters() {
        let mut p = phase_with(&[10, 20]);
        let extra = vec![
            CommStats {
                compute_ops: 5,
                ..CommStats::default()
            },
            CommStats {
                compute_ops: 5,
                ..CommStats::default()
            },
        ];
        p.absorb(&extra);
        assert_eq!(p.stats[0].compute_ops, 15);
        assert_eq!(p.stats[1].compute_ops, 25);
    }

    #[test]
    fn pipeline_totals_and_render() {
        let model = CostModel::edison();
        let mut pr = PipelineReport::new();
        pr.push(phase_with(&[1_000_000, 1_000_000]));
        pr.push(phase_with(&[500_000, 500_000]).with_serial(0.25));
        let total = pr.total_modeled(&model).total();
        assert!(total > 0.25);
        let text = pr.render(&model);
        assert!(text.contains("TOTAL"));
        assert!(text.lines().count() >= 4);
        assert!(pr.modeled_matching(&model, "test") > 0.0);
        assert_eq!(pr.modeled_matching(&model, "nope"), 0.0);
    }
}
