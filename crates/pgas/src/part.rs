//! Typed k-mer partitioners: how a table family maps keys to owner ranks.
//!
//! HipMer's Tables 1–2 identify the off-node get/put fraction as the
//! quantity that decides scaling, and both the journal version of the
//! paper and the MetaHipMer lineage move beyond uniform `hash % ranks`
//! ownership toward **locality-aware** k-mer placement. This module is the
//! repo's first-class form of that idea:
//!
//! * [`PartitionScheme`] is the user-facing knob (`--partition
//!   uniform|minimizer`), carried by every stage config;
//! * [`Partitioner`] is the typed, per-key-length instantiation a stage
//!   builds once it knows its key length: `Uniform`, or
//!   `Minimizer { w, m }` where each k-mer is bucketed by the rank owning
//!   its window minimizer ([`hipmer_dna::KmerCodec::minimizer_hash`]).
//!
//! **Why minimizers cut the off-node fraction:** adjacent k-mers of a read
//! or a contig walk overlap in `k - 1` bases, so they share `w - 1 = k - m`
//! of their `w` minimizer windows and therefore *usually* share a
//! minimizer — and an owner rank. Per-operation access patterns that slide
//! along the sequence (the traversal's claim/probe steps, extension
//! lookups) then stay on one rank for a whole minimizer run and pay a
//! remote message only at run boundaries, instead of on (P-1)/P of all
//! steps under uniform hashing. Placement is invisible to results: every
//! access goes through [`DistHashMap::owner`], so the assembled output is
//! byte-identical under any scheme — only the communication tallies move.
//!
//! The partitioner feeds [`DistHashMap::with_locality_hash`]: the owner is
//! chosen from the minimizer hash while sub-shard selection keeps the
//! uniform per-key hash, so a minimizer run co-owned by one rank still
//! spreads across that owner's sub-shard locks.
//!
//! Coherence rule: tables whose entries flow into each other without
//! re-homing (the k-mer votes table and the final spectrum table, the
//! spectrum and the de Bruijn node table) must be built from the **same**
//! partitioner — [`Partitioner::table`] is the one construction path the
//! stages share.

use crate::dht::DistHashMap;
use crate::topology::Topology;
use hipmer_dna::{Kmer, KmerCodec};
use std::str::FromStr;
use std::sync::Arc;

/// Default minimizer length `m` (capped at the key length). Short enough
/// that minimizer runs are long (`w = k - m + 1` windows per k-mer) even
/// for the aligner's 15-base seeds, long enough that minimizers spread
/// uniformly over ranks.
pub const DEFAULT_MINIMIZER_LEN: usize = 7;

/// The user-facing partitioning knob, one per pipeline run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PartitionScheme {
    /// Uniform hashing: `owner = mix(key) % ranks`. The seed behavior.
    #[default]
    Uniform,
    /// Minimizer bucketing: `owner = minimizer_hash(key) % ranks`, so
    /// adjacent k-mers land on one rank.
    Minimizer,
}

impl FromStr for PartitionScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Ok(PartitionScheme::Uniform),
            "minimizer" => Ok(PartitionScheme::Minimizer),
            other => Err(format!("unknown partition scheme {other:?}")),
        }
    }
}

impl std::fmt::Display for PartitionScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionScheme::Uniform => write!(f, "uniform"),
            PartitionScheme::Minimizer => write!(f, "minimizer"),
        }
    }
}

/// A [`PartitionScheme`] bound to one key length: the validated owner
/// assignment a stage builds its k-mer tables from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioner {
    /// Uniform hashing over the whole key.
    Uniform,
    /// Minimizer bucketing: `w = k - m + 1` length-`m` windows per key.
    Minimizer {
        /// Windows per key (`k - m + 1`).
        w: usize,
        /// Minimizer length.
        m: usize,
    },
}

impl Partitioner {
    /// Bind `scheme` to keys of length `k`. For the minimizer scheme,
    /// `m = min(DEFAULT_MINIMIZER_LEN, k)` and `w = k - m + 1`.
    ///
    /// # Panics
    /// Panics when `k` is outside the packed k-mer range — ownership
    /// decisions ride on these parameters, so they are validated here (in
    /// release builds too) rather than at first use.
    pub fn new(scheme: PartitionScheme, k: usize) -> Self {
        assert!(
            (1..=hipmer_dna::MAX_K).contains(&k),
            "partitioner key length k={k} outside 1..={}",
            hipmer_dna::MAX_K
        );
        match scheme {
            PartitionScheme::Uniform => Partitioner::Uniform,
            PartitionScheme::Minimizer => {
                let m = DEFAULT_MINIMIZER_LEN.min(k);
                Partitioner::Minimizer { w: k - m + 1, m }
            }
        }
    }

    /// The scheme this partitioner instantiates.
    pub fn scheme(&self) -> PartitionScheme {
        match self {
            Partitioner::Uniform => PartitionScheme::Uniform,
            Partitioner::Minimizer { .. } => PartitionScheme::Minimizer,
        }
    }

    /// Human/report label, e.g. `"uniform"` or `"minimizer(w=25,m=7)"`.
    pub fn label(&self) -> String {
        match self {
            Partitioner::Uniform => "uniform".to_string(),
            Partitioner::Minimizer { w, m } => format!("minimizer(w={w},m={m})"),
        }
    }

    /// The locality-hash closure to install on a k-mer table, or `None`
    /// for uniform hashing. The codec's key length must match the length
    /// this partitioner was bound to.
    pub fn locality_hash(&self, codec: KmerCodec) -> Option<crate::dht::LocalityHash<Kmer>> {
        match *self {
            Partitioner::Uniform => None,
            Partitioner::Minimizer { w, m } => {
                assert_eq!(
                    w,
                    codec.k() - m + 1,
                    "partitioner bound to a different key length than codec k={}",
                    codec.k()
                );
                Some(Arc::new(move |km: &Kmer| codec.minimizer_hash(*km, m)))
            }
        }
    }

    /// The one construction path for partitioned k-mer tables: an empty
    /// [`DistHashMap`] over `topo` whose owner selection follows this
    /// partitioner. Stages that feed entries between tables must build
    /// both ends through the same partitioner (see the module docs).
    pub fn table<V: Send>(&self, topo: Topology, codec: KmerCodec) -> DistHashMap<Kmer, V> {
        let table = DistHashMap::new(topo);
        match self.locality_hash(codec) {
            Some(f) => table.with_locality_hash(f),
            None => table,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::RankCtx;

    #[test]
    fn scheme_parses_and_displays() {
        assert_eq!("uniform".parse(), Ok(PartitionScheme::Uniform));
        assert_eq!("minimizer".parse(), Ok(PartitionScheme::Minimizer));
        assert_eq!("MINIMIZER".parse(), Ok(PartitionScheme::Minimizer));
        assert!("oracle".parse::<PartitionScheme>().is_err());
        assert_eq!(PartitionScheme::Uniform.to_string(), "uniform");
        assert_eq!(PartitionScheme::Minimizer.to_string(), "minimizer");
        assert_eq!(PartitionScheme::default(), PartitionScheme::Uniform);
    }

    #[test]
    fn binding_computes_window_count() {
        assert_eq!(
            Partitioner::new(PartitionScheme::Minimizer, 31),
            Partitioner::Minimizer { w: 25, m: 7 }
        );
        // m is capped at k (degenerate single-window case).
        assert_eq!(
            Partitioner::new(PartitionScheme::Minimizer, 5),
            Partitioner::Minimizer { w: 1, m: 5 }
        );
        assert_eq!(
            Partitioner::new(PartitionScheme::Uniform, 31),
            Partitioner::Uniform
        );
        assert_eq!(
            Partitioner::Minimizer { w: 25, m: 7 }.label(),
            "minimizer(w=25,m=7)"
        );
        assert_eq!(Partitioner::Uniform.label(), "uniform");
    }

    #[test]
    #[should_panic(expected = "key length")]
    fn binding_rejects_bad_k() {
        Partitioner::new(PartitionScheme::Minimizer, 0);
    }

    #[test]
    fn minimizer_tables_group_adjacent_kmers() {
        let k = 21;
        let codec = KmerCodec::new(k);
        let topo = Topology::new(8, 4);
        let part = Partitioner::new(PartitionScheme::Minimizer, k);
        let table: DistHashMap<Kmer, u32> = part.table(topo, codec);
        assert!(table.has_locality_hash());

        // A synthetic read: adjacent canonical k-mers must mostly share an
        // owner (the property the placement exists for), and owners must
        // agree with a direct minimizer computation.
        let seq: Vec<u8> = (0..400)
            .map(|i: usize| hipmer_dna::BASES[(i * 13 + 2) % 4])
            .collect();
        let owners: Vec<usize> = codec
            .canonical_kmers(&seq)
            .map(|(_, _, canon)| table.owner(&canon))
            .collect();
        assert!(owners.len() > 300);
        for (i, (_, _, canon)) in codec.canonical_kmers(&seq).enumerate() {
            let expect = (codec.minimizer_hash(canon, 7) % 8) as usize;
            assert_eq!(owners[i], expect);
        }
        let changes = owners.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            changes * 3 < owners.len(),
            "owner changed {changes} times over {} steps",
            owners.len()
        );

        // Placement is invisible to contents: same entries either way.
        let uni: DistHashMap<Kmer, u32> =
            Partitioner::new(PartitionScheme::Uniform, k).table(topo, codec);
        let mut c = RankCtx::new(0, topo);
        for (_, _, canon) in codec.canonical_kmers(&seq) {
            table.update(&mut c, canon, || 0, |v| *v += 1);
            uni.update(&mut c, canon, || 0, |v| *v += 1);
        }
        let mut a = table.snapshot_entries();
        let mut b = uni.snapshot_entries();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different key length")]
    fn locality_hash_rejects_mismatched_codec() {
        let part = Partitioner::new(PartitionScheme::Minimizer, 31);
        let _ = part.locality_hash(KmerCodec::new(21));
    }
}
