//! Reusable wire-buffer arenas.
//!
//! Every batched send in this runtime moves a `Vec` of typed entries: an
//! [`crate::AggregatingStores`] buffer of `(K, V)` upserts, a
//! [`crate::LookupBatch`] buffer of `(K, tag)` requests, an
//! [`crate::Outbox`] buffer of payload items. Allocating a fresh vector per
//! shipped batch puts the allocator on the hot path of every phase; real
//! PGAS runtimes (GASNet, UPC++) instead recycle registered communication
//! buffers because registration/allocation dwarfs the send itself.
//!
//! [`BufferPool`] is the single-process analogue: a bounded free list of
//! emptied buffers. Senders [`take`](BufferPool::take) a buffer (reusing a
//! prior batch's capacity when available), fill it, ship it, and
//! [`put`](BufferPool::put) the drained carrier back. The
//! [`DistHashMap`](crate::DistHashMap) batch-apply paths hand the emptied
//! carrier back to their caller precisely so it can be pooled. Combined
//! with the packed wire sizing of
//! [`Outbox::with_item_bytes`](crate::Outbox::with_item_bytes), a steady
//! phase reaches zero allocations per batch: bytes are modeled packed and
//! buffers never return to the allocator.
//!
//! Reuse is observable in the metrics registry (enable with
//! `--metrics-json`): `pgas/arena/reuse` counts pool hits,
//! `pgas/arena/alloc` counts pool misses that had to allocate fresh.

use crate::metrics;

/// Default bound on buffers a pool keeps. Aggregators hold one live buffer
/// per destination rank; a small free list covers the in-flight churn.
pub const DEFAULT_POOL_BUFFERS: usize = 32;

/// A bounded free list of reusable `Vec<T>` wire buffers.
///
/// Not thread-safe by design: each acting rank owns its aggregators and
/// therefore its pool, exactly like each UPC thread owns its registered
/// send buffers. Buffers come back cleared but with capacity intact.
pub struct BufferPool<T> {
    free: Vec<Vec<T>>,
    max_free: usize,
}

impl<T> BufferPool<T> {
    /// A pool keeping at most `max_free` idle buffers; excess buffers
    /// returned via [`put`](Self::put) are dropped to bound memory.
    pub fn new(max_free: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            max_free,
        }
    }

    /// A pool with the default bound ([`DEFAULT_POOL_BUFFERS`]).
    pub fn default_bound() -> Self {
        Self::new(DEFAULT_POOL_BUFFERS)
    }

    /// Get an empty buffer: a recycled one when available (counted as
    /// `pgas/arena/reuse`), else a fresh allocation (`pgas/arena/alloc`).
    pub fn take(&mut self) -> Vec<T> {
        match self.free.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty());
                metrics::counter_add("pgas/arena/reuse", 1);
                buf
            }
            None => {
                metrics::counter_add("pgas/arena/alloc", 1);
                Vec::new()
            }
        }
    }

    /// Return a drained buffer to the free list (cleared here; capacity is
    /// kept). Dropped instead when the buffer never grew capacity or the
    /// pool is at its bound.
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() > 0 && self.free.len() < self.max_free {
            self.free.push(buf);
        }
    }

    /// Idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_capacity_from_put() {
        let mut pool: BufferPool<u64> = BufferPool::new(4);
        let mut b = pool.take();
        assert_eq!(b.capacity(), 0, "fresh buffer");
        b.extend(0..100);
        let cap = b.capacity();
        pool.put(b);
        assert_eq!(pool.idle(), 1);
        let b2 = pool.take();
        assert!(b2.is_empty());
        assert_eq!(b2.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        let mut pool: BufferPool<u8> = BufferPool::new(2);
        for _ in 0..5 {
            pool.put(vec![1u8]);
        }
        assert_eq!(pool.idle(), 2, "excess buffers dropped at the bound");
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let mut pool: BufferPool<u8> = BufferPool::new(8);
        pool.put(Vec::new());
        assert_eq!(pool.idle(), 0, "nothing gained by pooling a zero-cap Vec");
    }
}
