//! Virtual machine topology: ranks and their grouping into nodes.
//!
//! The paper's Edison nodes hold 24 cores; whether a remote hash-table
//! access is *on-node* (shared memory, cheap) or *off-node* (Aries network,
//! expensive) is what Tables 1–2 measure. Ranks are laid out blocked, like
//! an SPMD launcher would: ranks `[0, rpn)` on node 0, `[rpn, 2·rpn)` on
//! node 1, and so on.

/// Ranks-per-node on NERSC Edison (two 12-core Ivy Bridge sockets).
pub const EDISON_RANKS_PER_NODE: usize = 24;

/// The shape of the simulated machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    ranks: usize,
    ranks_per_node: usize,
}

impl Topology {
    /// A topology with `ranks` virtual ranks, `ranks_per_node` per node.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(ranks: usize, ranks_per_node: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        assert!(ranks_per_node > 0, "need at least one rank per node");
        Topology {
            ranks,
            ranks_per_node,
        }
    }

    /// An Edison-like topology (24 ranks per node).
    pub fn edison(ranks: usize) -> Self {
        Self::new(ranks, EDISON_RANKS_PER_NODE)
    }

    /// A single-node topology (everything is at worst on-node).
    pub fn single_node(ranks: usize) -> Self {
        Self::new(ranks, ranks)
    }

    /// Total virtual ranks.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Ranks per node.
    #[inline]
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Number of nodes (last node may be partially filled).
    #[inline]
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.ranks_per_node)
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.ranks);
        rank / self.ranks_per_node
    }

    /// Whether two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Split `n` items into this topology's per-rank contiguous chunks:
    /// returns the half-open range of items owned by `rank`.
    ///
    /// Items are distributed as evenly as possible (first `n % ranks` ranks
    /// get one extra).
    ///
    /// # Panics
    /// Panics if `rank >= self.ranks()` — a real `assert!`, not a debug
    /// one: in release builds an out-of-range rank would otherwise return a
    /// bogus range past `n`, and callers hold the result for a whole stage,
    /// so the check is never on a hot path.
    pub fn chunk(&self, n: usize, rank: usize) -> std::ops::Range<usize> {
        assert!(
            rank < self.ranks,
            "chunk rank {rank} out of range (ranks={})",
            self.ranks
        );
        let base = n / self.ranks;
        let extra = n % self.ranks;
        let start = rank * base + rank.min(extra);
        let len = base + usize::from(rank < extra);
        start..start + len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping_blocked() {
        let t = Topology::new(48, 24);
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(23), 0);
        assert_eq!(t.node_of(24), 1);
        assert!(t.same_node(0, 23));
        assert!(!t.same_node(23, 24));
    }

    #[test]
    fn partial_last_node() {
        let t = Topology::new(50, 24);
        assert_eq!(t.nodes(), 3);
        assert_eq!(t.node_of(49), 2);
    }

    #[test]
    fn single_node_never_off_node() {
        let t = Topology::single_node(16);
        for a in 0..16 {
            for b in 0..16 {
                assert!(t.same_node(a, b));
            }
        }
    }

    #[test]
    fn chunks_partition_exactly() {
        for (n, p) in [(100, 7), (5, 8), (0, 3), (24, 24), (1000, 1)] {
            let t = Topology::new(p, 4);
            let mut covered = 0;
            for r in 0..p {
                let c = t.chunk(n, r);
                assert_eq!(c.start, covered, "n={n} p={p} r={r}");
                covered = c.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let t = Topology::new(7, 4);
        let sizes: Vec<usize> = (0..7).map(|r| t.chunk(100, r).len()).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Topology::new(0, 24);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chunk_rejects_out_of_range_rank() {
        // Must panic in release builds too, not just under debug_assert:
        // a silent bogus range past `n` would make the caller index out of
        // bounds (or worse, skip items) a whole stage later.
        Topology::new(4, 4).chunk(100, 4);
    }
}
