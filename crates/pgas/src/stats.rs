//! Per-rank communication and work counters.
//!
//! Every distributed hash-table access, message, computation step, and I/O
//! byte is tallied here. The counters are the *ground truth* the scaling
//! figures are computed from: Table 2 of the paper is literally the
//! `offnode_lookups / total lookups` ratio these counters expose, and the
//! heavy-hitter load-imbalance of Fig. 6 appears as a skewed
//! `service_ops` distribution across ranks.

/// Counters accumulated by one virtual rank during one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Pure computation steps (base extensions, alignment cells, hash mixes).
    pub compute_ops: u64,
    /// Hash-table (or other shared-structure) accesses that stayed on the
    /// acting rank's own partition.
    pub local_ops: u64,
    /// Accesses/messages to a different rank on the same node.
    pub onnode_msgs: u64,
    /// Accesses/messages to a rank on a different node.
    pub offnode_msgs: u64,
    /// Payload bytes that crossed ranks within a node.
    pub onnode_bytes: u64,
    /// Payload bytes that crossed the network.
    pub offnode_bytes: u64,
    /// Work performed *for* this rank's partition on behalf of others
    /// (remote inserts/updates landing in its shard). This is what load
    /// imbalance from heavy hitters shows up in.
    pub service_ops: u64,
    /// Batched one-sided operations shipped as single messages: multi-get
    /// buffers flushed by [`crate::LookupBatch`] / [`crate::DistHashMap::multi_get`]
    /// and coalesced read gathers. Each batch also counts exactly one
    /// on-node or off-node message (or one local op), so
    /// `remote_msgs / lookup_batches` approximates the inverse batching
    /// factor of the read path.
    pub lookup_batches: u64,
    /// Remote lookups answered from a per-rank [`crate::SoftwareCache`]
    /// without touching the owner (no message, no bytes).
    pub cache_hits: u64,
    /// Cache probes that missed and fell through to a real lookup. The
    /// fall-through access is accounted separately by whoever performs it.
    pub cache_misses: u64,
    /// Transient message faults injected against this rank's remote
    /// accesses by an attached [`crate::FaultPlan`] (each lost delivery
    /// attempt counts once, so a message retried twice adds two).
    pub transient_faults: u64,
    /// Message re-deliveries performed after transient faults. Each retry
    /// also re-accounts the message itself (latency + bytes), so retried
    /// traffic is visible in the ordinary message/byte counters too.
    pub retries: u64,
    /// Exponential-backoff penalty units accumulated while waiting to
    /// retry: attempt `n` adds `2^min(n-1, cap)` units, priced by
    /// [`crate::CostModel::t_backoff`].
    pub backoff_units: u64,
    /// Bytes read from storage by this rank.
    pub io_read_bytes: u64,
    /// Bytes written to storage by this rank.
    pub io_write_bytes: u64,
    /// Dynamic-scheduling chunk acquisitions: each chunk a rank claims from
    /// the shared work counter of [`crate::RankCtx::for_each_dynamic`] is one
    /// modeled remote atomic fetch-add, priced by
    /// [`crate::CostModel::t_steal`]. Static `chunk` partitioning performs
    /// none.
    pub steal_ops: u64,
    /// Barriers this rank participated in.
    pub barriers: u64,
    /// Measured nanoseconds this rank's phase body actually executed
    /// (stamped by [`crate::Team::run`]; sums across merged sub-phases).
    /// This is *host* time of the simulation, not modeled machine time.
    pub exec_nanos: u64,
}

impl CommStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` computation steps.
    #[inline]
    pub fn compute(&mut self, n: u64) {
        self.compute_ops = self.compute_ops.saturating_add(n);
    }

    /// Record `n` dynamic-scheduling chunk acquisitions (modeled remote
    /// atomic fetch-adds on the shared work counter).
    #[inline]
    pub fn steal(&mut self, n: u64) {
        self.steal_ops = self.steal_ops.saturating_add(n);
    }

    /// Record one access from `from` to the partition owned by `to`,
    /// carrying `bytes` of payload, under the given topology.
    #[inline]
    pub fn access(&mut self, topo: &crate::Topology, from: usize, to: usize, bytes: u64) {
        if from == to {
            self.local_ops = self.local_ops.saturating_add(1);
        } else if topo.same_node(from, to) {
            self.onnode_msgs = self.onnode_msgs.saturating_add(1);
            self.onnode_bytes = self.onnode_bytes.saturating_add(bytes);
        } else {
            self.offnode_msgs = self.offnode_msgs.saturating_add(1);
            self.offnode_bytes = self.offnode_bytes.saturating_add(bytes);
        }
    }

    /// Total remote (on-node + off-node) messages.
    #[inline]
    pub fn remote_msgs(&self) -> u64 {
        self.onnode_msgs.saturating_add(self.offnode_msgs)
    }

    /// Total partition accesses of any locality.
    #[inline]
    pub fn total_accesses(&self) -> u64 {
        self.local_ops.saturating_add(self.remote_msgs())
    }

    /// Fraction of accesses that left the node (`None` if no accesses).
    pub fn offnode_fraction(&self) -> Option<f64> {
        let total = self.total_accesses();
        if total == 0 {
            None
        } else {
            Some(self.offnode_msgs as f64 / total as f64)
        }
    }

    /// Element-wise accumulation (used to merge sub-phase counters).
    /// Saturating: pathological inputs (fuzzers, adversarial FASTQ sizes)
    /// pin counters at `u64::MAX` instead of wrapping or panicking.
    pub fn merge(&mut self, o: &CommStats) {
        self.compute_ops = self.compute_ops.saturating_add(o.compute_ops);
        self.local_ops = self.local_ops.saturating_add(o.local_ops);
        self.onnode_msgs = self.onnode_msgs.saturating_add(o.onnode_msgs);
        self.offnode_msgs = self.offnode_msgs.saturating_add(o.offnode_msgs);
        self.onnode_bytes = self.onnode_bytes.saturating_add(o.onnode_bytes);
        self.offnode_bytes = self.offnode_bytes.saturating_add(o.offnode_bytes);
        self.service_ops = self.service_ops.saturating_add(o.service_ops);
        self.lookup_batches = self.lookup_batches.saturating_add(o.lookup_batches);
        self.cache_hits = self.cache_hits.saturating_add(o.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(o.cache_misses);
        self.transient_faults = self.transient_faults.saturating_add(o.transient_faults);
        self.retries = self.retries.saturating_add(o.retries);
        self.backoff_units = self.backoff_units.saturating_add(o.backoff_units);
        self.io_read_bytes = self.io_read_bytes.saturating_add(o.io_read_bytes);
        self.io_write_bytes = self.io_write_bytes.saturating_add(o.io_write_bytes);
        self.steal_ops = self.steal_ops.saturating_add(o.steal_ops);
        self.barriers = self.barriers.saturating_add(o.barriers);
        self.exec_nanos = self.exec_nanos.saturating_add(o.exec_nanos);
    }
}

/// Sum a slice of per-rank stats into machine-wide totals.
pub fn total(stats: &[CommStats]) -> CommStats {
    let mut acc = CommStats::new();
    for s in stats {
        acc.merge(s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn access_classification() {
        let topo = Topology::new(48, 24);
        let mut s = CommStats::new();
        s.access(&topo, 0, 0, 16); // local
        s.access(&topo, 0, 5, 16); // on-node
        s.access(&topo, 0, 30, 16); // off-node
        assert_eq!(s.local_ops, 1);
        assert_eq!(s.onnode_msgs, 1);
        assert_eq!(s.offnode_msgs, 1);
        assert_eq!(s.onnode_bytes, 16);
        assert_eq!(s.offnode_bytes, 16);
        assert_eq!(s.total_accesses(), 3);
    }

    #[test]
    fn offnode_fraction() {
        let topo = Topology::new(48, 24);
        let mut s = CommStats::new();
        assert_eq!(s.offnode_fraction(), None);
        s.access(&topo, 0, 30, 8);
        s.access(&topo, 0, 0, 8);
        assert!((s.offnode_fraction().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_and_total() {
        let mut a = CommStats::new();
        a.compute(10);
        a.io_read_bytes = 100;
        let mut b = CommStats::new();
        b.compute(5);
        b.barriers = 2;
        a.merge(&b);
        assert_eq!(a.compute_ops, 15);
        assert_eq!(a.barriers, 2);
        assert_eq!(a.io_read_bytes, 100);

        let t = total(&[a, b]);
        assert_eq!(t.compute_ops, 20);
        assert_eq!(t.barriers, 4);
    }

    #[test]
    fn merge_of_empty_stats_is_identity() {
        let topo = Topology::new(48, 24);
        let mut a = CommStats::new();
        a.compute(7);
        a.steal(3);
        a.access(&topo, 0, 5, 64);
        a.access(&topo, 0, 30, 128);
        a.exec_nanos = 42;
        let before = a;

        // empty += full leaves the full side as-is...
        let mut empty = CommStats::new();
        empty.merge(&a);
        assert_eq!(empty, before);

        // ...and full += empty is a no-op.
        a.merge(&CommStats::new());
        assert_eq!(a, before);

        // Two empties merge to an empty.
        let mut e = CommStats::new();
        e.merge(&CommStats::new());
        assert_eq!(e, CommStats::new());
        assert_eq!(e.offnode_fraction(), None);
    }

    #[test]
    fn counter_arithmetic_saturates_at_u64_max() {
        let topo = Topology::new(48, 24);

        // Recording on top of an already-pinned counter must not wrap.
        let mut s = CommStats::new();
        s.compute_ops = u64::MAX;
        s.compute(1);
        assert_eq!(s.compute_ops, u64::MAX);
        s.steal_ops = u64::MAX;
        s.steal(u64::MAX);
        assert_eq!(s.steal_ops, u64::MAX);

        s.onnode_bytes = u64::MAX;
        s.access(&topo, 0, 5, u64::MAX); // on-node: msg count 1, bytes pinned
        assert_eq!(s.onnode_msgs, 1);
        assert_eq!(s.onnode_bytes, u64::MAX);
        s.offnode_bytes = u64::MAX - 1;
        s.access(&topo, 0, 30, 2);
        assert_eq!(s.offnode_bytes, u64::MAX);

        // Derived sums saturate instead of overflowing.
        let mut m = CommStats::new();
        m.onnode_msgs = u64::MAX;
        m.offnode_msgs = 1;
        assert_eq!(m.remote_msgs(), u64::MAX);
        m.local_ops = u64::MAX;
        assert_eq!(m.total_accesses(), u64::MAX);

        // Merging two near-MAX sides pins every counter at MAX.
        let mut a = CommStats::new();
        a.compute_ops = u64::MAX;
        a.exec_nanos = u64::MAX - 1;
        let mut b = CommStats::new();
        b.compute_ops = u64::MAX;
        b.exec_nanos = 5;
        a.merge(&b);
        assert_eq!(a.compute_ops, u64::MAX);
        assert_eq!(a.exec_nanos, u64::MAX);
    }
}
