//! Structured tracing for SPMD phase execution.
//!
//! When enabled, [`crate::Team::run_named`] records one span per *sampled*
//! virtual rank per phase: when the rank started executing (relative to the
//! trace epoch), how long its body ran, how long it sat in the OS-thread
//! multiplex queue before starting, and how many barriers it crossed. The
//! recorder is process-global so one flag covers every `Team` a pipeline
//! constructs internally; when disabled (the default) the only cost on the
//! phase path is one relaxed atomic load per rank.
//!
//! [`chrome_trace_json`] serializes the collected spans in the Chrome
//! trace-event format (`chrome://tracing`, Perfetto): one process, one lane
//! (`tid`) per rank, one `ph:"X"` complete event per phase execution, with
//! queue delay and barrier count attached as event `args`.
//!
//! The module also owns the process-global *hot-key tracking capacity*:
//! when nonzero, every [`crate::DistHashMap`] created afterwards keeps a
//! Misra–Gries summary of the key hashes its service operations touch, so
//! reports can name the heavy hitters responsible for service-op skew
//! (the paper's Fig. 6 load-imbalance story).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default number of ranks whose spans are recorded per phase.
pub const DEFAULT_SAMPLE_RANKS: usize = 16;

/// One recorded rank-execution span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Phase label (e.g. `"contig/traverse"`).
    pub phase: String,
    /// Virtual rank the span belongs to.
    pub rank: usize,
    /// Nanoseconds from the trace epoch to the start of the rank body.
    pub start_nanos: u64,
    /// Nanoseconds the rank body ran.
    pub dur_nanos: u64,
    /// Nanoseconds the rank waited in the multiplex queue: time from phase
    /// launch until an OS worker picked this rank up.
    pub queue_nanos: u64,
    /// Barriers the rank participated in during the span.
    pub barriers: u64,
    /// Batched multi-get messages the rank shipped during the span (see
    /// [`crate::CommStats::lookup_batches`]).
    pub lookup_batches: u64,
    /// Software-cache hits the rank scored during the span (see
    /// [`crate::CommStats::cache_hits`]).
    pub cache_hits: u64,
    /// Software-cache misses during the span (see
    /// [`crate::CommStats::cache_misses`]).
    pub cache_misses: u64,
    /// Transient message faults injected against the rank during the span
    /// (see [`crate::CommStats::transient_faults`]).
    pub transient_faults: u64,
    /// Message re-deliveries the rank performed after transient faults
    /// (see [`crate::CommStats::retries`]).
    pub retries: u64,
    /// Dynamic-scheduling chunk acquisitions the rank performed during the
    /// span (see [`crate::CommStats::steal_ops`]).
    pub steal_ops: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SAMPLE_RANKS: AtomicUsize = AtomicUsize::new(DEFAULT_SAMPLE_RANKS);
static HOTKEY_CAPACITY: AtomicUsize = AtomicUsize::new(0);
static EVENTS: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

/// A span recorder scoped to one [`Team`](crate::Team) (or any set of teams
/// that share a clone) instead of the process-global buffer.
///
/// The process-global recorder exists so one `--trace` flag covers every
/// team a pipeline constructs internally — but it makes concurrent users
/// (parallel tests, future multi-tenant pipelines) share one buffer and
/// one enable flag, which is exactly the cross-talk the old
/// `TRACE_TEST_LOCK` test serialization papered over. Attach a `Recorder`
/// with [`Team::with_recorder`](crate::Team::with_recorder) and that
/// team's phases record here unconditionally (the recorder's existence
/// *is* the enable flag), never touching the global buffer.
///
/// Clones share the underlying buffer, so one recorder can span a
/// multi-team pipeline and be drained once at the end.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

struct RecorderInner {
    sample_ranks: usize,
    events: Mutex<Vec<SpanEvent>>,
}

impl Recorder {
    /// A recorder sampling the first `sample_ranks` ranks of each phase
    /// (0 removes the cap and records every rank).
    pub fn new(sample_ranks: usize) -> Self {
        epoch(); // pin the epoch before any span is recorded
        Recorder {
            inner: Arc::new(RecorderInner {
                sample_ranks: if sample_ranks == 0 {
                    usize::MAX
                } else {
                    sample_ranks
                },
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Ranks per phase whose spans this recorder keeps.
    pub fn sample_ranks(&self) -> usize {
        self.inner.sample_ranks
    }

    /// Append a batch of spans.
    pub fn record(&self, events: impl IntoIterator<Item = SpanEvent>) {
        self.inner.events.lock().extend(events);
    }

    /// Drain the collected spans, oldest first.
    pub fn take_events(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut *self.inner.events.lock())
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("sample_ranks", &self.inner.sample_ranks)
            .field("events", &self.inner.events.lock().len())
            .finish()
    }
}

/// The instant trace timestamps are measured from (fixed at first use).
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Start recording spans for the first `sample_ranks` ranks of every phase
/// (0 disables sampling caps entirely and records every rank).
pub fn enable(sample_ranks: usize) {
    epoch(); // pin the epoch before any span is recorded
    SAMPLE_RANKS.store(
        if sample_ranks == 0 {
            usize::MAX
        } else {
            sample_ranks
        },
        Ordering::Relaxed,
    );
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stop recording. Already-collected spans stay until [`take_events`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether spans are being recorded.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Ranks per phase whose spans are recorded while tracing is enabled.
#[inline]
pub fn sample_ranks() -> usize {
    SAMPLE_RANKS.load(Ordering::Relaxed)
}

/// Change how many ranks per phase are sampled without toggling the
/// enabled flag (0 removes the cap and records every rank) — the hook
/// `--trace-sample-ranks` reaches through. [`enable`] also sets this;
/// call `set_sample_ranks` after it to adjust a live tracer.
pub fn set_sample_ranks(sample_ranks: usize) {
    SAMPLE_RANKS.store(
        if sample_ranks == 0 {
            usize::MAX
        } else {
            sample_ranks
        },
        Ordering::Relaxed,
    );
}

/// Set the Misra–Gries capacity for per-table hot-key tracking. Takes
/// effect for `DistHashMap`s created afterwards; 0 (the default) disables
/// tracking.
pub fn set_hotkey_capacity(capacity: usize) {
    HOTKEY_CAPACITY.store(capacity, Ordering::Relaxed);
}

/// The current hot-key tracking capacity (0 = off).
#[inline]
pub fn hotkey_capacity() -> usize {
    HOTKEY_CAPACITY.load(Ordering::Relaxed)
}

/// Record a batch of spans (called by `Team::run_named`; public so other
/// executors can feed the same trace).
pub fn record(events: impl IntoIterator<Item = SpanEvent>) {
    EVENTS.lock().extend(events);
}

/// Drain all collected spans, oldest first.
pub fn take_events() -> Vec<SpanEvent> {
    std::mem::take(&mut *EVENTS.lock())
}

/// Serialize spans in the Chrome trace-event JSON array format readable by
/// `chrome://tracing` and Perfetto: `ph:"X"` complete events with `ts` and
/// `dur` in microseconds, `pid` 1, and one `tid` lane per rank, preceded by
/// `ph:"M"` metadata events naming the process and each rank lane.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    use crate::json::Value;

    let mut out: Vec<Value> = Vec::with_capacity(events.len() + 8);

    let mut meta = Value::obj();
    meta.set("ph", "M")
        .set("name", "process_name")
        .set("pid", 1u64)
        .set("tid", 0u64);
    let mut args = Value::obj();
    args.set("name", "hipmer pgas ranks");
    meta.set("args", args);
    out.push(meta);

    let mut ranks: Vec<usize> = events.iter().map(|e| e.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    for &rank in &ranks {
        let mut lane = Value::obj();
        lane.set("ph", "M")
            .set("name", "thread_name")
            .set("pid", 1u64)
            .set("tid", rank)
            .set("sort_index", rank);
        let mut args = Value::obj();
        args.set("name", format!("rank {rank}"));
        lane.set("args", args);
        out.push(lane);
    }

    for e in events {
        let mut span = Value::obj();
        span.set("ph", "X")
            .set("name", e.phase.as_str())
            .set("cat", "phase")
            .set("pid", 1u64)
            .set("tid", e.rank)
            .set("ts", e.start_nanos as f64 / 1e3)
            .set("dur", e.dur_nanos as f64 / 1e3);
        let mut args = Value::obj();
        args.set("queue_us", e.queue_nanos as f64 / 1e3)
            .set("barriers", e.barriers)
            .set("lookup_batches", e.lookup_batches)
            .set("cache_hits", e.cache_hits)
            .set("cache_misses", e.cache_misses)
            .set("transient_faults", e.transient_faults)
            .set("retries", e.retries)
            .set("steal_ops", e.steal_ops);
        span.set("args", args);
        out.push(span);
    }

    Value::Arr(out).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    fn span(phase: &str, rank: usize, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            phase: phase.to_string(),
            rank,
            start_nanos: start,
            dur_nanos: dur,
            queue_nanos: 250,
            barriers: 1,
            lookup_batches: 3,
            cache_hits: 40,
            cache_misses: 2,
            transient_faults: 5,
            retries: 4,
            steal_ops: 7,
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let events = vec![
            span("stage/a", 0, 1_000, 2_000),
            span("stage/b", 3, 5_000, 500),
        ];
        let text = chrome_trace_json(&events);
        let doc = Value::parse(&text).unwrap();
        let arr = doc.as_arr().unwrap();

        let metas: Vec<_> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        // process_name + one thread_name per distinct rank.
        assert_eq!(metas.len(), 3);

        let spans: Vec<_> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        let s = spans[0];
        assert_eq!(s.get("name").and_then(Value::as_str), Some("stage/a"));
        assert_eq!(s.get("pid").and_then(Value::as_u64), Some(1));
        assert_eq!(s.get("tid").and_then(Value::as_u64), Some(0));
        assert_eq!(s.get("ts").and_then(Value::as_f64), Some(1.0)); // µs
        assert_eq!(s.get("dur").and_then(Value::as_f64), Some(2.0));
        let args = s.get("args").unwrap();
        assert_eq!(args.get("queue_us").and_then(Value::as_f64), Some(0.25));
        assert_eq!(args.get("barriers").and_then(Value::as_u64), Some(1));
        assert_eq!(args.get("lookup_batches").and_then(Value::as_u64), Some(3));
        assert_eq!(args.get("cache_hits").and_then(Value::as_u64), Some(40));
        assert_eq!(args.get("cache_misses").and_then(Value::as_u64), Some(2));
        assert_eq!(
            args.get("transient_faults").and_then(Value::as_u64),
            Some(5)
        );
        assert_eq!(args.get("retries").and_then(Value::as_u64), Some(4));
        assert_eq!(args.get("steal_ops").and_then(Value::as_u64), Some(7));
    }

    #[test]
    fn awkward_phase_labels_survive_chrome_trace_round_trip() {
        // Control characters, quotes, backslashes, non-ASCII, and the
        // JS-hostile line separators must all come back intact.
        let labels = [
            "stage/\"quoted\"\\back\nnew\tline",
            "контиг-генерация/κ-мер 分析",
            "nul\u{0}bell\u{7}del\u{7f}",
            "line\u{2028}para\u{2029}end",
            "emoji 🧬 phase",
        ];
        let events: Vec<SpanEvent> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| span(l, i, 100 * i as u64, 50))
            .collect();
        let text = chrome_trace_json(&events);
        let doc = Value::parse(&text).expect("valid JSON despite labels");
        let names: Vec<&str> = doc
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .map(|e| e.get("name").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(names, labels);
    }

    #[test]
    fn sample_ranks_is_settable_without_toggling_enable() {
        // Touches only the sample-ranks cell; the enabled flag stays off.
        let before = sample_ranks();
        set_sample_ranks(3);
        assert_eq!(sample_ranks(), 3);
        assert!(!is_enabled());
        set_sample_ranks(0);
        assert_eq!(sample_ranks(), usize::MAX, "0 removes the cap");
        set_sample_ranks(before);
    }

    #[test]
    fn hotkey_capacity_round_trip() {
        // Touches only the capacity cell; other tests don't read it.
        assert_eq!(hotkey_capacity(), 0);
        set_hotkey_capacity(12);
        assert_eq!(hotkey_capacity(), 12);
        set_hotkey_capacity(0);
        assert_eq!(hotkey_capacity(), 0);
    }
}
